"""Command-line entry point: ``repro-experiments`` / ``python -m repro.analysis``.

The CLI is a thin front-end over the scenario registry
(:mod:`repro.scenarios`)::

    repro-experiments list                         # every scenario
    repro-experiments list --kind sweep            # one category
    repro-experiments list --kind overload --json -  # machine-readable
    repro-experiments run table1 --engine reference --seed 7
    repro-experiments run all --fast --json out.json
    repro-experiments sweep all --fast             # just the sweeps
    repro-experiments sweep all --jobs 4 --timeout 300 --retries 2
    repro-experiments run all --journal .journal   # crash-safe resume
    repro-experiments checkpoint-run latency-lqd-burst \\
        --checkpoint-every 2000000000 --checkpoint-dir ckpts
    repro-experiments checkpoint-run --resume-from ckpts/latency-....json
    repro-experiments run latency-lqd-burst --trace --json run.json
    repro-experiments run table5 --resources --json run.json  # rusage profile
    repro-experiments trace-export run.json trace.json   # -> ui.perfetto.dev
    repro-experiments trace-diff a.json b.json           # first divergence
    repro-experiments report run.json                    # human summary
    repro-experiments watch .journal                     # live sweep progress
    repro-experiments watch --once .journal              # one render, exit
    repro-experiments sweep-status .journal              # one-shot summary
    repro-experiments sweep-status .journal --prometheus -  # metrics text
    repro-experiments report .journal                    # sweep timeline

``run``/``sweep`` accept ``--engine fast|reference`` and ``--seed N``;
each scenario honors the knobs it declares (closed-form scenarios have
no engine, for example) and silently keeps its defaults for the rest.
``--json PATH`` additionally writes the typed results (schema-valid
:class:`repro.scenarios.RunResult` dicts) to a file, or to stdout with
``--json -``; file writes are atomic (temp + rename), so a crash never
leaves a torn document.

Robustness (:mod:`repro.checkpoint`): ``--jobs N`` runs scenarios on a
fault-tolerant process pool with per-scenario ``--timeout``, bounded
``--retries`` with ``--backoff``, and worker-crash recovery;
``--journal DIR`` persists each finished scenario atomically so an
interrupted ``run all``/``sweep`` resumes by skipping completed work.
``SIGINT``/``SIGTERM`` drain gracefully (finished results are kept) and
exit ``128 + signum``; partial failures print a per-scenario table on
stderr and exit 3.  ``checkpoint-run`` drives a single simulation with
periodic state checkpoints and can resume one from its JSON file.

Monitoring (:mod:`repro.monitor`): journaled sweeps stream structured
lifecycle events to ``DIR/events.jsonl``; ``watch`` renders a live (or
``--once``) per-task progress table from the journal, ``sweep-status``
prints a one-shot summary with optional JSON / Prometheus-text metrics
exposition, and ``report DIR`` (or ``report events.jsonl``) renders the
sweep timeline with per-task wall/CPU and retry provenance.
``--resources`` profiles each scenario's rusage delta into
``metrics.resources``.

The pre-scenario invocation style (``repro-experiments table1 --fast``)
still works as an alias for ``run table1 --fast``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal as _signal
import sys
from typing import Any, Dict, List, Optional

from repro.scenarios import (
    ENGINES,
    KINDS,
    Runner,
    all_scenarios,
    render,
    scenario_names,
    scenarios_of_kind,
)
#: Envelope schema version for --json documents.
DOCUMENT_SCHEMA = 1

#: Exit code for a run/sweep that finished with per-scenario failures.
EXIT_PARTIAL_FAILURE = 3


# ---------------------------------------------------- flag validators
#
# Parse-time validation (mirroring TrafficSpec.pattern's style): reject
# nonsense with a message naming the constraint, before any scenario
# runs.

def _jobs_value(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (a pool needs at least one worker), got {value}")
    return value


def _timeout_value(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a number of seconds, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive (a zero/negative timeout would kill every "
            f"task at start), got {value}")
    return value


def _retries_value(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 disables retry), got {value}")
    return value


def _backoff_value(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a number of seconds, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {value}")
    return value


def _period_ps_value(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer picosecond count, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 ps, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables, figures, sweeps and ablations of "
            "'Queue Management in Network Processors' (DATE 2005) from "
            "the behavioral models."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate registered scenarios")
    p_list.add_argument("--kind", choices=KINDS, default=None,
                        help="only scenarios of one category")
    p_list.add_argument("--json", dest="json_path", metavar="PATH",
                        default=None,
                        help="write the listing as JSON ('-' for stdout) "
                             "instead of the text table")

    def add_jobs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=_jobs_value, default=1, metavar="N",
                       help="run scenarios on a fault-tolerant process "
                            "pool of N workers (results stay in scenario "
                            "order and are seed-deterministic; crashed "
                            "workers are re-queued; default: 1, "
                            "in-process)")
        p.add_argument("--timeout", type=_timeout_value, default=None,
                       metavar="SECONDS",
                       help="per-scenario wall-clock budget on the pool; "
                            "a scenario exceeding it is terminated and "
                            "retried (default: none)")
        p.add_argument("--retries", type=_retries_value, default=1,
                       metavar="N",
                       help="re-queue a crashed/timed-out/failed scenario "
                            "up to N more times (default: 1)")
        p.add_argument("--backoff", type=_backoff_value, default=0.1,
                       metavar="SECONDS",
                       help="delay before a retry, scaled by the attempt "
                            "number (default: 0.1)")
        p.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="inject deterministic worker faults from a "
                            "JSON plan (CI recovery smoke; see "
                            "repro.checkpoint.faults)")

    def add_run_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fast", action="store_true",
                       help="fast run-length budget (CI mode; noisier numbers)")
        p.add_argument("--engine", choices=ENGINES, default=None,
                       help="execution engine for scenarios that support it")
        p.add_argument("--seed", type=int, default=None,
                       help="RNG seed for scenarios that support it")
        p.add_argument("--json", dest="json_path", metavar="PATH",
                       default=None,
                       help="write typed results as JSON ('-' for stdout)")
        p.add_argument("--telemetry", action="store_true",
                       help="enable streaming telemetry (latency "
                            "histograms, occupancy series) for scenarios "
                            "that support it; the snapshot lands in "
                            "metrics.telemetry of the --json document")
        p.add_argument("--trace", action="store_true",
                       help="enable per-packet lifecycle span tracing "
                            "for scenarios that support it; the snapshot "
                            "lands in metrics.trace of the --json "
                            "document (see trace-export / trace-diff)")
        p.add_argument("--journal", dest="journal_dir", metavar="DIR",
                       default=None,
                       help="persist each finished scenario atomically to "
                            "DIR and skip already-journaled scenarios "
                            "(crash-safe resume of run all / sweep); also "
                            "streams lifecycle events to DIR/events.jsonl "
                            "for `watch` / `sweep-status`")
        p.add_argument("--resources", action="store_true",
                       help="profile each scenario's rusage delta (CPU "
                            "seconds, max RSS, wall) into "
                            "metrics.resources of the result")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the rendered tables")

    p_run = sub.add_parser("run", help="run one scenario (or 'all')")
    p_run.add_argument("scenario",
                       choices=scenario_names() + ["all"],
                       help="which scenario to run")
    add_run_flags(p_run)
    add_jobs_flags(p_run)

    sweep_names = [s.spec.name for s in scenarios_of_kind("sweep")]
    p_sweep = sub.add_parser("sweep",
                             help="run one parameter sweep (or 'all')")
    p_sweep.add_argument("scenario", choices=sweep_names + ["all"],
                         help="which sweep to run")
    add_run_flags(p_sweep)
    add_jobs_flags(p_sweep)

    ckpt_names = [s.spec.name for s in all_scenarios().values()
                  if s.spec.kind in ("overload", "latency")]
    p_ckpt = sub.add_parser(
        "checkpoint-run",
        help="run one simulation with periodic state checkpoints, or "
             "resume one from a checkpoint file")
    p_ckpt.add_argument("scenario", nargs="?", choices=ckpt_names,
                        help="which scenario to run (omit with "
                             "--resume-from)")
    p_ckpt.add_argument("--resume-from", metavar="PATH", default=None,
                        help="continue from a checkpoint file instead of "
                             "starting fresh")
    p_ckpt.add_argument("--engine", choices=ENGINES, default=None,
                        help="execution engine (fast = exact stream "
                             "snapshots, reference = replay-anchored "
                             "kernel checkpoints)")
    p_ckpt.add_argument("--seed", type=int, default=None,
                        help="policy RNG seed")
    p_ckpt.add_argument("--fast", action="store_true",
                        help="fast run-length budget")
    p_ckpt.add_argument("--checkpoint-every", type=_period_ps_value,
                        metavar="PS", default=None,
                        help="checkpoint the simulation every PS "
                             "picoseconds of simulated time")
    p_ckpt.add_argument("--checkpoint-dir", metavar="DIR", default=".",
                        help="where checkpoint files land (default: .)")
    p_ckpt.add_argument("--json", dest="json_path", metavar="PATH",
                        default=None,
                        help="write the run summary as JSON ('-' for "
                             "stdout)")
    p_ckpt.add_argument("--events", dest="events_path", metavar="PATH",
                        default=None,
                        help="append checkpoint lifecycle events "
                             "(start/progress/finish) to an events.jsonl "
                             "file at PATH")
    p_ckpt.add_argument("--quiet", action="store_true",
                        help="suppress the result summary")

    p_texp = sub.add_parser(
        "trace-export",
        help="convert a traced run/result document to Chrome trace-event "
             "JSON (viewable at https://ui.perfetto.dev)")
    p_texp.add_argument("input", help="run/result/trace JSON document "
                                      "(from run --trace --json)")
    p_texp.add_argument("output", help="Chrome trace-event JSON path "
                                       "(atomic write)")
    p_texp.add_argument("--label", default=None, metavar="NAME",
                        help="which trace to export when the document "
                             "carries several (labels are listed on "
                             "error)")

    p_tdiff = sub.add_parser(
        "trace-diff",
        help="locate the first divergent span between two traced "
             "documents (exit 0 identical, 1 divergent, 2 error)")
    p_tdiff.add_argument("a", help="first run/result/trace JSON document")
    p_tdiff.add_argument("b", help="second run/result/trace JSON document")
    p_tdiff.add_argument("--label", default=None, metavar="NAME",
                         help="which trace to compare when a document "
                              "carries several")
    p_tdiff.add_argument("--context", type=int, default=3, metavar="N",
                         help="surrounding spans to show around the "
                              "divergence (default: 3)")

    p_report = sub.add_parser(
        "report",
        help="render a human-readable summary of any results document "
             "(telemetry percentiles, cycle attribution, drops), or of "
             "a journal directory / events.jsonl (sweep timeline)")
    p_report.add_argument("input",
                          help="run/result/trace JSON document, journal "
                               "directory, or events.jsonl file")

    p_watch = sub.add_parser(
        "watch",
        help="live per-task progress table for a journaled sweep "
             "(reads DIR/events.jsonl; refreshes until the sweep "
             "finishes)")
    p_watch.add_argument("journal_dir", metavar="JOURNAL_DIR",
                         help="the sweep's --journal directory")
    p_watch.add_argument("--once", action="store_true",
                         help="render the table once and exit")
    p_watch.add_argument("--interval", type=_timeout_value, default=2.0,
                         metavar="SECONDS",
                         help="refresh period (default: 2)")

    p_status = sub.add_parser(
        "sweep-status",
        help="one-shot summary of a journaled sweep, with optional "
             "metrics exposition")
    p_status.add_argument("journal_dir", metavar="JOURNAL_DIR",
                          help="the sweep's --journal directory")
    p_status.add_argument("--json", dest="json_path", metavar="PATH",
                          default=None,
                          help="also write the status + metrics document "
                               "as JSON ('-' for stdout)")
    p_status.add_argument("--prometheus", dest="prometheus_path",
                          metavar="PATH", default=None,
                          help="also write the metrics in Prometheus "
                               "text exposition format ('-' for stdout)")

    p_serve = sub.add_parser(
        "serve",
        help="long-running scenario-serving daemon: POST /runs, live "
             "chunked frame streaming at /runs/<id>/stream, Prometheus "
             "/metrics, content-addressed result cache")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="bind port; 0 picks an ephemeral one "
                              "(default: 8787)")
    p_serve.add_argument("--jobs", type=_jobs_value, default=2,
                         metavar="N",
                         help="concurrently executing runs (each run "
                              "still gets its own fault-isolated worker "
                              "process; default: 2)")
    p_serve.add_argument("--spool-dir", metavar="DIR", default=None,
                         help="per-run journal/frames directory "
                              "(default: a fresh temporary directory)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="content-addressed result cache location "
                              "(default: SPOOL_DIR/cache; point at a "
                              "persistent path to reuse results across "
                              "daemon restarts)")
    p_serve.add_argument("--publish-every", type=_jobs_value,
                         metavar="N", default=None,
                         help="worker publishes a telemetry frame every "
                              "N dispatched commands (default: 256)")
    p_serve.add_argument("--timeout", type=_timeout_value, default=None,
                         metavar="SECONDS",
                         help="per-run wall-clock budget; an exceeding "
                              "run is terminated and retried "
                              "(default: none)")
    p_serve.add_argument("--retries", type=_retries_value, default=1,
                         metavar="N",
                         help="re-run a crashed/timed-out run up to N "
                              "more times (default: 1)")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress the listening/shutdown banner")

    return parser


def _legacy_rewrite(argv: List[str]) -> List[str]:
    """Map the pre-scenario invocation style onto ``run``.

    ``repro-experiments table1 --fast`` (and the option-first ordering
    argparse used to accept, ``--fast table1``) predate the
    subcommands; keep both working as aliases for ``run``.
    """
    if not argv or argv[0] in ("list", "run", "sweep", "checkpoint-run",
                               "trace-export", "trace-diff", "report",
                               "watch", "sweep-status", "serve"):
        return argv
    legacy = set(scenario_names()) | {"all"}
    if any(token in legacy for token in argv):
        return ["run"] + argv
    return argv


def _write_document(json_path: str, doc: Dict[str, Any]) -> None:
    """Emit a --json document ('-' = stdout, else an atomic file
    write: a crash mid-write never leaves a torn document)."""
    text = json.dumps(doc, indent=2) + "\n"
    if json_path == "-":
        sys.stdout.write(text)
    else:
        from repro.checkpoint.atomic import write_text_atomic
        write_text_atomic(json_path, text)


def _cmd_list(args: argparse.Namespace) -> int:
    specs = [scenario.spec for scenario in all_scenarios().values()
             if not args.kind or scenario.spec.kind == args.kind]
    specs.sort(key=lambda s: (KINDS.index(s.kind), s.name))
    if args.json_path is not None:
        doc = {
            "schema": DOCUMENT_SCHEMA,
            "scenarios": [{
                "name": spec.name,
                "kind": spec.kind,
                "workload": spec.workload,
                "title": spec.title,
                "description": spec.description,
                "supports": sorted(spec.supports),
                "fastpath": spec.fastpath,
                "telemetry": spec.telemetry is not None,
                "trace": spec.trace is not None,
                "engine": spec.effective_engine,
                "budget": spec.budget,
                "seed": spec.seed,
            } for spec in specs],
        }
        _write_document(args.json_path, doc)
        return 0
    rows = [(spec.name, spec.kind, spec.workload,
             ",".join(sorted(spec.supports)) or "-", spec.description)
            for spec in specs]
    widths = [max(len(str(r[i])) for r in rows) for i in range(4)]
    for r in rows:
        print(f"{r[0]:<{widths[0]}}  {r[1]:<{widths[1]}}  "
              f"{r[2]:<{widths[2]}}  {r[3]:<{widths[3]}}  {r[4]}")
    return 0


def _run_one_serialized(payload) -> dict:
    """Run one scenario in a pool worker; returns the serialized result.

    Module-level (picklable) on purpose; seeds and the parent's import
    path travel with the payload, so a pool run is exactly as
    deterministic as a serial one.
    """
    paths, name, engine, seed, fast, telemetry, trace, resources = payload
    sys.path[:] = paths
    result = Runner().run(name, engine=engine, seed=seed, fast=fast,
                          telemetry=telemetry, trace=trace,
                          resources=resources)
    return result.to_dict()


def _print_failures(failures) -> None:
    """The per-scenario failure table, on stderr."""
    print("\nFAILED SCENARIOS", file=sys.stderr)
    width = max(len(f.name) for f in failures)
    profiled = any(getattr(f, "cpu_s", None) is not None
                   or getattr(f, "max_rss_kb", None) is not None
                   for f in failures)
    for f in failures:
        wall = getattr(f, "wall_clock_s", None)
        wall_text = "-" if wall is None else f"{wall:.2f}s"
        usage = ""
        if profiled:
            cpu = getattr(f, "cpu_s", None)
            rss = getattr(f, "max_rss_kb", None)
            cpu_text = "-" if cpu is None else f"{cpu:.2f}s"
            rss_text = "-" if not rss else f"{rss / 1024:.0f}MB"
            usage = f"cpu={cpu_text:<8} rss={rss_text:<7} "
        print(f"  {f.name:<{width}}  attempts={f.attempts}  "
              f"wall={wall_text:<9} {usage} {f.reason}",
              file=sys.stderr)


def _cmd_run(args: argparse.Namespace, names: List[str]) -> int:
    from repro.checkpoint.pool import TaskFailure, run_tasks
    from repro.scenarios import RunResult

    jobs = getattr(args, "jobs", 1)
    resources = getattr(args, "resources", False)
    payloads = [(list(sys.path), name, args.engine, args.seed,
                 args.fast or None, args.telemetry or None,
                 args.trace or None, resources)
                for name in names]

    pool_resources: Dict[str, Any] = {}
    if jobs > 1 and len(names) > 1:
        outcome = run_tasks(
            _run_one_serialized, list(zip(names, payloads)),
            jobs=min(jobs, len(names)),
            timeout_s=getattr(args, "timeout", None),
            retries=getattr(args, "retries", 1),
            backoff_s=getattr(args, "backoff", 0.1),
            journal_dir=args.journal_dir,
            fault_plan=getattr(args, "fault_plan", None),
            resources=resources)
        results = [None if d is None else RunResult.from_dict(d)
                   for d in outcome.results]
        failures = outcome.failures
        interrupted = outcome.interrupted
        pool_resources = outcome.resources
    else:
        # serial path: same journal semantics, in-process execution
        results = [None] * len(names)
        failures = []
        interrupted = None
        journal = args.journal_dir
        if journal is not None:
            os.makedirs(journal, exist_ok=True)
        runner = Runner()
        for idx, (name, payload) in enumerate(zip(names, payloads)):
            doc = _journal_lookup(journal, name)
            if doc is not None:
                results[idx] = RunResult.from_dict(doc)
                continue
            try:
                result = runner.run(name, engine=args.engine,
                                    seed=args.seed,
                                    fast=args.fast or None,
                                    telemetry=args.telemetry or None,
                                    trace=args.trace or None,
                                    resources=resources)
            except KeyboardInterrupt:
                interrupted = _signal.SIGINT
                failures.extend(
                    TaskFailure(name=n, attempts=0,
                                reason="interrupted before completion")
                    for n in names[idx:])
                break
            except Exception as exc:  # noqa: BLE001 -- keep sweeping
                failures.append(TaskFailure(
                    name=name, attempts=1,
                    reason=f"{type(exc).__name__}: {exc}"))
                continue
            results[idx] = result
            if journal is not None:
                from repro.checkpoint.atomic import write_json_atomic
                write_json_atomic(
                    os.path.join(journal, f"{name}.json"),
                    result.to_dict())

    if not args.quiet:
        for result in results:
            if result is not None:
                print(render(result))
                print()
    if args.json_path is not None:
        doc: Dict[str, Any] = {
            "schema": DOCUMENT_SCHEMA,
            "runs": [r.to_dict() for r in results if r is not None],
        }
        if failures:
            doc["failures"] = [{"name": f.name, "attempts": f.attempts,
                                "reason": f.reason,
                                "wall_clock_s": getattr(f, "wall_clock_s",
                                                        None),
                                "cpu_s": getattr(f, "cpu_s", None),
                                "max_rss_kb": getattr(f, "max_rss_kb",
                                                      None)}
                               for f in failures]
        if pool_resources:
            doc["resources"] = pool_resources
        _write_document(args.json_path, doc)
    if failures:
        _print_failures(failures)
    if interrupted is not None:
        return 128 + interrupted
    return EXIT_PARTIAL_FAILURE if failures else 0


def _journal_lookup(journal: Optional[str], name: str) -> Optional[dict]:
    if journal is None:
        return None
    from repro.checkpoint.pool import ERROR_KEY, _journaled
    doc = _journaled(os.path.join(journal, f"{name}.json"))
    if doc is None or ERROR_KEY in doc:
        return None
    return doc


# ------------------------------------------------------ checkpoint-run

def _checkpoint_build(args: argparse.Namespace):
    """Build the (fresh or resumed) checkpointable run plus its file
    stem."""
    import dataclasses as _dc

    from repro.checkpoint import (
        Checkpoint,
        KernelRun,
        StreamRun,
        overload_params,
        resume_run,
    )
    from repro.policies.harness import OVERLOAD_MMS_CFG

    if args.resume_from is not None:
        ckpt = Checkpoint.load(args.resume_from)
        run = resume_run(ckpt)
        stem = ckpt.params.get("scenario") or ckpt.workload
        return run, stem

    if args.scenario is None:
        raise SystemExit("checkpoint-run needs a scenario name or "
                         "--resume-from PATH")
    spec = all_scenarios()[args.scenario].spec.with_options(
        engine=args.engine, seed=args.seed,
        budget="fast" if args.fast else None)
    cfg = _dc.replace(spec.mms or OVERLOAD_MMS_CFG, policy=spec.policy,
                      policy_seed=spec.seed, policy_records=False)
    params = overload_params(
        cfg, spec.traffic.pattern,
        num_arrivals=spec.pick(spec.traffic.num_commands),
        active_flows=spec.traffic.active_flows,
        telemetry=spec.telemetry,
        trace=spec.trace,
        engine_label=spec.effective_engine or "fast")
    params["scenario"] = spec.name
    if spec.effective_engine == "reference":
        run = KernelRun.fresh("overload", params)
    else:
        run = StreamRun.fresh("overload", params)
    return run, spec.name


def _cmd_checkpoint_run(args: argparse.Namespace) -> int:
    from repro.checkpoint import run_with_checkpoints

    run, stem = _checkpoint_build(args)
    saved: List[str] = []
    events = None
    if args.events_path is not None:
        from repro.monitor.events import EventSink
        events = EventSink(args.events_path)

    if args.checkpoint_every is not None:
        os.makedirs(args.checkpoint_dir, exist_ok=True)

        def sink(ckpt) -> None:
            path = os.path.join(args.checkpoint_dir,
                                f"{stem}-{ckpt.at_ps}.json")
            ckpt.save(path)
            saved.append(path)

        run_with_checkpoints(run, args.checkpoint_every, sink,
                             events=events)
    result = run.finish()
    if events is not None:
        events.close()

    counters = result.counters() if hasattr(result, "counters") \
        else dict(result)
    kind = "stream" if type(run).__name__ == "StreamRun" else "kernel"
    if not args.quiet:
        print(f"{stem}: finished at {run.now} ps ({kind} engine, "
              f"{len(saved)} checkpoint(s))")
        for key, value in counters.items():
            print(f"  {key:<20} {value}")
    if args.json_path is not None:
        _write_document(args.json_path, {
            "schema": DOCUMENT_SCHEMA,
            "scenario": stem,
            "engine": kind,
            "result": counters,
            "checkpoints": saved,
        })
    return 0


# ------------------------------------------------- trace/report tools

def _load_json_doc(path: str):
    """``(document, error)`` -- exactly one is None."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh), None
    except (OSError, ValueError) as exc:
        return None, f"cannot read {path}: {exc}"


def _pick_trace(path: str, label: Optional[str]):
    """``((label, payload), error)`` for the one trace to operate on
    (documents can carry several, e.g. a per-load table5 run or a
    sweep)."""
    from repro.trace.export import extract_traces
    doc, err = _load_json_doc(path)
    if err is not None:
        return None, err
    try:
        traces = extract_traces(doc)
    except ValueError as exc:
        return None, f"{path}: {exc}"
    if label is not None:
        for lab, payload in traces:
            if lab == label:
                return (lab, payload), None
        known = ", ".join(lab for lab, _t in traces)
        return None, (f"{path}: no trace labelled {label!r} "
                      f"(document carries: {known})")
    if len(traces) > 1:
        known = ", ".join(lab for lab, _t in traces)
        return None, (f"{path} carries {len(traces)} traces; pick one "
                      f"with --label (one of: {known})")
    return traces[0], None


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.trace.export import export_chrome_trace
    picked, err = _pick_trace(args.input, args.label)
    if err is not None:
        print(err, file=sys.stderr)
        return 2
    label, payload = picked
    try:
        doc = export_chrome_trace(payload, args.output,
                                  process_name=label)
    except ValueError as exc:
        print(f"{args.input}: {exc}", file=sys.stderr)
        return 2
    spans = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    print(f"wrote {args.output}: {spans} spans from {label!r} "
          f"(open at https://ui.perfetto.dev)")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.trace.diff import first_divergence
    from repro.trace.diff import render as render_divergence
    sides = []
    for path in (args.a, args.b):
        picked, err = _pick_trace(path, args.label)
        if err is not None:
            print(err, file=sys.stderr)
            return 2
        sides.append((path, picked))
    (path_a, (label_a, trace_a)), (path_b, (label_b, trace_b)) = sides
    div = first_divergence(trace_a, trace_b,
                           context=max(args.context, 0))
    print(render_divergence(div, f"{path_a}:{label_a}",
                            f"{path_b}:{label_b}"))
    return 0 if div is None else 1


def _cmd_report(args: argparse.Namespace) -> int:
    # Journal directories and bare event logs get the sweep timeline;
    # everything else is a results document.
    if os.path.isdir(args.input) or args.input.endswith(".jsonl"):
        from repro.monitor.progress import (
            load_sweep,
            render_timeline,
            status_from_events,
        )
        try:
            if os.path.isdir(args.input):
                status = load_sweep(args.input)
            else:
                status = status_from_events(args.input)
        except (OSError, ValueError) as exc:
            print(f"{args.input}: {exc}", file=sys.stderr)
            return 2
        print(render_timeline(status))
        return 0
    from repro.trace.report import render_report
    doc, err = _load_json_doc(args.input)
    if err is not None:
        print(err, file=sys.stderr)
        return 2
    try:
        print(render_report(doc, source=args.input))
    except ValueError as exc:
        print(f"{args.input}: {exc}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------- live monitoring

def _cmd_watch(args: argparse.Namespace) -> int:
    import time as _time

    from repro.monitor.progress import load_sweep, render_watch

    first = True
    while True:
        try:
            status = load_sweep(args.journal_dir)
        except (OSError, ValueError) as exc:
            print(f"{args.journal_dir}: {exc}", file=sys.stderr)
            return 2
        if not first and sys.stdout.isatty():  # pragma: no cover -- tty
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_watch(status))
        first = False
        if args.once or status.finished:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover -- interactive
            return 128 + _signal.SIGINT


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.monitor.progress import (
        build_registry,
        load_sweep,
        render_status,
    )

    try:
        status = load_sweep(args.journal_dir)
    except (OSError, ValueError) as exc:
        print(f"{args.journal_dir}: {exc}", file=sys.stderr)
        return 2
    if args.prometheus_path != "-":   # keep stdout exposition parseable
        print(render_status(status))
    registry = build_registry(status)
    if args.json_path is not None:
        _write_document(args.json_path, {
            "schema": DOCUMENT_SCHEMA,
            "journal_dir": status.journal_dir,
            "counts": status.counts(),
            "metrics": registry.to_dict(),
        })
    if args.prometheus_path is not None:
        text = registry.to_prometheus()
        if args.prometheus_path == "-":
            sys.stdout.write(text)
        else:
            from repro.checkpoint.atomic import write_text_atomic
            write_text_atomic(args.prometheus_path, text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    from repro.serve.server import serve_forever
    from repro.serve.service import ScenarioService

    spool_dir = args.spool_dir
    if spool_dir is None:
        spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
    kwargs: Dict[str, Any] = {
        "timeout_s": args.timeout,
        "retries": args.retries,
    }
    if args.publish_every is not None:
        kwargs["publish_every"] = args.publish_every
    service = ScenarioService(spool_dir, args.cache_dir, **kwargs)
    return serve_forever(service, args.host, args.port,
                         jobs=args.jobs, quiet=args.quiet)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_legacy_rewrite(list(argv)))
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "checkpoint-run":
        return _cmd_checkpoint_run(args)
    if args.command == "trace-export":
        return _cmd_trace_export(args)
    if args.command == "trace-diff":
        return _cmd_trace_diff(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "sweep-status":
        return _cmd_sweep_status(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "sweep":
        sweep_names = [s.spec.name for s in scenarios_of_kind("sweep")]
        names = sweep_names if args.scenario == "all" else [args.scenario]
        return _cmd_run(args, names)
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    return _cmd_run(args, names)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
