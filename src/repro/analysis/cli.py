"""Command-line entry point: ``repro-experiments`` / ``python -m repro.analysis``.

Usage::

    repro-experiments table1              # one experiment
    repro-experiments all                 # everything
    repro-experiments table5 --fast       # reduced run lengths
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Queue Management in "
            "Network Processors' (DATE 2005) from the behavioral models."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which published artifact to regenerate",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="shorter simulations (CI mode; slightly noisier numbers)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        report = EXPERIMENTS[name](fast=args.fast)
        print(report.rendered)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
