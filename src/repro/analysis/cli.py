"""Command-line entry point: ``repro-experiments`` / ``python -m repro.analysis``.

The CLI is a thin front-end over the scenario registry
(:mod:`repro.scenarios`)::

    repro-experiments list                         # every scenario
    repro-experiments list --kind sweep            # one category
    repro-experiments list --kind overload --json -  # machine-readable
    repro-experiments run table1 --engine reference --seed 7
    repro-experiments run all --fast --json out.json
    repro-experiments sweep all --fast             # just the sweeps
    repro-experiments sweep all --jobs 4           # process-pool parallel

``run``/``sweep`` accept ``--engine fast|reference`` and ``--seed N``;
each scenario honors the knobs it declares (closed-form scenarios have
no engine, for example) and silently keeps its defaults for the rest.
``--json PATH`` additionally writes the typed results (schema-valid
:class:`repro.scenarios.RunResult` dicts) to a file, or to stdout with
``--json -``.

The pre-scenario invocation style (``repro-experiments table1 --fast``)
still works as an alias for ``run table1 --fast``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.scenarios import (
    BUDGETS,
    ENGINES,
    KINDS,
    Runner,
    all_scenarios,
    render,
    scenario_names,
    scenarios_of_kind,
)
#: Envelope schema version for --json documents.
DOCUMENT_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables, figures, sweeps and ablations of "
            "'Queue Management in Network Processors' (DATE 2005) from "
            "the behavioral models."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate registered scenarios")
    p_list.add_argument("--kind", choices=KINDS, default=None,
                        help="only scenarios of one category")
    p_list.add_argument("--json", dest="json_path", metavar="PATH",
                        default=None,
                        help="write the listing as JSON ('-' for stdout) "
                             "instead of the text table")

    def add_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run scenarios on a process pool of N workers "
                            "(results stay in scenario order and are "
                            "seed-deterministic; default: 1, in-process)")

    def add_run_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fast", action="store_true",
                       help="fast run-length budget (CI mode; noisier numbers)")
        p.add_argument("--engine", choices=ENGINES, default=None,
                       help="execution engine for scenarios that support it")
        p.add_argument("--seed", type=int, default=None,
                       help="RNG seed for scenarios that support it")
        p.add_argument("--json", dest="json_path", metavar="PATH",
                       default=None,
                       help="write typed results as JSON ('-' for stdout)")
        p.add_argument("--telemetry", action="store_true",
                       help="enable streaming telemetry (latency "
                            "histograms, occupancy series) for scenarios "
                            "that support it; the snapshot lands in "
                            "metrics.telemetry of the --json document")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the rendered tables")

    p_run = sub.add_parser("run", help="run one scenario (or 'all')")
    p_run.add_argument("scenario",
                       choices=scenario_names() + ["all"],
                       help="which scenario to run")
    add_run_flags(p_run)

    sweep_names = [s.spec.name for s in scenarios_of_kind("sweep")]
    p_sweep = sub.add_parser("sweep",
                             help="run one parameter sweep (or 'all')")
    p_sweep.add_argument("scenario", choices=sweep_names + ["all"],
                         help="which sweep to run")
    add_run_flags(p_sweep)
    add_jobs_flag(p_sweep)

    return parser


def _legacy_rewrite(argv: List[str]) -> List[str]:
    """Map the pre-scenario invocation style onto ``run``.

    ``repro-experiments table1 --fast`` (and the option-first ordering
    argparse used to accept, ``--fast table1``) predate the
    subcommands; keep both working as aliases for ``run``.
    """
    if not argv or argv[0] in ("list", "run", "sweep"):
        return argv
    legacy = set(scenario_names()) | {"all"}
    if any(token in legacy for token in argv):
        return ["run"] + argv
    return argv


def _cmd_list(args: argparse.Namespace) -> int:
    specs = [scenario.spec for scenario in all_scenarios().values()
             if not args.kind or scenario.spec.kind == args.kind]
    specs.sort(key=lambda s: (KINDS.index(s.kind), s.name))
    if args.json_path is not None:
        doc = {
            "schema": DOCUMENT_SCHEMA,
            "scenarios": [{
                "name": spec.name,
                "kind": spec.kind,
                "workload": spec.workload,
                "title": spec.title,
                "description": spec.description,
                "supports": sorted(spec.supports),
                "fastpath": spec.fastpath,
                "telemetry": spec.telemetry is not None,
                "engine": spec.effective_engine,
                "budget": spec.budget,
                "seed": spec.seed,
            } for spec in specs],
        }
        text = json.dumps(doc, indent=2) + "\n"
        if args.json_path == "-":
            sys.stdout.write(text)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(text)
        return 0
    rows = [(spec.name, spec.kind, spec.workload,
             ",".join(sorted(spec.supports)) or "-", spec.description)
            for spec in specs]
    widths = [max(len(str(r[i])) for r in rows) for i in range(4)]
    for r in rows:
        print(f"{r[0]:<{widths[0]}}  {r[1]:<{widths[1]}}  "
              f"{r[2]:<{widths[2]}}  {r[3]:<{widths[3]}}  {r[4]}")
    return 0


def _worker_init(paths: List[str]) -> None:
    """Process-pool initializer: mirror the parent's import path (the
    repo is usually run from a source checkout via PYTHONPATH=src)."""
    sys.path[:] = paths


def _run_one_serialized(payload) -> dict:
    """Run one scenario in a worker; returns the serialized result.

    Module-level (picklable) on purpose; seeds travel with the payload,
    so a pool run is exactly as deterministic as a serial one.
    """
    name, engine, seed, fast, telemetry = payload
    result = Runner().run(name, engine=engine, seed=seed, fast=fast,
                          telemetry=telemetry)
    return result.to_dict()


def _run_pool(names: List[str], args: argparse.Namespace, jobs: int):
    """Run scenarios on a process pool, results in input order."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.scenarios import RunResult

    payloads = [(name, args.engine, args.seed, args.fast or None,
                 args.telemetry or None)
                for name in names]
    with ProcessPoolExecutor(max_workers=jobs, initializer=_worker_init,
                             initargs=(list(sys.path),)) as pool:
        # executor.map preserves input order regardless of completion
        # order, which keeps --json documents byte-stable across runs
        # (modulo wall_clock_s)
        return [RunResult.from_dict(d)
                for d in pool.map(_run_one_serialized, payloads)]


def _cmd_run(args: argparse.Namespace, names: List[str]) -> int:
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    if jobs > 1 and len(names) > 1:
        results = _run_pool(names, args, min(jobs, len(names)))
        if not args.quiet:
            for result in results:
                print(render(result))
                print()
    else:
        runner = Runner()
        results = []
        for name in names:
            result = runner.run(name, engine=args.engine, seed=args.seed,
                                fast=args.fast or None,
                                telemetry=args.telemetry or None)
            results.append(result)
            if not args.quiet:
                print(render(result))
                print()
    if args.json_path is not None:
        doc = {"schema": DOCUMENT_SCHEMA,
               "runs": [r.to_dict() for r in results]}
        text = json.dumps(doc, indent=2) + "\n"
        if args.json_path == "-":
            sys.stdout.write(text)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_legacy_rewrite(list(argv)))
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "sweep":
        sweep_names = [s.spec.name for s in scenarios_of_kind("sweep")]
        names = sweep_names if args.scenario == "all" else [args.scenario]
        return _cmd_run(args, names)
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    return _cmd_run(args, names)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
