"""Command-line entry point: ``repro-experiments`` / ``python -m repro.analysis``.

The CLI is a thin front-end over the scenario registry
(:mod:`repro.scenarios`)::

    repro-experiments list                         # every scenario
    repro-experiments list --kind sweep            # one category
    repro-experiments run table1 --engine reference --seed 7
    repro-experiments run all --fast --json out.json
    repro-experiments sweep all --fast             # just the sweeps

``run``/``sweep`` accept ``--engine fast|reference`` and ``--seed N``;
each scenario honors the knobs it declares (closed-form scenarios have
no engine, for example) and silently keeps its defaults for the rest.
``--json PATH`` additionally writes the typed results (schema-valid
:class:`repro.scenarios.RunResult` dicts) to a file, or to stdout with
``--json -``.

The pre-scenario invocation style (``repro-experiments table1 --fast``)
still works as an alias for ``run table1 --fast``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.scenarios import (
    BUDGETS,
    ENGINES,
    KINDS,
    Runner,
    all_scenarios,
    render,
    scenario_names,
    scenarios_of_kind,
)

#: Envelope schema version for --json documents.
DOCUMENT_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables, figures, sweeps and ablations of "
            "'Queue Management in Network Processors' (DATE 2005) from "
            "the behavioral models."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate registered scenarios")
    p_list.add_argument("--kind", choices=KINDS, default=None,
                        help="only scenarios of one category")

    def add_run_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fast", action="store_true",
                       help="fast run-length budget (CI mode; noisier numbers)")
        p.add_argument("--engine", choices=ENGINES, default=None,
                       help="execution engine for scenarios that support it")
        p.add_argument("--seed", type=int, default=None,
                       help="RNG seed for scenarios that support it")
        p.add_argument("--json", dest="json_path", metavar="PATH",
                       default=None,
                       help="write typed results as JSON ('-' for stdout)")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the rendered tables")

    p_run = sub.add_parser("run", help="run one scenario (or 'all')")
    p_run.add_argument("scenario",
                       choices=scenario_names() + ["all"],
                       help="which scenario to run")
    add_run_flags(p_run)

    sweep_names = [s.spec.name for s in scenarios_of_kind("sweep")]
    p_sweep = sub.add_parser("sweep",
                             help="run one parameter sweep (or 'all')")
    p_sweep.add_argument("scenario", choices=sweep_names + ["all"],
                         help="which sweep to run")
    add_run_flags(p_sweep)

    return parser


def _legacy_rewrite(argv: List[str]) -> List[str]:
    """Map the pre-scenario invocation style onto ``run``.

    ``repro-experiments table1 --fast`` (and the option-first ordering
    argparse used to accept, ``--fast table1``) predate the
    subcommands; keep both working as aliases for ``run``.
    """
    if not argv or argv[0] in ("list", "run", "sweep"):
        return argv
    legacy = set(scenario_names()) | {"all"}
    if any(token in legacy for token in argv):
        return ["run"] + argv
    return argv


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name, scenario in all_scenarios().items():
        spec = scenario.spec
        if args.kind and spec.kind != args.kind:
            continue
        knobs = ",".join(sorted(spec.supports)) or "-"
        rows.append((name, spec.kind, spec.workload, knobs, spec.description))
    rows.sort(key=lambda r: (KINDS.index(r[1]), r[0]))
    widths = [max(len(str(r[i])) for r in rows) for i in range(4)]
    for r in rows:
        print(f"{r[0]:<{widths[0]}}  {r[1]:<{widths[1]}}  "
              f"{r[2]:<{widths[2]}}  {r[3]:<{widths[3]}}  {r[4]}")
    return 0


def _cmd_run(args: argparse.Namespace, names: List[str]) -> int:
    runner = Runner()
    results = []
    for name in names:
        result = runner.run(name, engine=args.engine, seed=args.seed,
                            fast=args.fast or None)
        results.append(result)
        if not args.quiet:
            print(render(result))
            print()
    if args.json_path is not None:
        doc = {"schema": DOCUMENT_SCHEMA,
               "runs": [r.to_dict() for r in results]}
        text = json.dumps(doc, indent=2) + "\n"
        if args.json_path == "-":
            sys.stdout.write(text)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_legacy_rewrite(list(argv)))
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "sweep":
        sweep_names = [s.spec.name for s in scenarios_of_kind("sweep")]
        names = sweep_names if args.scenario == "all" else [args.scenario]
        return _cmd_run(args, names)
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    return _cmd_run(args, names)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
