"""Experiment harness: paper data, rendering, CLI, legacy drivers.

``python -m repro.analysis run table1`` (or the installed
``repro-experiments`` script) regenerates any published artifact and
prints it side-by-side with the paper's numbers.  Execution lives in
:mod:`repro.scenarios` (declarative specs + Runner + typed results);
this package keeps the paper's numbers (:mod:`~repro.analysis.paper_data`),
the table renderer (:mod:`~repro.analysis.tables`), the sweep helpers
(:mod:`~repro.analysis.sweeps`), the CLI front-end and the deprecated
``run_tableN`` shims (:mod:`~repro.analysis.experiments`).
"""

from repro.analysis.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.analysis.tables import format_table, format_comparison
from repro.analysis.sweeps import (
    SweepSeries,
    ascii_plot,
    ddr_loss_vs_banks,
    ixp_rate_vs_queues,
    mms_delay_vs_load,
    npu_rate_vs_clock,
)
from repro.analysis.experiments import (
    ExperimentReport,
    run_figure1,
    run_figure2,
    run_headline,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "format_table",
    "format_comparison",
    "ExperimentReport",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure1",
    "run_figure2",
    "run_headline",
    "SweepSeries",
    "ascii_plot",
    "ddr_loss_vs_banks",
    "ixp_rate_vs_queues",
    "npu_rate_vs_clock",
    "mms_delay_vs_load",
]
