"""Experiment harness: one driver per table/figure of the paper.

``python -m repro.analysis table1`` (or the installed
``repro-experiments`` script) regenerates any published artifact and
prints it side-by-side with the paper's numbers.  The benchmark suite in
``benchmarks/`` wraps the same drivers.
"""

from repro.analysis.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.analysis.tables import format_table, format_comparison
from repro.analysis.sweeps import (
    SweepSeries,
    ascii_plot,
    ddr_loss_vs_banks,
    ixp_rate_vs_queues,
    mms_delay_vs_load,
    npu_rate_vs_clock,
)
from repro.analysis.experiments import (
    ExperimentReport,
    run_figure1,
    run_figure2,
    run_headline,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "format_table",
    "format_comparison",
    "ExperimentReport",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure1",
    "run_figure2",
    "run_headline",
    "SweepSeries",
    "ascii_plot",
    "ddr_loss_vs_banks",
    "ixp_rate_vs_queues",
    "npu_rate_vs_clock",
    "mms_delay_vs_load",
]
