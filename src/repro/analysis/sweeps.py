"""Parameter sweeps: the paper's tables generalized into series.

Each sweep extends a published table along its natural axis — more bank
counts than Table 1 prints, a continuous load axis for Table 5, clock
scaling for the Section 5.4 rule of thumb — so downstream users can ask
"what if" questions the paper answers only at a few points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mms import MmsConfig, run_load
from repro.ixp import IxpParams, build_queue_program, simulate_ixp
from repro.mem import simulate_throughput_loss
from repro.npu import CopyStrategy, QueueSwModel


@dataclass(frozen=True)
class SweepSeries:
    """One named series of (x, y) points."""

    name: str
    x_label: str
    y_label: str
    points: Tuple[Tuple[float, float], ...]

    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    def ys(self) -> List[float]:
        return [p[1] for p in self.points]


def ddr_loss_vs_banks(banks: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 24, 32),
                      optimized: bool = True,
                      model_rw_turnaround: bool = False,
                      num_accesses: int = 20_000,
                      seed: int = 2005,
                      engine: str = "fast") -> SweepSeries:
    """Table 1's bank axis, continuously: loss vs number of banks."""
    points = []
    for b in banks:
        res = simulate_throughput_loss(
            b, optimized=optimized, model_rw_turnaround=model_rw_turnaround,
            num_accesses=num_accesses, seed=seed, engine=engine)
        points.append((float(b), res.loss))
    label = "reordering" if optimized else "serializing"
    return SweepSeries(name=f"ddr-loss-{label}", x_label="banks",
                       y_label="throughput loss", points=tuple(points))


def ixp_rate_vs_queues(queue_counts: Sequence[int] = (8, 16, 32, 64, 128,
                                                      256, 512, 1024, 2048),
                       engines: int = 1,
                       params: IxpParams = IxpParams(),
                       engine: str = "fast") -> SweepSeries:
    """Table 2's queue axis, continuously: Kpps vs queue count."""
    points = []
    for q in queue_counts:
        res = simulate_ixp(q, engines, params=params, engine=engine)
        points.append((float(q), res.kpps))
    return SweepSeries(name=f"ixp-rate-{engines}me", x_label="queues",
                       y_label="Kpps", points=tuple(points))


def npu_rate_vs_clock(clocks_mhz: Sequence[float] = (50, 100, 200, 300, 400),
                      strategy: CopyStrategy = CopyStrategy.WORD
                      ) -> SweepSeries:
    """Section 5.4's rule of thumb: sustainable rate vs CPU clock.

    "the clock frequency of the system is proportional to the network
    bandwidth supported" -- the series is exactly linear in this model
    (the PLB scales with the core here; the paper notes the bus tops out
    around 200 MHz in practice).
    """
    model = QueueSwModel()
    points = [
        (float(mhz), model.full_duplex_gbps(strategy, clock_mhz=mhz) * 1000)
        for mhz in clocks_mhz
    ]
    return SweepSeries(name=f"npu-{strategy.value}", x_label="clock MHz",
                       y_label="full-duplex Mbps", points=tuple(points))


def mms_delay_vs_load(loads_gbps: Sequence[float] = (1.0, 2.0, 3.0, 4.0,
                                                     5.0, 5.5, 6.0),
                      config: Optional[MmsConfig] = None,
                      num_volleys: int = 800,
                      seed: int = 2005,
                      engine: str = "fast") -> Dict[str, SweepSeries]:
    """Table 5's load axis, continuously: each delay component vs load."""
    cfg = config or MmsConfig(num_flows=1024, num_segments=8192,
                              num_descriptors=4096)
    fifo, data, total = [], [], []
    for load in loads_gbps:
        res = run_load(load, num_volleys=num_volleys, config=cfg,
                       warmup_volleys=max(50, num_volleys // 8),
                       seed=seed, engine=engine)
        fifo.append((load, res.fifo_cycles))
        data.append((load, res.data_cycles))
        total.append((load, res.total_cycles))
    return {
        "fifo": SweepSeries("mms-fifo", "Gbps", "cycles", tuple(fifo)),
        "data": SweepSeries("mms-data", "Gbps", "cycles", tuple(data)),
        "total": SweepSeries("mms-total", "Gbps", "cycles", tuple(total)),
    }


def ixp_cycles_vs_queues_closed_form(
        queue_counts: Sequence[int] = (8, 16, 32, 64, 128, 256, 512, 1024),
        params: IxpParams = IxpParams()) -> SweepSeries:
    """Unloaded cycles-per-packet vs queue count (no simulation)."""
    points = [
        (float(q), float(build_queue_program(q, params).unloaded_cycles(params)))
        for q in queue_counts
    ]
    return SweepSeries(name="ixp-cycles", x_label="queues",
                       y_label="cycles/packet", points=tuple(points))


def ascii_plot(series: SweepSeries, width: int = 50) -> str:
    """Render a sweep as a left-to-right ASCII bar chart."""
    if not series.points:
        raise ValueError("series has no points")
    ymax = max(series.ys()) or 1.0
    lines = [f"{series.name}: {series.y_label} vs {series.x_label}"]
    for x, y in series.points:
        bar = "#" * max(1, round(y / ymax * width)) if y > 0 else ""
        lines.append(f"{x:>10g} | {bar} {y:.3g}")
    return "\n".join(lines)
