"""Every number the paper publishes, as data.

Single source of truth for the comparison harness and the regression
tests: if a model change drifts away from the paper, the diff shows up
against these constants.
"""

from __future__ import annotations

#: Table 1 -- DDR-DRAM throughput loss using 1 to 16 banks.
#: banks -> (no-opt conflicts, no-opt conflicts+interleaving,
#:           optimized conflicts, optimized conflicts+interleaving)
PAPER_TABLE1 = {
    1: (0.750, 0.75, 0.750, 0.750),
    4: (0.522, 0.5, 0.260, 0.331),
    8: (0.384, 0.39, 0.046, 0.199),
    12: (0.305, 0.347, 0.012, 0.159),
    16: (0.253, 0.317, 0.003, 0.139),
}

#: Table 2 -- maximum rate serviced by IXP1200 queue management (Kpps).
#: (num_queues, num_microengines) -> Kpps
PAPER_TABLE2 = {
    (16, 1): 956,
    (16, 6): 5600,
    (128, 1): 390,
    (128, 6): 2300,
    (1024, 1): 60,
    (1024, 6): 300,
}

#: Table 3 -- cycles per packet operation on the reference NPU.
#: row -> (enqueue cycles, dequeue cycles); enqueue tuple = (first, rest)
PAPER_TABLE3 = {
    "free_list": (34, 42),
    "segment_first": (46, 52),
    "segment_rest": (68, 52),
    "copy": (136, 136),
    "total_first": (216, 230),
    "total_rest": (238, 230),
}

#: Section 5.3 improvement figures.
PAPER_LINE_COPY_CYCLES = 24
PAPER_LINE_TOTALS = (128, 118)   # enqueue, dequeue ("becomes 128 and 118")
PAPER_DMA_SETUP_CYCLES = 16
PAPER_DMA_TRANSFER_CYCLES = 34

#: Table 4 -- latency of the MMS commands (cycles at 125 MHz).
PAPER_TABLE4 = {
    "enqueue": 10,
    "read": 10,
    "overwrite": 10,
    "move": 11,
    "delete": 7,
    "overwrite_segment_length": 7,
    "dequeue": 11,
    "overwrite_segment_length_and_move": 12,
    "overwrite_segment_and_move": 12,
}

#: Table 5 -- MMS delays (cycles) per offered load (Gbps).
#: load -> (fifo, execution, data, total)
PAPER_TABLE5 = {
    6.14: (68.0, 10.5, 31.3, 109.8),
    4.8: (57.0, 10.5, 30.8, 98.3),
    4.0: (20.0, 10.5, 30.0, 60.5),
    3.2: (20.0, 10.5, 29.1, 59.6),
    1.6: (20.0, 10.5, 28.0, 58.5),
}

#: Headline claims.
PAPER_MMS_MOPS = 12.0             # "12 Mops/sec operating at 125MHz"
PAPER_MMS_NS_PER_OP = 84.0        # "one operation per 84 ns"
PAPER_MMS_GBPS = 6.145            # "the overall bandwidth ... is 6.145Gbps"
PAPER_IXP_MAX_MBPS_1K_QUEUES = 150.0   # Section 4 claim
PAPER_NPU_BASE_FULL_DUPLEX_MBPS = 100.0  # Section 5.3/5.4 rule of thumb
PAPER_NPU_LINE_FULL_DUPLEX_MBPS = 200.0  # "up to about 200 Mbps"
PAPER_DDR_PEAK_GBPS = 12.8
