"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table.

    Floats are shown with 3 significant decimals; everything else via
    ``str``.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered: List[List[str]] = [[_cell(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered.append([_cell(c) for c in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, r in enumerate(rendered):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_comparison(headers: Sequence[str],
                      rows: Sequence[Sequence[object]],
                      paper_col: int, model_col: int,
                      title: Optional[str] = None) -> str:
    """Like :func:`format_table` but appends a relative-delta column
    computed between a paper column and a model column."""
    out_headers = list(headers) + ["delta"]
    out_rows = []
    for row in rows:
        paper = row[paper_col]
        model = row[model_col]
        delta = _delta(paper, model)
        out_rows.append(list(row) + [delta])
    return format_table(out_headers, out_rows, title=title)


def _delta(paper: object, model: object) -> str:
    try:
        p = float(paper)  # type: ignore[arg-type]
        m = float(model)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return ""
    if p == 0:
        return f"{m - p:+.3f}"
    return f"{(m - p) / p * 100:+.1f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)
