"""Experiment drivers: regenerate every table and figure of the paper.

Each ``run_*`` function executes the corresponding simulation(s) and
returns an :class:`ExperimentReport` carrying the raw values and a
rendered paper-vs-model comparison.  ``fast=True`` shrinks simulation
lengths for CI-style runs; defaults aim at repeatable 3-digit results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import paper_data as paper
from repro.analysis.tables import format_comparison, format_table
from repro.core import CommandType, MICROCODE, MmsConfig
from repro.core.mms import figure2_diagram, run_load, run_saturation
from repro.ixp import simulate_ixp
from repro.mem import simulate_throughput_loss
from repro.net import pps_to_gbps
from repro.npu import CopyStrategy, QueueSwModel
from repro.npu.system import figure1_diagram


@dataclass
class ExperimentReport:
    """Outcome of one experiment driver."""

    experiment: str
    rendered: str
    values: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendered


#: Moderate MMS configuration: full results, minutes-not-hours runtime.
_MMS_CFG = MmsConfig(num_flows=2048, num_segments=16384, num_descriptors=8192)


def run_table1(fast: bool = False, seed: int = 2005,
               engine: str = "fast") -> ExperimentReport:
    """Table 1: DDR throughput loss vs banks and scheduler.

    ``engine`` selects the DDR execution engine (``"fast"`` = batched
    bank model, ``"reference"`` = per-access generator walk); results
    are bit-identical, only wall-clock differs.
    """
    accesses = 20_000 if fast else 100_000
    rows = []
    values: Dict[str, object] = {}
    for banks, (p_ser, p_ser_rw, p_opt, p_opt_rw) in paper.PAPER_TABLE1.items():
        ours = []
        for optimized, rw in ((False, False), (False, True),
                              (True, False), (True, True)):
            res = simulate_throughput_loss(
                banks, optimized=optimized, model_rw_turnaround=rw,
                num_accesses=accesses, seed=seed, engine=engine)
            ours.append(res.loss)
        values[f"banks{banks}"] = tuple(ours)
        rows.append([banks, p_ser, round(ours[0], 3), p_ser_rw,
                     round(ours[1], 3), p_opt, round(ours[2], 3),
                     p_opt_rw, round(ours[3], 3)])
    rendered = format_table(
        ["banks",
         "ser/conf (paper)", "ser/conf (ours)",
         "ser/conf+rw (paper)", "ser/conf+rw (ours)",
         "opt/conf (paper)", "opt/conf (ours)",
         "opt/conf+rw (paper)", "opt/conf+rw (ours)"],
        rows,
        title="Table 1: DDR-DRAM throughput loss, 1-16 banks",
    )
    return ExperimentReport("table1", rendered, values)


def run_table2(fast: bool = False) -> ExperimentReport:
    """Table 2: IXP1200 maximum serviced rate vs queues and engines."""
    rows = []
    values: Dict[str, object] = {}
    for (queues, engines), want_kpps in paper.PAPER_TABLE2.items():
        res = simulate_ixp(queues, engines)
        values[f"q{queues}_e{engines}"] = res.kpps
        rows.append([queues, engines, want_kpps, round(res.kpps, 1)])
    rendered = format_comparison(
        ["queues", "engines", "paper Kpps", "model Kpps"],
        rows, paper_col=2, model_col=3,
        title="Table 2: IXP1200 queue management rate",
    )
    return ExperimentReport("table2", rendered, values)


def run_table3(fast: bool = False) -> ExperimentReport:
    """Table 3 + Section 5.3 variants: software queue-manager cycles."""
    model = QueueSwModel()
    p = model.params
    word = CopyStrategy.WORD
    rows = [
        ["Dequeue Free List", paper.PAPER_TABLE3["free_list"][0],
         model.free_pop.cpu_cycles(p), paper.PAPER_TABLE3["free_list"][1],
         model.free_push.cpu_cycles(p)],
        ["Enqueue Segment (first)", paper.PAPER_TABLE3["segment_first"][0],
         model.link_first.cpu_cycles(p), paper.PAPER_TABLE3["segment_first"][1],
         model.unlink.cpu_cycles(p)],
        ["Enqueue Segment (rest)", paper.PAPER_TABLE3["segment_rest"][0],
         model.link_rest.cpu_cycles(p), paper.PAPER_TABLE3["segment_rest"][1],
         model.unlink.cpu_cycles(p)],
        ["Copy a segment", paper.PAPER_TABLE3["copy"][0],
         model.copy_cost(word).cpu_cycles(p), paper.PAPER_TABLE3["copy"][1],
         model.copy_cost(word).cpu_cycles(p)],
        ["Total (first)", paper.PAPER_TABLE3["total_first"][0],
         model.enqueue_cycles(word, first_segment=True),
         paper.PAPER_TABLE3["total_first"][1], model.dequeue_cycles(word)],
        ["Total (rest)", paper.PAPER_TABLE3["total_rest"][0],
         model.enqueue_cycles(word, first_segment=False),
         paper.PAPER_TABLE3["total_rest"][1], model.dequeue_cycles(word)],
    ]
    base = format_table(
        ["function", "enq (paper)", "enq (ours)", "deq (paper)", "deq (ours)"],
        rows, title="Table 3: cycles per segment operation (PowerPC/PLB)")
    variants = format_table(
        ["copy strategy", "enqueue", "dequeue", "full-duplex Mbps"],
        [[s.value,
          model.enqueue_cycles(s, first_segment=False),
          model.dequeue_cycles(s),
          round(model.full_duplex_gbps(s) * 1000, 1)]
         for s in CopyStrategy],
        title="Section 5.3 variants (paper: word ~100 Mbps, line ~200 Mbps)")
    values = {
        "enqueue_word": model.enqueue_cycles(word, first_segment=True),
        "dequeue_word": model.dequeue_cycles(word),
        "line_copy": model.copy_cost(CopyStrategy.LINE).cpu_cycles(p),
        "fd_word_mbps": model.full_duplex_gbps(word) * 1000,
        "fd_line_mbps": model.full_duplex_gbps(CopyStrategy.LINE) * 1000,
    }
    return ExperimentReport("table3", base + "\n\n" + variants, values)


def run_table4(fast: bool = False) -> ExperimentReport:
    """Table 4: latency of the MMS commands."""
    rows = []
    values: Dict[str, object] = {}
    for name, want in paper.PAPER_TABLE4.items():
        ct = CommandType(name)
        got = MICROCODE[ct].latency_cycles
        values[name] = got
        rows.append([name, want, got])
    rendered = format_comparison(
        ["command", "paper cycles", "model cycles"],
        rows, paper_col=1, model_col=2,
        title="Table 4: latency of the MMS commands (125 MHz)")
    return ExperimentReport("table4", rendered, values)


def run_table5(fast: bool = False, config: Optional[MmsConfig] = None
               ) -> ExperimentReport:
    """Table 5: MMS delay decomposition vs offered load."""
    cfg = config or _MMS_CFG
    volleys = 800 if fast else 2500
    warmup = 100 if fast else 300
    rows = []
    values: Dict[str, object] = {}
    for load in sorted(paper.PAPER_TABLE5, reverse=True):
        p_fifo, p_exec, p_data, p_total = paper.PAPER_TABLE5[load]
        res = run_load(load, num_volleys=volleys, config=cfg,
                       warmup_volleys=warmup)
        values[f"load{load}"] = (res.fifo_cycles, res.execution_cycles,
                                 res.data_cycles, res.total_cycles)
        rows.append([load,
                     p_fifo, round(res.fifo_cycles, 1),
                     p_exec, round(res.execution_cycles, 1),
                     p_data, round(res.data_cycles, 1),
                     p_total, round(res.total_cycles, 1)])
    rendered = format_table(
        ["Gbps", "fifo (paper)", "fifo (ours)", "exec (paper)", "exec (ours)",
         "data (paper)", "data (ours)", "total (paper)", "total (ours)"],
        rows, title="Table 5: MMS delays vs offered load (cycles)")
    return ExperimentReport("table5", rendered, values)


def run_headline(fast: bool = False) -> ExperimentReport:
    """Cross-cutting claims: MMS saturation rate, IXP 1K-queue ceiling,
    the PowerPC rule of thumb."""
    sat = run_saturation(num_commands=2000 if fast else 8000, config=_MMS_CFG)
    ixp = simulate_ixp(1024, 6)
    sw = QueueSwModel()
    rows = [
        ["MMS ops rate (Mops/s)", paper.PAPER_MMS_MOPS,
         round(sat.achieved_mops, 2)],
        ["MMS bandwidth (Gbps)", paper.PAPER_MMS_GBPS,
         round(sat.achieved_gbps, 3)],
        ["IXP 6-engine, 1K queues (Mbps)", paper.PAPER_IXP_MAX_MBPS_1K_QUEUES,
         round(pps_to_gbps(ixp.pps, 64) * 1000, 1)],
        ["PowerPC word-copy full duplex (Mbps)",
         paper.PAPER_NPU_BASE_FULL_DUPLEX_MBPS,
         round(sw.full_duplex_gbps(CopyStrategy.WORD) * 1000, 1)],
        ["PowerPC line-copy full duplex (Mbps)",
         paper.PAPER_NPU_LINE_FULL_DUPLEX_MBPS,
         round(sw.full_duplex_gbps(CopyStrategy.LINE) * 1000, 1)],
    ]
    rendered = format_comparison(
        ["claim", "paper", "model"], rows, paper_col=1, model_col=2,
        title="Headline claims")
    values = {
        "mms_mops": sat.achieved_mops,
        "mms_gbps": sat.achieved_gbps,
        "ixp_1k_mbps": pps_to_gbps(ixp.pps, 64) * 1000,
    }
    return ExperimentReport("headline", rendered, values)


def run_figure1(fast: bool = False) -> ExperimentReport:
    """Figure 1: the reference NPU architecture (structural)."""
    return ExperimentReport("figure1", figure1_diagram())


def run_figure2(fast: bool = False) -> ExperimentReport:
    """Figure 2: the MMS architecture (structural)."""
    return ExperimentReport("figure2", figure2_diagram())


#: Registry used by the CLI and the benchmarks.
EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "headline": run_headline,
}
