"""Deprecated experiment drivers: thin shims over :mod:`repro.scenarios`.

The hand-written ``run_tableN(fast=...)`` drivers that used to live here
are now declarative scenarios in :mod:`repro.scenarios.catalog`,
executed by :class:`repro.scenarios.Runner` and rendered by the
presenter.  Each ``run_*`` function below delegates to the registry,
emits a :class:`DeprecationWarning`, and returns the familiar
:class:`ExperimentReport` -- with output proven byte-identical to the
new path by ``tests/scenarios/test_runner.py``.

New code should use the scenario API directly::

    from repro.scenarios import Runner, render
    result = Runner().run("table1", engine="reference", seed=7, fast=True)
    print(render(result))
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core import MmsConfig


@dataclass
class ExperimentReport:
    """Outcome of one experiment driver (legacy result type)."""

    experiment: str
    rendered: str
    values: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendered


def _delegate(name: str, **overrides) -> ExperimentReport:
    """Run a registered scenario and repackage it as a legacy report."""
    warnings.warn(
        f"run_{name}() is deprecated; use "
        f"repro.scenarios.Runner().run({name!r}, ...) and render() instead",
        DeprecationWarning, stacklevel=3)
    from repro.scenarios import Runner, render

    result = Runner().run(name, **overrides)
    return ExperimentReport(name, render(result), dict(result.metrics))


def run_table1(fast: bool = False, seed: int = 2005,
               engine: str = "fast") -> ExperimentReport:
    """Table 1: DDR throughput loss vs banks and scheduler.

    .. deprecated:: use ``Runner().run("table1", ...)``.
    """
    return _delegate("table1", fast=fast, seed=seed, engine=engine)


def run_table2(fast: bool = False) -> ExperimentReport:
    """Table 2: IXP1200 maximum serviced rate vs queues and engines.

    .. deprecated:: use ``Runner().run("table2")``.
    """
    return _delegate("table2", fast=fast)


def run_table3(fast: bool = False) -> ExperimentReport:
    """Table 3 + Section 5.3 variants: software queue-manager cycles.

    .. deprecated:: use ``Runner().run("table3")``.
    """
    return _delegate("table3", fast=fast)


def run_table4(fast: bool = False) -> ExperimentReport:
    """Table 4: latency of the MMS commands.

    .. deprecated:: use ``Runner().run("table4")``.
    """
    return _delegate("table4", fast=fast)


def run_table5(fast: bool = False, config: Optional[MmsConfig] = None
               ) -> ExperimentReport:
    """Table 5: MMS delay decomposition vs offered load.

    .. deprecated:: use ``Runner().run("table5", mms=config)``.
    """
    return _delegate("table5", fast=fast, mms=config)


def run_headline(fast: bool = False) -> ExperimentReport:
    """Cross-cutting claims: MMS saturation rate, IXP 1K-queue ceiling,
    the PowerPC rule of thumb.

    .. deprecated:: use ``Runner().run("headline")``.
    """
    return _delegate("headline", fast=fast)


def run_figure1(fast: bool = False) -> ExperimentReport:
    """Figure 1: the reference NPU architecture (structural).

    .. deprecated:: use ``Runner().run("figure1")``.
    """
    return _delegate("figure1", fast=fast)


def run_figure2(fast: bool = False) -> ExperimentReport:
    """Figure 2: the MMS architecture (structural).

    .. deprecated:: use ``Runner().run("figure2")``.
    """
    return _delegate("figure2", fast=fast)


#: Legacy registry (deprecated): maps the historical driver names to the
#: shims above.  The CLI now enumerates ``repro.scenarios`` instead.
EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "headline": run_headline,
}
