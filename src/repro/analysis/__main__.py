"""``python -m repro.analysis`` forwards to the CLI."""

import sys

from repro.analysis.cli import main

sys.exit(main())
