"""Exceptions shared by the queue managers."""


class QueueEmptyError(RuntimeError):
    """Dequeue/peek/move on an empty queue."""
