"""The Section 5.2 software queue structure: segment-linked lists.

"We implemented queues of packets as single-linked lists.  The incoming
data items are partitioned into fixed size segments of 64 bytes each ...
A free-list keeps the free parts of the memory, at any given time, and a
queue-table contains the header of all the employed queues."

"Each segment function is analyzed into separate segment and free list
sub-operations" -- Table 3 prices those sub-operations individually, so
this manager exposes them individually too:

* :meth:`alloc` / :meth:`release` -- the free-list sub-operations
  ("Dequeue Free List" / "Enqueue Free List"),
* :meth:`link_segment` / :meth:`unlink_segment` -- the queue-list
  sub-operations ("Enqueue Segment" / "Dequeue Segment"),

with :meth:`enqueue` / :meth:`dequeue` composing them.  Each
sub-operation returns its ordered pointer-access trace; the platform
models price one PLB transaction per access (Section 5.3).

Pointer-word layout (one ZBT SRAM):

* ``next``   -- per segment slot: link + packed metadata (eop, length),
* ``qhead`` / ``qtail`` -- per queue; the tail word also carries the tail
  segment's metadata so that linking a new segment behind the tail is a
  single full-word write (no read-modify-write),
* ``globals`` -- free-list anchors.

The Table 3 footnote "*46 for the first segment of the packet, 68 for the
rest" is reproduced structurally: non-first segments additionally
accumulate the packet length into the packet's head-segment word (one
read-modify-write), which is how a dequeuing scheduler learns the packet
size without walking the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.policies.base import BufferPolicy, DroppedSegment
from repro.queueing.errors import QueueEmptyError
from repro.queueing.freelist import NIL, FreeList
from repro.queueing.pointer_memory import AccessRecord, PointerMemory

#: Bits of the ``next`` word used for the link; metadata sits above.
LINK_BITS = 24
LINK_MASK = (1 << LINK_BITS) - 1
EOP_BIT = 1 << LINK_BITS
LEN_SHIFT = LINK_BITS + 1


@dataclass(frozen=True)
class SegmentMeta:
    """Metadata carried in a segment's pointer word (+ shadow fields)."""

    eop: bool = False
    length: int = 64
    pid: int = -1   # shadow only (not in SRAM): owning packet id
    index: int = 0  # shadow only: segment index within packet

    def __post_init__(self) -> None:
        if not 1 <= self.length <= 64:
            raise ValueError(f"segment length must be in [1, 64], got {self.length}")


class SegmentQueueManager:
    """Flat single-linked segment queues with a shared free list."""

    def __init__(self, num_queues: int, num_slots: int,
                 anchors_in_memory: bool = True,
                 policy: Optional[BufferPolicy] = None) -> None:
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1, got {num_queues}")
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        self.num_queues = num_queues
        self.num_slots = num_slots
        self.mem = PointerMemory()
        self.mem.add_region("next", num_slots)
        self.mem.add_region("qhead", num_queues)
        self.mem.add_region("qtail", num_queues)
        self.mem.add_region("globals", 2)
        self.mem.freeze()
        self.free = FreeList(self.mem, num_slots,
                             anchors_in_memory=anchors_in_memory,
                             next_region="next", globals_region="globals")
        self.free.initialize()
        #: Optional buffer-management policy; :meth:`offer` consults it.
        self.policy = policy
        self._shadow: Dict[int, SegmentMeta] = {}
        self._pkt_len_shadow: Dict[int, int] = {}  # head slot -> packet bytes
        self._lengths = [0] * num_queues
        self.mem.reset_counters()  # initialization traffic is boot-time

    # ----------------------------------------------- free-list sub-ops

    def alloc(self) -> Tuple[int, List[AccessRecord]]:
        """'Dequeue Free List': allocate a slot for an incoming segment."""
        self.mem.start_trace()
        try:
            slot = self.free.pop()
        finally:
            trace = self.mem.end_trace()
        return slot, trace

    def release(self, slot: int) -> List[AccessRecord]:
        """'Enqueue Free List': return a slot after its data has left."""
        self.mem.start_trace()
        try:
            self.free.push(slot)
        finally:
            trace = self.mem.end_trace()
        return trace

    # ----------------------------------------------- queue-list sub-ops

    def link_segment(self, queue: int, slot: int, meta: SegmentMeta,
                     packet_head_slot: Optional[int] = None
                     ) -> List[AccessRecord]:
        """'Enqueue Segment': link an allocated slot at the queue tail.

        ``packet_head_slot`` must be given for every segment after the
        first of a packet: the packet's accumulated length is folded into
        the head segment's word (the extra read-modify-write behind the
        68- vs 46-cycle footnote of Table 3).
        """
        self._check_queue(queue)
        self._check_slot(slot)
        self.mem.start_trace()
        try:
            self.mem.write("next", slot, self._pack(NIL, meta))
            tail_word = self.mem.read("qtail", queue)
            if tail_word == NIL:
                self.mem.write("qhead", queue, self._enc(slot))
            else:
                tail_slot = self._dec(tail_word)
                tail_meta_bits = tail_word & ~LINK_MASK
                self.mem.write("next", tail_slot,
                               tail_meta_bits | self._enc(slot))
            self.mem.write("qtail", queue,
                           self._enc(slot) | self._meta_bits(meta))
            if packet_head_slot is not None:
                self._check_slot(packet_head_slot)
                head_word = self.mem.read("next", packet_head_slot)
                # accumulate packet length in the head word (shadowed:
                # the packed field is too narrow for full packet sizes)
                self.mem.write("next", packet_head_slot, head_word)
                self._pkt_len_shadow[packet_head_slot] = (
                    self._pkt_len_shadow.get(packet_head_slot, 0) + meta.length
                )
        finally:
            trace = self.mem.end_trace()
        self._shadow[slot] = meta
        if packet_head_slot is None:
            self._pkt_len_shadow[slot] = meta.length
        self._lengths[queue] += 1
        if self.policy is not None:
            self.policy.note_enqueue(queue, meta.length)
        return trace

    def unlink_segment(self, queue: int) -> Tuple[int, SegmentMeta, List[AccessRecord]]:
        """'Dequeue Segment': unlink the queue's head segment."""
        self._check_queue(queue)
        self.mem.start_trace()
        try:
            head = self.mem.read("qhead", queue)
            if head == NIL:
                raise QueueEmptyError(f"queue {queue} is empty")
            slot = self._dec(head)
            word = self.mem.read("next", slot)
            nxt = word & LINK_MASK
            self.mem.write("qhead", queue, nxt)
            if nxt == NIL:
                self.mem.write("qtail", queue, NIL)
        finally:
            trace = self.mem.end_trace()
        meta = self._shadow.pop(slot)
        self._pkt_len_shadow.pop(slot, None)
        self._lengths[queue] -= 1
        if self.policy is not None:
            self.policy.note_release(queue, meta.length)
        return slot, meta, trace

    # ------------------------------------------------- composed segment ops

    def enqueue(self, queue: int, meta: SegmentMeta = SegmentMeta(),
                packet_head_slot: Optional[int] = None
                ) -> Tuple[int, List[AccessRecord]]:
        """Full enqueue: free-list pop, then queue linking.

        Returns ``(slot, combined_access_trace)``.
        """
        slot, t1 = self.alloc()
        t2 = self.link_segment(queue, slot, meta, packet_head_slot)
        return slot, t1 + t2

    def dequeue(self, queue: int) -> Tuple[int, SegmentMeta, List[AccessRecord]]:
        """Full dequeue: queue unlinking, then free-list push."""
        slot, meta, t1 = self.unlink_segment(queue)
        t2 = self.release(slot)
        return slot, meta, t1 + t2

    # ------------------------------------------------- policy admission

    def offer(self, queue: int, meta: SegmentMeta = SegmentMeta(),
              packet_head_slot: Optional[int] = None
              ) -> Tuple[Union[int, DroppedSegment], List[AccessRecord]]:
        """Policy-governed enqueue.

        With no policy this is :meth:`enqueue` (which raises
        :class:`~repro.queueing.freelist.OutOfBuffersError` on
        exhaustion).  With a policy the arrival is offered first:
        ``drop`` returns a :class:`DroppedSegment` marker, ``pushout``
        evicts the victim queue's tail *segment* (the flat structure's
        tail buffer) via :meth:`drop_tail_segment` and re-consults.
        """
        if self.policy is None:
            return self.enqueue(queue, meta, packet_head_slot)
        self._check_queue(queue)
        excluded: Set[int] = set()
        while True:
            decision = self.policy.admit(queue, meta.length,
                                         exclude=frozenset(excluded))
            if decision.action == "accept":
                slot, trace = self.enqueue(queue, meta, packet_head_slot)
                self.policy.record_accept(queue, meta.length)
                return slot, trace
            if decision.action == "drop":
                self.policy.record_drop(queue, meta.length, decision.reason)
                return DroppedSegment(queue, meta.length, decision.reason), []
            victim = decision.victim
            if self._lengths[victim] == 0:
                excluded.add(victim)
                continue
            _slot, victim_meta, _trace = self.drop_tail_segment(victim)
            self.policy.record_pushout(victim, 1, victim_meta.length,
                                       decision.reason)

    def drop_tail_segment(self, queue: int
                          ) -> Tuple[int, SegmentMeta, List[AccessRecord]]:
        """Push out ``queue``'s tail segment (the LQD eviction unit of
        the flat structure) and free its slot.

        The list is forward-linked, so the tail's predecessor is found
        by walking from the head (shadow ``peek``s; the counted traffic
        is the unlink and the free-list push).  Never touches the head
        unless it is the only segment.  Evicting the last segment of a
        multi-segment packet truncates that packet: the end-of-packet
        mark moves to the new tail and the evicted bytes leave the
        packet's accumulated length, so dequeue_packet and
        packet_length_bytes stay coherent.  Occupancy bookkeeping is
        the caller's duty (see :meth:`BufferPolicy.record_pushout`).
        """
        self._check_queue(queue)
        evicted_meta = None
        self.mem.start_trace()
        try:
            tail_word = self.mem.read("qtail", queue)
            if tail_word == NIL:
                raise QueueEmptyError(f"queue {queue} is empty")
            slot = self._dec(tail_word)
            head_word = self.mem.peek("qhead", queue)
            if self._dec(head_word) == slot:
                self.mem.write("qhead", queue, NIL)
                self.mem.write("qtail", queue, NIL)
            else:
                # walk to the predecessor, tracking the head slot of
                # the packet the evicted tail belongs to
                pred = self._dec(head_word)
                pkt_head = pred
                while True:
                    pred_word = self.mem.peek("next", pred)
                    nxt = self._dec(pred_word)
                    if nxt == slot:
                        break
                    if self._shadow[pred].eop:
                        pkt_head = nxt  # next segment starts a packet
                    pred = nxt
                if self._shadow[pred].eop:
                    pkt_head = slot  # evicted tail is its own packet head
                evicted_meta = self._shadow[slot]
                pred_bits = pred_word & ~LINK_MASK
                if evicted_meta.eop and not self._shadow[pred].eop:
                    # truncation: the packet's end moves to the new tail
                    pred_bits |= EOP_BIT
                    self._shadow[pred] = SegmentMeta(
                        eop=True, length=self._shadow[pred].length,
                        pid=self._shadow[pred].pid,
                        index=self._shadow[pred].index)
                if pkt_head != slot and pkt_head in self._pkt_len_shadow:
                    self._pkt_len_shadow[pkt_head] -= evicted_meta.length
                # the predecessor becomes the tail: clear its link, then
                # mirror its metadata into the tail word
                self.mem.write("next", pred, pred_bits | NIL)
                self.mem.write("qtail", queue, self._enc(pred) | pred_bits)
            self.free.push(slot)
        finally:
            trace = self.mem.end_trace()
        meta = self._shadow.pop(slot)
        self._pkt_len_shadow.pop(slot, None)
        self._lengths[queue] -= 1
        return slot, meta, trace

    # ---------------------------------------------------- packet helpers

    def enqueue_packet(self, queue: int, num_segments: int, pid: int = -1,
                       last_length: int = 64) -> List[int]:
        """Enqueue a whole packet as ``num_segments`` segments."""
        if num_segments < 1:
            raise ValueError(f"num_segments must be >= 1, got {num_segments}")
        slots: List[int] = []
        head_slot: Optional[int] = None
        for i in range(num_segments):
            eop = i == num_segments - 1
            meta = SegmentMeta(eop=eop, length=last_length if eop else 64,
                               pid=pid, index=i)
            slot, _trace = self.enqueue(queue, meta, packet_head_slot=head_slot)
            if head_slot is None:
                head_slot = slot
            slots.append(slot)
        return slots

    def dequeue_packet(self, queue: int) -> List[Tuple[int, SegmentMeta]]:
        """Dequeue segments up to and including the next end-of-packet."""
        out: List[Tuple[int, SegmentMeta]] = []
        while True:
            slot, meta, _trace = self.dequeue(queue)
            out.append((slot, meta))
            if meta.eop:
                return out

    # ------------------------------------------------------------ queries

    def queue_length(self, queue: int) -> int:
        """Occupancy in segments (python-side, no SRAM accesses)."""
        self._check_queue(queue)
        return self._lengths[queue]

    def is_empty(self, queue: int) -> bool:
        return self.queue_length(queue) == 0

    def packet_length_bytes(self, head_slot: int) -> int:
        """Accumulated packet length stored with the head segment."""
        return self._pkt_len_shadow[head_slot]

    def walk_queue(self, queue: int) -> List[int]:
        """Debug walk of a queue's slots, head to tail (counted reads)."""
        self._check_queue(queue)
        slots = []
        cur = self.mem.read("qhead", queue)
        while cur != NIL:
            slot = self._dec(cur)
            slots.append(slot)
            cur = self.mem.read("next", slot) & LINK_MASK
        return slots

    def meta_of(self, slot: int) -> SegmentMeta:
        """Shadow metadata of an allocated slot."""
        return self._shadow[slot]

    @property
    def free_slots(self) -> int:
        return self.free.free_count

    # --------------------------------------------------------- internals

    @staticmethod
    def _enc(slot: int) -> int:
        return slot + 1

    @staticmethod
    def _dec(word: int) -> int:
        return (word & LINK_MASK) - 1

    @staticmethod
    def _meta_bits(meta: SegmentMeta) -> int:
        bits = (meta.length - 1) << LEN_SHIFT
        if meta.eop:
            bits |= EOP_BIT
        return bits

    @classmethod
    def _pack(cls, link: int, meta: SegmentMeta) -> int:
        return (link & LINK_MASK) | cls._meta_bits(meta)

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range [0, {self.num_queues})")

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
