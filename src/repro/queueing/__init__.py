"""Queue data structures shared by every system in the paper.

Section 5.2 describes the structure both software platforms implement:
single-linked lists of 64-byte segments, a free list of buffer slots and
a queue table holding the head/tail of every queue.  The MMS additionally
needs O(1) *packet* operations (move a packet to a new queue in 11
cycles), which requires a two-level structure: queues link packet
descriptors, descriptors link segment chains.  Hence two managers:

* :class:`~repro.queueing.segment_queues.SegmentQueueManager` -- the flat
  Section 5.2 structure (used by the IXP1200 and PowerPC models),
* :class:`~repro.queueing.packet_queues.PacketQueueManager` -- the
  two-level structure executed by the MMS Data Queue Manager.

Both run on a :class:`~repro.queueing.pointer_memory.PointerMemory`,
which counts and (optionally) traces every pointer-SRAM access.  Platform
models turn those traces into cycles: the PowerPC pays a PLB transaction
per access, the MMS pays one pipelined SRAM cycle.

Both managers optionally carry a buffer-management policy
(:mod:`repro.policies`): their ``admit_enqueue`` / ``offer`` entry
points turn enqueue-on-full into an accept / drop / push-out decision
(returning a :class:`~repro.policies.DroppedSegment` marker on drops)
instead of an uncaught :class:`OutOfBuffersError`.
"""

from repro.policies.base import DroppedSegment
from repro.queueing.pointer_memory import AccessRecord, PointerMemory, Region
from repro.queueing.freelist import FreeList, OutOfBuffersError
from repro.queueing.segment_queues import SegmentQueueManager
from repro.queueing.packet_queues import PacketQueueManager, QueueEmptyError

__all__ = [
    "PointerMemory",
    "Region",
    "AccessRecord",
    "DroppedSegment",
    "FreeList",
    "OutOfBuffersError",
    "SegmentQueueManager",
    "PacketQueueManager",
    "QueueEmptyError",
]
