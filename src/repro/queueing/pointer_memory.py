"""Pointer memory: a region-structured, access-traced SRAM view.

Queue managers keep *pointers* in SRAM because "the pointer manipulation
tasks need short accesses compared to the burst data accesses needed for
buffering network packets" (Section 4).  Every data-structure operation
in :mod:`repro.queueing` goes through a :class:`PointerMemory`, which

* maps named regions (segment links, packet descriptors, queue table,
  free-list anchors) onto one flat :class:`~repro.mem.sram.ZbtSram`,
* counts reads/writes per region,
* optionally records an ordered :class:`AccessRecord` trace of one
  operation, which the platform models convert into cycles (one PLB
  transaction per access on the reference NPU; one pipelined SRAM cycle
  in the MMS).

This is the mechanism that keeps Tables 3 and 4 honest: the cycle counts
are derived from the access sequences of real data-structure code, not
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mem.sram import ZbtSram
from repro.mem.timing import ZbtTiming


@dataclass(frozen=True)
class Region:
    """A named, bounds-checked window of the pointer SRAM."""

    name: str
    base: int
    words: int

    def addr(self, index: int) -> int:
        if not 0 <= index < self.words:
            raise IndexError(
                f"region {self.name!r}: index {index} out of range [0, {self.words})"
            )
        return self.base + index


@dataclass(frozen=True)
class AccessRecord:
    """One pointer-memory access in an operation trace."""

    kind: str  # "R" or "W"
    region: str
    index: int


class PointerMemory:
    """Region-structured SRAM with per-region counters and op tracing."""

    def __init__(self, timing: ZbtTiming = ZbtTiming()) -> None:
        self._regions: Dict[str, Region] = {}
        self._next_base = 0
        self._sram: Optional[ZbtSram] = None
        self._timing = timing
        self._trace: Optional[List[AccessRecord]] = None
        self.reads_by_region: Dict[str, int] = {}
        self.writes_by_region: Dict[str, int] = {}

    # ------------------------------------------------------------- layout

    def add_region(self, name: str, words: int) -> Region:
        """Allocate a region; must happen before :meth:`freeze`."""
        if self._sram is not None:
            raise RuntimeError("layout is frozen; cannot add regions")
        if name in self._regions:
            raise ValueError(f"region {name!r} already exists")
        if words < 1:
            raise ValueError(f"region {name!r}: words must be >= 1, got {words}")
        region = Region(name=name, base=self._next_base, words=words)
        self._regions[name] = region
        self._next_base += words
        self.reads_by_region[name] = 0
        self.writes_by_region[name] = 0
        return region

    def freeze(self) -> None:
        """Finalize the layout and allocate the backing SRAM."""
        if self._sram is not None:
            raise RuntimeError("layout already frozen")
        if not self._regions:
            raise RuntimeError("no regions defined")
        self._sram = ZbtSram(self._next_base, timing=self._timing)

    @property
    def total_words(self) -> int:
        return self._next_base

    def region(self, name: str) -> Region:
        return self._regions[name]

    # ------------------------------------------------------------- access

    def read(self, region: str, index: int) -> int:
        sram = self._require_frozen()
        r = self._regions[region]
        value = sram.read(r.addr(index))
        self.reads_by_region[region] += 1
        if self._trace is not None:
            self._trace.append(AccessRecord("R", region, index))
        return value

    def write(self, region: str, index: int, value: int) -> None:
        sram = self._require_frozen()
        r = self._regions[region]
        sram.write(r.addr(index), value)
        self.writes_by_region[region] += 1
        if self._trace is not None:
            self._trace.append(AccessRecord("W", region, index))

    def peek(self, region: str, index: int) -> int:
        """Uncounted, untraced read -- for debug walks and invariant
        checks only; never use from modelled code paths."""
        sram = self._require_frozen()
        r = self._regions[region]
        return sram.peek(r.addr(index))

    # ------------------------------------------------------------ tracing

    def start_trace(self) -> None:
        """Begin recording accesses of one operation."""
        self._trace = []

    def end_trace(self) -> List[AccessRecord]:
        """Stop recording and return the ordered access list."""
        if self._trace is None:
            raise RuntimeError("end_trace without start_trace")
        trace, self._trace = self._trace, None
        return trace

    # ----------------------------------------------------------- counters

    @property
    def total_reads(self) -> int:
        return sum(self.reads_by_region.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes_by_region.values())

    @property
    def total_accesses(self) -> int:
        return self.total_reads + self.total_writes

    def reset_counters(self) -> None:
        for name in self.reads_by_region:
            self.reads_by_region[name] = 0
            self.writes_by_region[name] = 0
        if self._sram is not None:
            self._sram.reset_counters()

    # ---------------------------------------------------------- internals

    def _require_frozen(self) -> ZbtSram:
        if self._sram is None:
            raise RuntimeError("layout not frozen; call freeze() first")
        return self._sram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PointerMemory({len(self._regions)} regions, "
            f"{self._next_base} words)"
        )
