"""Pointer memory: a region-structured, access-traced SRAM view.

Queue managers keep *pointers* in SRAM because "the pointer manipulation
tasks need short accesses compared to the burst data accesses needed for
buffering network packets" (Section 4).  Every data-structure operation
in :mod:`repro.queueing` goes through a :class:`PointerMemory`, which

* maps named regions (segment links, packet descriptors, queue table,
  free-list anchors) onto one flat :class:`~repro.mem.sram.ZbtSram`,
* counts reads/writes per region,
* optionally records an ordered :class:`AccessRecord` trace of one
  operation, which the platform models convert into cycles (one PLB
  transaction per access on the reference NPU; one pipelined SRAM cycle
  in the MMS).

This is the mechanism that keeps Tables 3 and 4 honest: the cycle counts
are derived from the access sequences of real data-structure code, not
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.mem.sram import ZbtSram
from repro.mem.timing import ZbtTiming


@dataclass(frozen=True)
class Region:
    """A named, bounds-checked window of the pointer SRAM."""

    name: str
    base: int
    words: int

    def addr(self, index: int) -> int:
        if not 0 <= index < self.words:
            raise IndexError(
                f"region {self.name!r}: index {index} out of range [0, {self.words})"
            )
        return self.base + index


@dataclass(frozen=True)
class AccessRecord:
    """One pointer-memory access in an operation trace."""

    kind: str  # "R" or "W"
    region: str
    index: int


class _CountOnlyTrace(List[AccessRecord]):
    """Sentinel type for a count-only trace in progress (no records
    kept).  Subclassing the record list keeps ``_trace``'s type uniform
    without paying a cast on the access hot path; the ``is`` guards in
    :meth:`PointerMemory.read`/:meth:`~PointerMemory.write` ensure the
    sentinel instance itself is never appended to."""


#: Sentinel marking a count-only trace in progress (identity-compared).
_COUNT_TRACE = _CountOnlyTrace()


class PointerMemory:
    """Region-structured SRAM with per-region counters and op tracing."""

    def __init__(self, timing: ZbtTiming = ZbtTiming()) -> None:
        self._regions: Dict[str, Region] = {}
        self._next_base = 0
        self._sram: Optional[ZbtSram] = None
        self._timing = timing
        self._trace: Optional[List[AccessRecord]] = None
        self._trace_n = 0
        #: When True, :meth:`start_trace` records only the access
        #: *count* (``end_trace`` returns a ``range`` of equal length)
        #: instead of materializing :class:`AccessRecord` objects.  The
        #: per-region counters advance identically either way; the
        #: batched engine enables this on its hot path because the
        #: published scenarios consult only trace lengths and counters.
        self.count_only_traces = False
        self.reads_by_region: Dict[str, int] = {}
        self.writes_by_region: Dict[str, int] = {}

    # ------------------------------------------------------------- layout

    def add_region(self, name: str, words: int) -> Region:
        """Allocate a region; must happen before :meth:`freeze`."""
        if self._sram is not None:
            raise RuntimeError("layout is frozen; cannot add regions")
        if name in self._regions:
            raise ValueError(f"region {name!r} already exists")
        if words < 1:
            raise ValueError(f"region {name!r}: words must be >= 1, got {words}")
        region = Region(name=name, base=self._next_base, words=words)
        self._regions[name] = region
        self._next_base += words
        self.reads_by_region[name] = 0
        self.writes_by_region[name] = 0
        return region

    def freeze(self) -> None:
        """Finalize the layout and allocate the backing SRAM."""
        if self._sram is not None:
            raise RuntimeError("layout already frozen")
        if not self._regions:
            raise RuntimeError("no regions defined")
        self._sram = ZbtSram(self._next_base, timing=self._timing)

    @property
    def total_words(self) -> int:
        return self._next_base

    def region(self, name: str) -> Region:
        return self._regions[name]

    # ------------------------------------------------------------- access

    # The access methods are the hottest few lines of the repository
    # (every pointer manipulation of every command funnels through
    # them), so the SRAM store and counters are accessed directly
    # rather than through ZbtSram.read/write: the region bounds check
    # subsumes the SRAM bounds check (the frozen layout spans exactly
    # ``size_words``), and the counter arithmetic is identical.

    def read(self, region: str, index: int) -> int:
        sram = self._sram
        if sram is None:
            raise RuntimeError("layout not frozen; call freeze() first")
        r = self._regions[region]
        if not 0 <= index < r.words:
            raise IndexError(
                f"region {r.name!r}: index {index} out of range "
                f"[0, {r.words})")
        sram.read_count += 1
        value = sram._words.get(r.base + index, 0)
        self.reads_by_region[region] += 1
        trace = self._trace
        if trace is not None:
            if trace is _COUNT_TRACE:
                self._trace_n += 1
            else:
                trace.append(AccessRecord("R", region, index))
        return value

    def write(self, region: str, index: int, value: int) -> None:
        sram = self._sram
        if sram is None:
            raise RuntimeError("layout not frozen; call freeze() first")
        r = self._regions[region]
        if not 0 <= index < r.words:
            raise IndexError(
                f"region {r.name!r}: index {index} out of range "
                f"[0, {r.words})")
        sram.write_count += 1
        sram._words[r.base + index] = value
        self.writes_by_region[region] += 1
        trace = self._trace
        if trace is not None:
            if trace is _COUNT_TRACE:
                self._trace_n += 1
            else:
                trace.append(AccessRecord("W", region, index))

    def peek(self, region: str, index: int) -> int:
        """Uncounted, untraced read -- for debug walks and invariant
        checks only; never use from modelled code paths."""
        sram = self._require_frozen()
        r = self._regions[region]
        if not 0 <= index < r.words:
            raise IndexError(
                f"region {r.name!r}: index {index} out of range "
                f"[0, {r.words})")
        return sram._words.get(r.base + index, 0)

    # ------------------------------------------------------------ tracing

    def start_trace(self) -> None:
        """Begin recording accesses of one operation.

        With :attr:`count_only_traces` set, only the access count is
        kept and :meth:`end_trace` returns a ``range`` of equal length
        (``len()``-compatible with the record list it replaces).
        """
        if self.count_only_traces:
            self._trace = _COUNT_TRACE
            self._trace_n = 0
        else:
            self._trace = []

    def end_trace(self) -> Union[List[AccessRecord], range]:
        """Stop recording and return the ordered access list (or its
        ``range`` stand-in under :attr:`count_only_traces`)."""
        if self._trace is None:
            raise RuntimeError("end_trace without start_trace")
        trace, self._trace = self._trace, None
        if trace is _COUNT_TRACE:
            return range(self._trace_n)
        return trace

    # ------------------------------------------------------- bulk ops

    def bulk_update(self, region: str, pairs: Iterable[Tuple[int, int]],
                    extra_reads: int = 0,
                    extra_writes: int = 0) -> None:
        """Apply ``(index, value)`` writes of one *bulk* operation.

        A bulk operation replaces a per-word loop whose access totals
        are known in closed form: each pair counts as one write, and
        ``extra_reads`` / ``extra_writes`` account the loop's remaining
        accesses (reads whose values the closed form already knows,
        overwrites the final values subsume).  Counters end up exactly
        where the per-word loop would leave them; traces must not be
        active (bulk operations model setup work, not priced commands).
        """
        if self._trace is not None:
            raise RuntimeError("bulk_update inside an access trace")
        if extra_reads < 0 or extra_writes < 0:
            raise ValueError("extra_reads/extra_writes must be >= 0")
        sram = self._require_frozen()
        r = self._regions[region]
        base, words = r.base, r.words
        pairs = pairs if type(pairs) is list else list(pairs)
        n = len(pairs)
        if pairs:
            # one bounds scan over the region-relative indexes; the
            # frozen layout guarantees the rebased addresses fit, so the
            # store is a single C-level dict.update (same intra-package
            # coupling as read/write above)
            idxs = [p[0] for p in pairs]
            lo, hi = min(idxs), max(idxs)
            if lo < 0 or hi >= words:
                bad = lo if lo < 0 else hi
                raise IndexError(
                    f"region {region!r}: index {bad} out of range "
                    f"[0, {words})")
            if base:
                pairs = [(i + base, v) for i, v in pairs]
            sram._words.update(pairs)
        sram.read_count += extra_reads
        sram.write_count += n + extra_writes
        self.reads_by_region[region] += extra_reads
        self.writes_by_region[region] += n + extra_writes

    # ----------------------------------------------------------- counters

    @property
    def total_reads(self) -> int:
        return sum(self.reads_by_region.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes_by_region.values())

    @property
    def total_accesses(self) -> int:
        return self.total_reads + self.total_writes

    def reset_counters(self) -> None:
        for name in self.reads_by_region:
            self.reads_by_region[name] = 0
            self.writes_by_region[name] = 0
        if self._sram is not None:
            self._sram.reset_counters()

    # ---------------------------------------------------------- internals

    def _require_frozen(self) -> ZbtSram:
        if self._sram is None:
            raise RuntimeError("layout not frozen; call freeze() first")
        return self._sram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PointerMemory({len(self._regions)} regions, "
            f"{self._next_base} words)"
        )
