"""Free-list management over pointer memory.

"A free-list keeps the free parts of the memory, at any given time"
(Section 5.2).  The free list is itself a single-linked list threaded
through the ``next`` words of unused slots, so pop ("Dequeue Free List")
and push ("Enqueue Free List") are the first sub-operations of every
enqueue/dequeue (Table 3 prices them separately).

The head/tail anchors can live either in on-chip registers (the MMS
hardware keeps them in flip-flops -- zero SRAM accesses to consult) or in
SRAM words (the software implementations must load/store them), selected
with ``anchors_in_memory``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.queueing.pointer_memory import PointerMemory

#: Null link encoding (no slot 0 ambiguity: we bias stored links by +1).
NIL = 0


class OutOfBuffersError(RuntimeError):
    """Free list exhausted -- the buffer memory is full.

    Carries the occupancy at the moment of exhaustion so overload
    failures are diagnosable: ``slots_in_use`` of ``num_slots``.
    """

    def __init__(self, message: str, slots_in_use: int = -1,
                 num_slots: int = -1) -> None:
        super().__init__(message)
        self.slots_in_use = slots_in_use
        self.num_slots = num_slots


class FreeList:
    """Single-linked free list of buffer slots.

    Parameters
    ----------
    mem:
        Pointer memory; must contain a ``next`` region of >= ``num_slots``
        words plus (when ``anchors_in_memory``) a ``globals`` region with
        two words for the anchors.
    num_slots:
        Total buffer slots managed.
    anchors_in_memory:
        Whether head/tail anchors cost SRAM accesses (software) or are
        free registers (hardware).
    next_region / globals_region:
        Region names, overridable when several lists share one memory.
    """

    HEAD_WORD = 0
    TAIL_WORD = 1

    def __init__(self, mem: PointerMemory, num_slots: int,
                 anchors_in_memory: bool = True,
                 next_region: str = "next",
                 globals_region: str = "globals",
                 link_mask: Optional[int] = None) -> None:
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        self.mem = mem
        self.num_slots = num_slots
        self.anchors_in_memory = anchors_in_memory
        self.next_region = next_region
        self.globals_region = globals_region
        #: Mask applied to link words on pop.  Needed when whole queue
        #: chains are spliced onto the list (MMS delete-packet): interior
        #: words still carry packed metadata above the link field.
        self.link_mask = link_mask
        self._reg_head = NIL
        self._reg_tail = NIL
        self.free_count = 0
        self._initialized = False
        # True while the chain is exactly the boot-time sequential one
        # (0 -> 1 -> ... -> n-1); lets reserve() skip the chain walk
        self._virgin = False

    # ------------------------------------------------------------ set-up

    def initialize(self) -> None:
        """Chain every slot into the free list (boot-time, not traced).

        Uses the pointer memory's bulk path: one write per word is
        accounted exactly as the historical per-word loop did, without
        paying a method call per slot (64 K segment buffers are built
        once per experiment run).
        """
        n = self.num_slots
        self.mem.bulk_update(self.next_region,
                             list(zip(range(n - 1), range(2, n + 1))))
        self.mem.bulk_update(self.next_region, [(n - 1, NIL)])
        self._store_head(self._enc(0))
        self._store_tail(self._enc(n - 1))
        self.free_count = n
        self._initialized = True
        self._virgin = True

    # ---------------------------------------------------------- operation

    def pop(self) -> int:
        """Allocate one slot ("Dequeue Free List").

        Access pattern (anchors in memory): R head, R next[head], W head.
        With register anchors: R next[head] only.  The register-anchor
        variant is the MMS per-command hot path and avoids the anchor
        helper indirection.
        """
        if not self._initialized:
            raise RuntimeError("free list not initialized; call initialize()")
        head = self._reg_head if not self.anchors_in_memory \
            else self._load_head()
        if head == NIL:
            in_use = self.num_slots - self.free_count
            raise OutOfBuffersError(
                f"free list empty: {in_use} of {self.num_slots} slots in "
                f"use (install a buffer policy to make overload a drop "
                f"decision)", slots_in_use=in_use, num_slots=self.num_slots)
        self._virgin = False
        slot = head - 1
        nxt = self.mem.read(self.next_region, slot)
        if self.link_mask is not None:
            nxt &= self.link_mask
        if self.anchors_in_memory:
            self._store_head(nxt)
            if nxt == NIL:
                # list drained: the tail anchor would otherwise go stale
                # and a later push would splice onto an in-use slot
                self._store_tail(NIL)
        else:
            self._reg_head = nxt
            if nxt == NIL:
                self._reg_tail = NIL
        self.free_count -= 1
        return slot

    def reserve(self, count: int) -> List[int]:
        """Allocate ``count`` slots in one bulk walk (= ``count`` pops).

        Follows the free chain once, then accounts the accesses a pop
        loop would have made -- one ``next`` read per allocated slot,
        plus the anchor load/store traffic when the anchors live in
        memory -- so counters, anchor state and ``free_count`` are
        exactly where ``count`` :meth:`pop` calls would leave them.
        Raises :class:`OutOfBuffersError` when fewer than ``count``
        slots are free (before touching any state).
        """
        self._require_init()
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if count > self.free_count:
            in_use = self.num_slots - self.free_count
            raise OutOfBuffersError(
                f"cannot reserve {count} slots: {in_use} of "
                f"{self.num_slots} in use", slots_in_use=in_use,
                num_slots=self.num_slots)
        mem, region, mask = self.mem, self.next_region, self.link_mask
        if self._virgin and not self.anchors_in_memory:
            # boot-time sequential chain: the walk's outcome is known in
            # closed form (slot k links to k+1)
            slots = list(range(count))
            self._virgin = False
            self._reg_head = head = \
                count + 1 if count < self.num_slots else NIL
            if head == NIL:
                self._reg_tail = NIL
            self.free_count -= count
            mem.bulk_update(region, (), extra_reads=count)
            return slots
        self._virgin = False
        slots: List[int] = []
        head = self._load_head()
        for _ in range(count):
            slot = self._dec(head)
            slots.append(slot)
            head = mem.peek(region, slot)
            if mask is not None:
                head &= mask
        self._store_head(head)
        if head == NIL:
            self._store_tail(NIL)
        self.free_count -= count
        mem.bulk_update(region, (), extra_reads=count)
        if self.anchors_in_memory:
            # each pop loads and stores the head anchor; the final
            # stores above already counted one store (plus the drained
            # tail store, when taken)
            mem.bulk_update(self.globals_region, (),
                            extra_reads=count - 1,
                            extra_writes=count - 1)
        return slots

    def push(self, slot: int) -> None:
        """Release one slot ("Enqueue Free List").

        Access pattern (anchors in memory): R tail, W next[tail], W tail.
        Appending at the tail (rather than pushing at the head) matches
        hardware practice: it avoids reusing a just-freed slot whose data
        transfer may still be in flight.
        """
        if not self._initialized:
            raise RuntimeError("free list not initialized; call initialize()")
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        self._virgin = False
        if self.anchors_in_memory:
            tail = self._load_tail()
            self.mem.write(self.next_region, slot, NIL)
            if tail == NIL:
                self._store_head(self._enc(slot))
            else:
                self.mem.write(self.next_region, self._dec(tail),
                               self._enc(slot))
            self._store_tail(self._enc(slot))
        else:
            tail = self._reg_tail
            self.mem.write(self.next_region, slot, NIL)
            if tail == NIL:
                self._reg_head = slot + 1
            else:
                self.mem.write(self.next_region, tail - 1, slot + 1)
            self._reg_tail = slot + 1
        self.free_count += 1

    def push_chain(self, first_slot: int, last_slot: int, count: int) -> None:
        """Release a pre-linked chain in O(1) (the MMS delete-packet path).

        The chain ``first_slot -> ... -> last_slot`` must already be
        linked through the ``next`` region.
        """
        self._require_init()
        self._check_slot(first_slot)
        self._check_slot(last_slot)
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._virgin = False
        tail = self._load_tail()
        self.mem.write(self.next_region, last_slot, NIL)
        if tail == NIL:
            self._store_head(self._enc(first_slot))
        else:
            self.mem.write(self.next_region, self._dec(tail), self._enc(first_slot))
        self._store_tail(self._enc(last_slot))
        self.free_count += count

    # ---------------------------------------------------------- anchors

    def _load_head(self) -> int:
        if self.anchors_in_memory:
            return self.mem.read(self.globals_region, self.HEAD_WORD)
        return self._reg_head

    def _store_head(self, value: int) -> None:
        if self.anchors_in_memory:
            self.mem.write(self.globals_region, self.HEAD_WORD, value)
        else:
            self._reg_head = value

    def _load_tail(self) -> int:
        if self.anchors_in_memory:
            return self.mem.read(self.globals_region, self.TAIL_WORD)
        return self._reg_tail

    def _store_tail(self, value: int) -> None:
        if self.anchors_in_memory:
            self.mem.write(self.globals_region, self.TAIL_WORD, value)
        else:
            self._reg_tail = value

    # --------------------------------------------------------- internals

    @staticmethod
    def _enc(slot: int) -> int:
        return slot + 1

    @staticmethod
    def _dec(word: int) -> int:
        return word - 1

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")

    def _require_init(self) -> None:
        if not self._initialized:
            raise RuntimeError("free list not initialized; call initialize()")
