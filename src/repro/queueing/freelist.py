"""Free-list management over pointer memory.

"A free-list keeps the free parts of the memory, at any given time"
(Section 5.2).  The free list is itself a single-linked list threaded
through the ``next`` words of unused slots, so pop ("Dequeue Free List")
and push ("Enqueue Free List") are the first sub-operations of every
enqueue/dequeue (Table 3 prices them separately).

The head/tail anchors can live either in on-chip registers (the MMS
hardware keeps them in flip-flops -- zero SRAM accesses to consult) or in
SRAM words (the software implementations must load/store them), selected
with ``anchors_in_memory``.
"""

from __future__ import annotations

from typing import Optional

from repro.queueing.pointer_memory import PointerMemory

#: Null link encoding (no slot 0 ambiguity: we bias stored links by +1).
NIL = 0


class OutOfBuffersError(RuntimeError):
    """Free list exhausted -- the buffer memory is full.

    Carries the occupancy at the moment of exhaustion so overload
    failures are diagnosable: ``slots_in_use`` of ``num_slots``.
    """

    def __init__(self, message: str, slots_in_use: int = -1,
                 num_slots: int = -1) -> None:
        super().__init__(message)
        self.slots_in_use = slots_in_use
        self.num_slots = num_slots


class FreeList:
    """Single-linked free list of buffer slots.

    Parameters
    ----------
    mem:
        Pointer memory; must contain a ``next`` region of >= ``num_slots``
        words plus (when ``anchors_in_memory``) a ``globals`` region with
        two words for the anchors.
    num_slots:
        Total buffer slots managed.
    anchors_in_memory:
        Whether head/tail anchors cost SRAM accesses (software) or are
        free registers (hardware).
    next_region / globals_region:
        Region names, overridable when several lists share one memory.
    """

    HEAD_WORD = 0
    TAIL_WORD = 1

    def __init__(self, mem: PointerMemory, num_slots: int,
                 anchors_in_memory: bool = True,
                 next_region: str = "next",
                 globals_region: str = "globals",
                 link_mask: Optional[int] = None) -> None:
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        self.mem = mem
        self.num_slots = num_slots
        self.anchors_in_memory = anchors_in_memory
        self.next_region = next_region
        self.globals_region = globals_region
        #: Mask applied to link words on pop.  Needed when whole queue
        #: chains are spliced onto the list (MMS delete-packet): interior
        #: words still carry packed metadata above the link field.
        self.link_mask = link_mask
        self._reg_head = NIL
        self._reg_tail = NIL
        self.free_count = 0
        self._initialized = False

    # ------------------------------------------------------------ set-up

    def initialize(self) -> None:
        """Chain every slot into the free list (boot-time, not traced)."""
        for slot in range(self.num_slots - 1):
            self.mem.write(self.next_region, slot, self._enc(slot + 1))
        self.mem.write(self.next_region, self.num_slots - 1, NIL)
        self._store_head(self._enc(0))
        self._store_tail(self._enc(self.num_slots - 1))
        self.free_count = self.num_slots
        self._initialized = True

    # ---------------------------------------------------------- operation

    def pop(self) -> int:
        """Allocate one slot ("Dequeue Free List").

        Access pattern (anchors in memory): R head, R next[head], W head.
        With register anchors: R next[head] only.
        """
        self._require_init()
        head = self._load_head()
        if head == NIL:
            in_use = self.num_slots - self.free_count
            raise OutOfBuffersError(
                f"free list empty: {in_use} of {self.num_slots} slots in "
                f"use (install a buffer policy to make overload a drop "
                f"decision)", slots_in_use=in_use, num_slots=self.num_slots)
        slot = self._dec(head)
        nxt = self.mem.read(self.next_region, slot)
        if self.link_mask is not None:
            nxt &= self.link_mask
        self._store_head(nxt)
        if nxt == NIL:
            # list drained: the tail anchor would otherwise go stale and
            # a later push would splice onto an in-use slot
            self._store_tail(NIL)
        self.free_count -= 1
        return slot

    def push(self, slot: int) -> None:
        """Release one slot ("Enqueue Free List").

        Access pattern (anchors in memory): R tail, W next[tail], W tail.
        Appending at the tail (rather than pushing at the head) matches
        hardware practice: it avoids reusing a just-freed slot whose data
        transfer may still be in flight.
        """
        self._require_init()
        self._check_slot(slot)
        tail = self._load_tail()
        self.mem.write(self.next_region, slot, NIL)
        if tail == NIL:
            self._store_head(self._enc(slot))
        else:
            self.mem.write(self.next_region, self._dec(tail), self._enc(slot))
        self._store_tail(self._enc(slot))
        self.free_count += 1

    def push_chain(self, first_slot: int, last_slot: int, count: int) -> None:
        """Release a pre-linked chain in O(1) (the MMS delete-packet path).

        The chain ``first_slot -> ... -> last_slot`` must already be
        linked through the ``next`` region.
        """
        self._require_init()
        self._check_slot(first_slot)
        self._check_slot(last_slot)
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        tail = self._load_tail()
        self.mem.write(self.next_region, last_slot, NIL)
        if tail == NIL:
            self._store_head(self._enc(first_slot))
        else:
            self.mem.write(self.next_region, self._dec(tail), self._enc(first_slot))
        self._store_tail(self._enc(last_slot))
        self.free_count += count

    # ---------------------------------------------------------- anchors

    def _load_head(self) -> int:
        if self.anchors_in_memory:
            return self.mem.read(self.globals_region, self.HEAD_WORD)
        return self._reg_head

    def _store_head(self, value: int) -> None:
        if self.anchors_in_memory:
            self.mem.write(self.globals_region, self.HEAD_WORD, value)
        else:
            self._reg_head = value

    def _load_tail(self) -> int:
        if self.anchors_in_memory:
            return self.mem.read(self.globals_region, self.TAIL_WORD)
        return self._reg_tail

    def _store_tail(self, value: int) -> None:
        if self.anchors_in_memory:
            self.mem.write(self.globals_region, self.TAIL_WORD, value)
        else:
            self._reg_tail = value

    # --------------------------------------------------------- internals

    @staticmethod
    def _enc(slot: int) -> int:
        return slot + 1

    @staticmethod
    def _dec(word: int) -> int:
        return word - 1

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")

    def _require_init(self) -> None:
        if not self._initialized:
            raise RuntimeError("free list not initialized; call initialize()")
