"""The MMS queue structure: per-flow queues of packets over segment chains.

The MMS command set (Section 6) includes O(1) *packet* operations --
"Move a packet to a new queue" runs in 11 cycles on 32 K flows -- which a
flat segment list cannot provide.  The ZBT stores "segment and packet
pointers": a two-level structure.

Pointer-word layout (one ZBT SRAM, wide words):

* ``seg_next`` -- per segment slot: link to the next segment of the same
  packet (or free-list link), with end-of-packet and length packed above
  the link field,
* ``desc``     -- per packet descriptor: ``(first_seg, last_seg,
  next_packet)`` in one wide word; freed descriptors thread the
  descriptor free list through this same region,
* ``queue_a``  -- per flow: ``(head_packet, tail_packet)``,
* ``queue_b``  -- per flow: descriptor of the packet currently being
  assembled (the *open* packet, filled segment-by-segment by the
  Segmentation block and published to the queue on end-of-packet).

Invariants the structure maintains (tested property-style):

* only the last segment of a packet may be shorter than 64 bytes,
* a packet is visible to dequeue/move/delete only after its EOP segment
  arrived,
* free counts + queued counts + open counts == total slots,
* per-flow packet order is FIFO; segment order within a packet is
  arrival order.

Every operation returns its ordered pointer-access trace.  The MMS prices
one pipelined SRAM cycle per access (see :mod:`repro.core.microcode`,
which cross-checks its schedules against these traces).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple, Union

from repro.policies.base import BufferPolicy, DroppedSegment
from repro.queueing.errors import QueueEmptyError
from repro.queueing.freelist import NIL, FreeList
from repro.queueing.pointer_memory import AccessRecord, PointerMemory

#: Field width used for every link in packed words.
LINK_BITS = 24
LINK_MASK = (1 << LINK_BITS) - 1
EOP_BIT = 1 << LINK_BITS
LEN_SHIFT = LINK_BITS + 1
SEGMENT_BYTES = 64
#: Packed length/EOP bits of a full non-EOP segment (hot-path constant).
_FULL_MID_SEG = (SEGMENT_BYTES - 1) << LEN_SHIFT
#: Mask of a descriptor word's (first, last) fields.
_DESC_LOW2 = (1 << (2 * LINK_BITS)) - 1


class SegmentInfo(NamedTuple):
    """Decoded segment word + shadow identity.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    enqueue (shadow) and per head lookup, so construction cost is on
    the per-command hot path of every engine.
    """

    slot: int
    eop: bool
    length: int
    pid: int = -1
    index: int = 0


class PacketQueueManager:
    """Two-level (packet / segment) per-flow queues -- the MMS structure."""

    def __init__(self, num_flows: int, num_segments: int,
                 num_descriptors: Optional[int] = None,
                 policy: Optional[BufferPolicy] = None) -> None:
        if num_flows < 1:
            raise ValueError(f"num_flows must be >= 1, got {num_flows}")
        if num_segments < 1:
            raise ValueError(f"num_segments must be >= 1, got {num_segments}")
        self.num_flows = num_flows
        self.num_segments = num_segments
        self.num_descriptors = num_descriptors or num_segments
        self.mem = PointerMemory()
        self.mem.add_region("seg_next", num_segments)
        self.mem.add_region("desc", self.num_descriptors)
        self.mem.add_region("queue_a", num_flows)
        self.mem.add_region("queue_b", num_flows)
        self.mem.freeze()
        # Hardware keeps the free-list anchors in registers: consulting
        # them costs no SRAM access.
        self.seg_free = FreeList(self.mem, num_segments,
                                 anchors_in_memory=False,
                                 next_region="seg_next",
                                 link_mask=LINK_MASK)
        self.desc_free = FreeList(self.mem, self.num_descriptors,
                                  anchors_in_memory=False,
                                  next_region="desc",
                                  link_mask=LINK_MASK)
        self.seg_free.initialize()
        self.desc_free.initialize()
        #: Optional buffer-management policy; when set, arrivals go
        #: through :meth:`admit_enqueue` and overload becomes a
        #: drop/push-out decision instead of an OutOfBuffersError.
        self.policy = policy
        #: ``callable(flow, pids)`` hooks invoked after a push-out with
        #: the evicted packet's shadow pids, so owners of per-packet
        #: metadata (the app pipelines) can release it and account the
        #: loss.  A list: several clients may share one MMS.
        self.pushout_listeners = []
        # Shadow state for verification only (no SRAM accesses).
        self._seg_shadow: Dict[int, SegmentInfo] = {}
        self._open_segments: Dict[int, int] = {}   # flow -> count in open pkt
        self._queued_packets = [0] * num_flows
        self._queued_segments = [0] * num_flows
        self.mem.reset_counters()

    # ================================================== segment commands

    def enqueue_segment(self, flow: int, eop: bool, length: int = SEGMENT_BYTES,
                        pid: int = -1, index: int = 0
                        ) -> Tuple[int, List[AccessRecord]]:
        """MMS *Enqueue one segment* into ``flow``'s open packet.

        Non-EOP segments must be full (only the last segment of a packet
        may be short).  On EOP the packet is published to the flow queue.
        Returns ``(slot, trace)``.
        """
        self._check_flow(flow)
        if not 1 <= length <= SEGMENT_BYTES:
            raise ValueError(f"length must be in [1, {SEGMENT_BYTES}], got {length}")
        if not eop and length != SEGMENT_BYTES:
            raise ValueError("only the EOP segment may be shorter than 64 bytes")
        # The pack/unpack helpers are inlined below (this is the
        # hottest data-structure operation in the repository); the field
        # layout is exactly _pack_seg/_pack_desc's.
        mem = self.mem
        mem.start_trace()
        try:
            slot = self.seg_free.pop()
            seg_word = (length - 1) << LEN_SHIFT
            if eop:
                seg_word |= EOP_BIT
            open_word = mem.read("queue_b", flow)
            if open_word == NIL:
                d = self.desc_free.pop()
                mem.write("desc", d, (slot + 1) | ((slot + 1) << LINK_BITS))
                mem.write("seg_next", slot, seg_word)
                if not eop:
                    mem.write("queue_b", flow, d + 1)
                else:
                    self._publish(flow, d)
            else:
                d = open_word - 1
                dword = mem.read("desc", d)
                last = ((dword >> LINK_BITS) & LINK_MASK) - 1
                # the old last segment is mid-packet: full 64B, non-EOP --
                # its word is fully known, so the link is one plain write
                mem.write("seg_next", last, (slot + 1) | _FULL_MID_SEG)
                mem.write("seg_next", slot, seg_word)
                mem.write("desc", d,
                          (dword & LINK_MASK)
                          | ((slot + 1) << LINK_BITS)
                          | (dword & ~_DESC_LOW2))
                if eop:
                    self._publish(flow, d)
                    mem.write("queue_b", flow, NIL)
        finally:
            trace = mem.end_trace()
        self._seg_shadow[slot] = SegmentInfo(slot, eop, length, pid, index)
        if eop:
            self._queued_segments[flow] += self._open_segments.pop(flow, 0) + 1
            self._queued_packets[flow] += 1
        else:
            self._open_segments[flow] = self._open_segments.get(flow, 0) + 1
        if self.policy is not None:
            self.policy.note_enqueue(flow, length)
        return slot, trace

    def admit_enqueue(self, flow: int, eop: bool, length: int = SEGMENT_BYTES,
                      pid: int = -1, index: int = 0
                      ) -> Tuple[Union[int, DroppedSegment], List[AccessRecord]]:
        """Policy-governed *Enqueue one segment*.

        With no policy installed this is :meth:`enqueue_segment` (which
        raises :class:`OutOfBuffersError` on exhaustion).  With a policy,
        the arrival is offered to it first: ``accept`` enqueues,
        ``drop`` returns a :class:`DroppedSegment` marker (no pointer
        traffic -- the segment never entered the structure), and
        ``pushout`` evicts the victim queue's tail packet via
        :meth:`drop_tail_packet` before re-consulting the policy.
        """
        if self.policy is None:
            return self.enqueue_segment(flow, eop, length, pid, index)
        self._check_flow(flow)
        reason = self._admit(flow, length, needs_desc_check=True)
        if reason is not None:
            self.policy.record_drop(flow, length, reason)
            return DroppedSegment(flow, length, reason), []
        slot, trace = self.enqueue_segment(flow, eop, length, pid, index)
        self.policy.record_accept(flow, length)
        return slot, trace

    def _admit(self, flow: int, length: int, needs_desc_check: bool,
               protect: Tuple[int, ...] = ()) -> Optional[str]:
        """Run the policy admission loop for one arriving buffer.

        Performs any push-outs the policy asks for; returns None on
        accept or the drop reason.  ``protect`` names flows that must
        not be pushed out (an append's target packet would otherwise be
        evicted from under the operation).
        """
        # Uncongested fast path: when no descriptor shortage is possible
        # the policy may accept from its occupancy books alone, skipping
        # the open-packet probe, the exclusion-set build and the full
        # decide() call (RED always declines -- its filter and RNG must
        # advance per offered segment).
        if (not needs_desc_check or self.desc_free.free_count > 0) \
                and self.policy.admit_fast(flow, length):
            return None
        excluded: Set[int] = set(protect)
        while True:
            # a segment starting a new packet also needs a descriptor;
            # descriptor exhaustion is a buffer-full situation the
            # policy must resolve (push-out frees one) or reject
            needs_desc = (needs_desc_check
                          and self.mem.peek("queue_b", flow) == NIL)
            desc_blocked = needs_desc and self.desc_free.free_count == 0
            decision = self.policy.admit(flow, length,
                                         exclude=frozenset(excluded),
                                         blocked=desc_blocked)
            if decision.action == "accept":
                return None
            if decision.action == "drop":
                return decision.reason
            victim = decision.victim
            if self._queued_packets[victim] == 0:
                # nothing published to evict (only open/in-assembly
                # segments) -- tell the policy to look elsewhere
                excluded.add(victim)
                continue
            nsegs, nbytes, _trace = self.drop_tail_packet(victim)
            self.policy.record_pushout(victim, nsegs, nbytes,
                                       decision.reason)

    def dequeue_segment(self, flow: int) -> Tuple[SegmentInfo, List[AccessRecord]]:
        """MMS *Dequeue*: remove and free the head segment of the head
        packet; unlinks the packet descriptor on its last segment."""
        self._check_flow(flow)
        self.mem.start_trace()
        try:
            info, _slot = self._take_head_segment(flow, free_slot=True)
        finally:
            trace = self.mem.end_trace()
        return info, trace

    def delete_segment(self, flow: int) -> Tuple[SegmentInfo, List[AccessRecord]]:
        """MMS *Delete one segment*: same unlinking as dequeue, but no
        data-memory access is ever generated for it."""
        self._check_flow(flow)
        self.mem.start_trace()
        try:
            info, _slot = self._take_head_segment(flow, free_slot=True)
        finally:
            trace = self.mem.end_trace()
        return info, trace

    def read_segment(self, flow: int) -> Tuple[SegmentInfo, List[AccessRecord]]:
        """MMS *Read*: resolve the head segment (for the data address)
        without modifying the queue."""
        self._check_flow(flow)
        self.mem.start_trace()
        try:
            d = self._head_desc(flow)
            first, _last, _nxt = self._unpack_desc(self.mem.read("desc", d))
            word = self.mem.read("seg_next", first)
        finally:
            trace = self.mem.end_trace()
        return self._decode_seg(first, word), trace

    def overwrite_segment(self, flow: int) -> Tuple[SegmentInfo, List[AccessRecord]]:
        """MMS *Overwrite a segment*: resolve the head segment's slot so
        the DMC can overwrite its data in place (pointer side is
        read-only -- metadata unchanged)."""
        return self.read_segment(flow)

    def overwrite_segment_length(self, flow: int, new_length: int
                                 ) -> Tuple[SegmentInfo, List[AccessRecord]]:
        """MMS *Overwrite_Segment_length*: rewrite the head segment's
        length field (header shrink/grow after modification)."""
        self._check_flow(flow)
        if not 1 <= new_length <= SEGMENT_BYTES:
            raise ValueError(
                f"new_length must be in [1, {SEGMENT_BYTES}], got {new_length}"
            )
        self.mem.start_trace()
        try:
            d = self._head_desc(flow)
            first, _last, _nxt = self._unpack_desc(self.mem.read("desc", d))
            word = self.mem.read("seg_next", first)
            info = self._decode_seg(first, word)
            if not info.eop and new_length != SEGMENT_BYTES:
                raise ValueError("only the EOP segment may be shorter than 64 bytes")
            self.mem.write("seg_next", first,
                           self._pack_seg(word & LINK_MASK, info.eop, new_length))
        finally:
            trace = self.mem.end_trace()
        new_info = SegmentInfo(first, info.eop, new_length, info.pid, info.index)
        self._seg_shadow[first] = new_info
        if self.policy is not None:
            # in-place resize: byte occupancy delta, no segment change
            self.policy.note_release(flow, info.length - new_length, 0)
        return new_info, trace

    # ==================================================== packet commands

    def move_packet(self, src_flow: int, dst_flow: int) -> List[AccessRecord]:
        """MMS *Move a packet to a new queue*: relink the head packet of
        ``src_flow`` to the tail of ``dst_flow`` in O(1)."""
        self._check_flow(src_flow)
        self._check_flow(dst_flow)
        if src_flow == dst_flow:
            raise ValueError("move_packet requires distinct queues")
        self.mem.start_trace()
        try:
            d = self._unlink_head_packet(src_flow)
            self._append_packet(dst_flow, d)
        finally:
            trace = self.mem.end_trace()
        nsegs, nbytes = self._packet_segments_and_bytes(d)
        self._queued_packets[src_flow] -= 1
        self._queued_packets[dst_flow] += 1
        self._queued_segments[src_flow] -= nsegs
        self._queued_segments[dst_flow] += nsegs
        if self.policy is not None:
            self.policy.note_move(src_flow, dst_flow, nbytes, nsegs)
        return trace

    def delete_packet(self, flow: int) -> List[AccessRecord]:
        """MMS *Delete a full packet*: unlink the head packet and splice
        its whole segment chain onto the free list in O(1)."""
        self._check_flow(flow)
        nsegs = nbytes = None
        self.mem.start_trace()
        try:
            qa = self.mem.read("queue_a", flow)
            head_d, tail_d = self._unpack_qa(qa)
            if head_d == NIL:
                raise QueueEmptyError(f"flow {flow} has no queued packet")
            d = self._dec(head_d)
            first, last, nxt = self._unpack_desc(self.mem.read("desc", d))
            new_head = nxt
            new_tail = tail_d if nxt != NIL else NIL
            self.mem.write("queue_a", flow, self._pack_qa_raw(new_head, new_tail))
            nsegs, nbytes = self._packet_segments_and_bytes(d)
            self.seg_free.push_chain(first, last, nsegs)
            self._free_desc(d)
        finally:
            trace = self.mem.end_trace()
        self._queued_packets[flow] -= 1
        self._queued_segments[flow] -= nsegs
        if self.policy is not None:
            self.policy.note_release(flow, nbytes, nsegs)
        return trace

    def drop_tail_packet(self, flow: int
                         ) -> Tuple[int, int, List[AccessRecord]]:
        """Push out ``flow``'s *tail* packet (the LQD eviction unit).

        Unlinks the most recently published packet and splices its
        segment chain onto the free list.  The head -- the packet about
        to be serviced -- survives whenever the victim holds more than
        one packet; with a single published packet tail == head and
        that packet is the only thing there is to evict.  The
        descriptor chain is
        forward-linked only, so finding the tail's predecessor walks the
        queue (shadow ``peek``s; the counted traffic is the unlink
        itself).  Returns ``(segments, bytes, trace)`` freed.

        Occupancy bookkeeping is the *caller's* duty (the admit path
        records it via :meth:`BufferPolicy.record_pushout`).
        """
        self._check_flow(flow)
        self.mem.start_trace()
        try:
            qa = self.mem.read("queue_a", flow)
            head_d, tail_d = self._unpack_qa(qa)
            if head_d == NIL:
                raise QueueEmptyError(f"flow {flow} has no queued packet")
            t = self._dec(tail_d)
            if head_d == tail_d:
                self.mem.write("queue_a", flow, self._pack_qa_raw(NIL, NIL))
            else:
                pred = self._dec(head_d)
                while True:
                    pf, pl, pn = self._unpack_desc(self.mem.peek("desc", pred))
                    if pn == tail_d:
                        break
                    pred = self._dec(pn)
                self.mem.write("desc", pred, self._pack_desc(pf, pl, NIL))
                self.mem.write("queue_a", flow,
                               self._pack_qa_raw(head_d, self._enc(pred)))
            first, last, _nxt = self._unpack_desc(self.mem.read("desc", t))
            nsegs, nbytes = self._packet_segments_and_bytes(t)
            pids = self._collect_pids(first, last)
            self.seg_free.push_chain(first, last, nsegs)
            self._free_desc(t)
        finally:
            trace = self.mem.end_trace()
        self._drop_segment_shadows(first, last)
        self._queued_packets[flow] -= 1
        self._queued_segments[flow] -= nsegs
        for listener in self.pushout_listeners:
            listener(flow, pids)
        return nsegs, nbytes, trace

    def abort_open_packet(self, flow: int) -> Tuple[int, int]:
        """Discard ``flow``'s partially assembled (open) packet.

        Partial-packet discard: after a mid-packet drop the already
        buffered segments of the aborted packet would leak; this frees
        them and retires the open descriptor.  Returns ``(segments,
        bytes)`` freed (0, 0 when no packet is open).
        """
        self._check_flow(flow)
        open_word = self.mem.peek("queue_b", flow)
        if open_word == NIL:
            return 0, 0
        d = self._dec(open_word)
        first, last, _nxt = self._unpack_desc(self.mem.read("desc", d))
        nsegs, nbytes = self._packet_segments_and_bytes(d)
        self.seg_free.push_chain(first, last, nsegs)
        self._free_desc(d)
        self.mem.write("queue_b", flow, NIL)
        self._drop_segment_shadows(first, last)
        self._open_segments.pop(flow, None)
        if self.policy is not None:
            self.policy.note_release(flow, nbytes, nsegs)
        return nsegs, nbytes

    # ============================================== combination commands

    def overwrite_length_and_move(self, src_flow: int, dst_flow: int,
                                  new_length: int) -> List[AccessRecord]:
        """MMS *Overwrite_Segment_length&Move* -- one command, one pass."""
        self._check_flow(src_flow)
        self._check_flow(dst_flow)
        if src_flow == dst_flow:
            raise ValueError("move requires distinct queues")
        if not 1 <= new_length <= SEGMENT_BYTES:
            raise ValueError(
                f"new_length must be in [1, {SEGMENT_BYTES}], got {new_length}"
            )
        self.mem.start_trace()
        try:
            d = self._unlink_head_packet(src_flow)
            first, _last, _nxt = self._unpack_desc(self.mem.peek("desc", d))
            word = self.mem.read("seg_next", first)
            info = self._decode_seg(first, word)
            if not info.eop and new_length != SEGMENT_BYTES:
                raise ValueError("only the EOP segment may be shorter than 64 bytes")
            self.mem.write("seg_next", first,
                           self._pack_seg(word & LINK_MASK, info.eop, new_length))
            self._append_packet(dst_flow, d)
        finally:
            trace = self.mem.end_trace()
        old_length = info.length
        self._seg_shadow[first] = SegmentInfo(first, info.eop, new_length,
                                              info.pid, info.index)
        nsegs, nbytes = self._packet_segments_and_bytes(d)
        self._queued_packets[src_flow] -= 1
        self._queued_packets[dst_flow] += 1
        self._queued_segments[src_flow] -= nsegs
        self._queued_segments[dst_flow] += nsegs
        if self.policy is not None:
            # the byte total left src with the *old* head-segment length
            self.policy.note_move(src_flow, dst_flow,
                                  nbytes - new_length + old_length, nsegs)
            self.policy.note_release(dst_flow, old_length - new_length, 0)
        return trace

    def overwrite_and_move(self, src_flow: int, dst_flow: int
                           ) -> Tuple[SegmentInfo, List[AccessRecord]]:
        """MMS *Overwrite_Segment&Move*: resolve the head segment's data
        address (for the DMC overwrite) and move the packet, one pass."""
        self._check_flow(src_flow)
        self._check_flow(dst_flow)
        if src_flow == dst_flow:
            raise ValueError("move requires distinct queues")
        self.mem.start_trace()
        try:
            d = self._unlink_head_packet(src_flow)
            first, _last, _nxt = self._unpack_desc(self.mem.peek("desc", d))
            word = self.mem.read("seg_next", first)
            self._append_packet(dst_flow, d)
        finally:
            trace = self.mem.end_trace()
        nsegs, nbytes = self._packet_segments_and_bytes(d)
        self._queued_packets[src_flow] -= 1
        self._queued_packets[dst_flow] += 1
        self._queued_segments[src_flow] -= nsegs
        self._queued_segments[dst_flow] += nsegs
        if self.policy is not None:
            self.policy.note_move(src_flow, dst_flow, nbytes, nsegs)
        return self._decode_seg(first, word), trace

    # ======================================================= append ops

    def append_head(self, flow: int, pid: int = -1
                    ) -> Tuple[Union[int, DroppedSegment], List[AccessRecord]]:
        """MMS *Append a segment at the head of a packet* (prepend a
        header segment to the head packet, e.g. encapsulation).

        The prepended segment is always a full 64 bytes: it becomes a
        non-last segment, and only the last segment of a packet may be
        short (real encapsulation headers are padded into the segment).
        With a policy installed the new buffer goes through admission
        like any arrival (``flow`` itself is protected from push-out --
        the target packet must survive the operation); a rejected
        append returns a :class:`DroppedSegment` marker.
        """
        self._check_flow(flow)
        if self.policy is not None:
            # preconditions first: admission has side effects (push-outs,
            # stats) that must not happen for an operation that raises
            if self._unpack_qa(self.mem.peek("queue_a", flow))[0] == NIL:
                raise QueueEmptyError(f"flow {flow} has no queued packet")
            reason = self._admit(flow, SEGMENT_BYTES, needs_desc_check=False,
                                 protect=(flow,))
            if reason is not None:
                self.policy.record_drop(flow, SEGMENT_BYTES, reason)
                return DroppedSegment(flow, SEGMENT_BYTES, reason), []
        self.mem.start_trace()
        try:
            slot = self.seg_free.pop()
            d = self._head_desc(flow)
            first, last, nxt = self._unpack_desc(self.mem.read("desc", d))
            self.mem.write("seg_next", slot,
                           self._pack_seg(self._enc(first), False, SEGMENT_BYTES))
            self.mem.write("desc", d, self._pack_desc(slot, last, nxt))
        finally:
            trace = self.mem.end_trace()
        self._seg_shadow[slot] = SegmentInfo(slot, False, SEGMENT_BYTES, pid, -1)
        self._queued_segments[flow] += 1
        if self.policy is not None:
            self.policy.note_enqueue(flow, SEGMENT_BYTES)
            self.policy.record_accept(flow, SEGMENT_BYTES)
        return slot, trace

    def append_tail(self, flow: int, length: int = SEGMENT_BYTES, pid: int = -1
                    ) -> Tuple[Union[int, DroppedSegment], List[AccessRecord]]:
        """MMS *Append a segment at the tail of a packet* (trailer).

        Policy-governed like :meth:`append_head`."""
        self._check_flow(flow)
        if not 1 <= length <= SEGMENT_BYTES:
            raise ValueError(f"length must be in [1, {SEGMENT_BYTES}], got {length}")
        if self.policy is not None:
            # preconditions first (see append_head): a raising append
            # must not have pushed out an innocent packet or touched
            # the stats
            head_enc = self._unpack_qa(self.mem.peek("queue_a", flow))[0]
            if head_enc == NIL:
                raise QueueEmptyError(f"flow {flow} has no queued packet")
            _f, last_slot, _n = self._unpack_desc(
                self.mem.peek("desc", self._dec(head_enc)))
            last_len = (self.mem.peek("seg_next", last_slot) >> LEN_SHIFT) + 1
            if last_len != SEGMENT_BYTES:
                raise ValueError(
                    "cannot append behind a short last segment "
                    f"(length {last_len})"
                )
            reason = self._admit(flow, length, needs_desc_check=False,
                                 protect=(flow,))
            if reason is not None:
                self.policy.record_drop(flow, length, reason)
                return DroppedSegment(flow, length, reason), []
        self.mem.start_trace()
        try:
            slot = self.seg_free.pop()
            d = self._head_desc(flow)
            first, last, nxt = self._unpack_desc(self.mem.read("desc", d))
            old_word = self.mem.read("seg_next", last)
            old = self._decode_seg(last, old_word)
            if old.length != SEGMENT_BYTES:
                # a short mid-packet segment would break the structure
                # invariant; callers must overwrite-length to 64 first
                raise ValueError(
                    "cannot append behind a short last segment "
                    f"(length {old.length})"
                )
            # the old last segment loses EOP
            self.mem.write("seg_next", last,
                           self._pack_seg(self._enc(slot), False, old.length))
            self.mem.write("seg_next", slot, self._pack_seg(NIL, True, length))
            self.mem.write("desc", d, self._pack_desc(first, slot, nxt))
        finally:
            trace = self.mem.end_trace()
        self._seg_shadow[last] = SegmentInfo(last, False, SEGMENT_BYTES,
                                             old.pid, old.index)
        self._seg_shadow[slot] = SegmentInfo(slot, True, length, pid, -1)
        self._queued_segments[flow] += 1
        if self.policy is not None:
            self.policy.note_enqueue(flow, length)
            self.policy.record_accept(flow, length)
        return slot, trace

    # ======================================================== bulk ops

    def bulk_prefill(self, flows: Iterable[int], packets_per_flow: int,
                     segments_per_packet: int = 1) -> int:
        """Bulk analog of the MMS prefill loop (state- and
        counter-identical to repeated :meth:`enqueue_segment` calls with
        ``pid=-2``, the steady-state backlog setup of the load
        experiments).

        The closed form covers the prefill pattern itself --
        single-segment packets into fresh flow queues -- allocating all
        buffers with one :meth:`FreeList.reserve` walk and writing the
        final pointer words through the bulk memory path; anything else
        falls back to the per-segment loop.  Identity against the loop
        is asserted by ``tests/queueing/test_bulk_prefill.py``.
        """
        flow_list = list(flows)
        ppf = packets_per_flow
        if (segments_per_packet != 1 or ppf < 1
                or len(set(flow_list)) != len(flow_list)
                or any(not 0 <= f < self.num_flows for f in flow_list)
                or any(self._queued_packets[f] or self._open_segments.get(f)
                       for f in flow_list)):
            count = 0
            for flow in flow_list:
                for _p in range(ppf if ppf > 0 else 0):
                    for s in range(segments_per_packet):
                        self.enqueue_segment(
                            flow, eop=(s == segments_per_packet - 1),
                            pid=-2, index=s)
                        count += 1
            return count
        n = len(flow_list) * ppf
        if n == 0:
            return 0
        slots = self.seg_free.reserve(n)
        descs = self.desc_free.reserve(n)
        seg_word = self._pack_seg(NIL, True, SEGMENT_BYTES)
        desc_pairs = []
        qa_pairs = []
        for k, flow in enumerate(flow_list):
            base = k * ppf
            for j in range(ppf):
                d = descs[base + j]
                nxt = NIL if j == ppf - 1 else self._enc(descs[base + j + 1])
                desc_pairs.append(
                    (d, self._pack_desc(slots[base + j], slots[base + j],
                                        nxt)))
            qa_pairs.append(
                (flow, self._pack_qa_raw(self._enc(descs[base]),
                                         self._enc(descs[base + ppf - 1]))))
            self._queued_packets[flow] += ppf
            self._queued_segments[flow] += ppf
            if self.policy is not None:
                self.policy.note_enqueue(flow, SEGMENT_BYTES * ppf,
                                         segments=ppf)
        mem = self.mem
        mem.bulk_update("seg_next", [(s, seg_word) for s in slots])
        mem.bulk_update("queue_b", (), extra_reads=n)
        mem.bulk_update("desc", desc_pairs,
                        extra_reads=n - len(flow_list),
                        extra_writes=n - len(flow_list))
        mem.bulk_update("queue_a", qa_pairs,
                        extra_reads=n,
                        extra_writes=n - len(flow_list))
        shadow = self._seg_shadow
        for s in slots:
            shadow[s] = SegmentInfo(s, True, SEGMENT_BYTES, -2, 0)
        return n

    # ========================================================== queries

    def queued_packets(self, flow: int) -> int:
        self._check_flow(flow)
        return self._queued_packets[flow]

    def queued_segments(self, flow: int) -> int:
        self._check_flow(flow)
        return self._queued_segments[flow]

    def open_segments(self, flow: int) -> int:
        """Segments of the packet currently being assembled on ``flow``."""
        self._check_flow(flow)
        return self._open_segments.get(flow, 0)

    @property
    def free_segments(self) -> int:
        return self.seg_free.free_count

    @property
    def free_descriptors(self) -> int:
        return self.desc_free.free_count

    def segment_info(self, slot: int) -> SegmentInfo:
        return self._seg_shadow[slot]

    def walk_packets(self, flow: int) -> List[List[int]]:
        """Debug: queued packets as lists of segment slots (uncounted)."""
        self._check_flow(flow)
        packets: List[List[int]] = []
        head_d, _tail_d = self._unpack_qa(self.mem.peek("queue_a", flow))
        cur_d = head_d
        while cur_d != NIL:
            d = self._dec(cur_d)
            first, last, nxt_d = self._unpack_desc(self.mem.peek("desc", d))
            segs = []
            cur_s = self._enc(first)
            while cur_s != NIL:
                s = self._dec(cur_s)
                segs.append(s)
                if s == last:
                    break
                cur_s = self.mem.peek("seg_next", s) & LINK_MASK
            packets.append(segs)
            cur_d = nxt_d  # already encoded
        return packets

    # ========================================================= internals

    def _publish(self, flow: int, d: int) -> None:
        """Link a completed packet descriptor into the flow queue
        (packing inlined -- per-command hot path)."""
        mem = self.mem
        qa = mem.read("queue_a", flow)
        tail_d = (qa >> LINK_BITS) & LINK_MASK
        d_enc = d + 1
        if tail_d == NIL:
            mem.write("queue_a", flow, d_enc | (d_enc << LINK_BITS))
        else:
            t = tail_d - 1
            tword = mem.read("desc", t)
            mem.write("desc", t,
                      (tword & _DESC_LOW2) | (d_enc << (2 * LINK_BITS)))
            mem.write("queue_a", flow,
                      (qa & LINK_MASK) | (d_enc << LINK_BITS))

    def _head_desc(self, flow: int) -> int:
        qa = self.mem.read("queue_a", flow)
        head_d, _tail_d = self._unpack_qa(qa)
        if head_d == NIL:
            raise QueueEmptyError(f"flow {flow} has no queued packet")
        return self._dec(head_d)

    def _unlink_head_packet(self, flow: int) -> int:
        """Detach the head descriptor from ``flow`` (clearing its next)."""
        qa = self.mem.read("queue_a", flow)
        head_d, tail_d = self._unpack_qa(qa)
        if head_d == NIL:
            raise QueueEmptyError(f"flow {flow} has no queued packet")
        d = self._dec(head_d)
        first, last, nxt = self._unpack_desc(self.mem.read("desc", d))
        new_tail = tail_d if nxt != NIL else NIL
        self.mem.write("queue_a", flow, self._pack_qa_raw(nxt, new_tail))
        self.mem.write("desc", d, self._pack_desc(first, last, NIL))
        return d

    def _append_packet(self, flow: int, d: int) -> None:
        """Attach descriptor ``d`` at the tail of ``flow``."""
        qa = self.mem.read("queue_a", flow)
        head_d, tail_d = self._unpack_qa(qa)
        if tail_d == NIL:
            self.mem.write("queue_a", flow,
                           self._pack_qa_raw(self._enc(d), self._enc(d)))
        else:
            t = self._dec(tail_d)
            tf, tl, _tn = self._unpack_desc(self.mem.read("desc", t))
            self.mem.write("desc", t, self._pack_desc(tf, tl, self._enc(d)))
            self.mem.write("queue_a", flow,
                           self._pack_qa_raw(head_d, self._enc(d)))

    def _take_head_segment(self, flow: int, free_slot: bool
                           ) -> Tuple[SegmentInfo, int]:
        # packing/decoding inlined -- per-command hot path (dequeue,
        # delete); layout is exactly _pack_desc/_pack_qa_raw/_decode_seg
        mem = self.mem
        qa = mem.read("queue_a", flow)
        head_d = qa & LINK_MASK
        if head_d == NIL:
            raise QueueEmptyError(f"flow {flow} has no queued packet")
        d = head_d - 1
        dword = mem.read("desc", d)
        first = (dword & LINK_MASK) - 1
        last = ((dword >> LINK_BITS) & LINK_MASK) - 1
        nxt_d = (dword >> (2 * LINK_BITS)) & LINK_MASK
        word = mem.read("seg_next", first)
        shadow = self._seg_shadow.get(first)
        info = SegmentInfo(first, (word & EOP_BIT) != 0,
                           (word >> LEN_SHIFT) + 1,
                           shadow.pid if shadow else -1,
                           shadow.index if shadow else 0)
        if first != last:
            nxt_s = word & LINK_MASK
            mem.write("desc", d,
                      nxt_s | ((last + 1) << LINK_BITS)
                      | (nxt_d << (2 * LINK_BITS)))
        else:
            # last segment of the packet: retire the descriptor
            new_tail = ((qa >> LINK_BITS) & LINK_MASK) if nxt_d != NIL \
                else NIL
            mem.write("queue_a", flow, nxt_d | (new_tail << LINK_BITS))
            self.desc_free.push(d)
            self._queued_packets[flow] -= 1
        if free_slot:
            self.seg_free.push(first)
        self._seg_shadow.pop(first, None)
        self._queued_segments[flow] -= 1
        if self.policy is not None:
            self.policy.note_release(flow, info.length)
        return info, first

    def _free_desc(self, d: int) -> None:
        self.desc_free.push(d)

    def _packet_segments_and_bytes(self, d: int) -> Tuple[int, int]:
        """Shadow walk (uncounted): segment count and byte total of the
        packet behind descriptor ``d``."""
        first, last, _nxt = self._unpack_desc(self.mem.peek("desc", d))
        count, nbytes = 0, 0
        cur = first
        while True:
            count += 1
            shadow = self._seg_shadow.get(cur)
            nbytes += shadow.length if shadow else SEGMENT_BYTES
            if cur == last:
                return count, nbytes
            cur = (self.mem.peek("seg_next", cur) & LINK_MASK) - 1

    def _drop_segment_shadows(self, first: int, last: int) -> None:
        """Forget shadow state of a freed chain (uncounted walk)."""
        cur = first
        while True:
            nxt = (self.mem.peek("seg_next", cur) & LINK_MASK) - 1
            self._seg_shadow.pop(cur, None)
            if cur == last:
                return
            cur = nxt

    def _collect_pids(self, first: int, last: int) -> List[int]:
        """Distinct shadow pids of a chain, in order (uncounted walk)."""
        pids: List[int] = []
        cur = first
        while True:
            shadow = self._seg_shadow.get(cur)
            if shadow is not None and shadow.pid not in pids:
                pids.append(shadow.pid)
            if cur == last:
                return pids
            cur = (self.mem.peek("seg_next", cur) & LINK_MASK) - 1

    # encodings ---------------------------------------------------------

    @staticmethod
    def _enc(x: int) -> int:
        return x + 1

    @staticmethod
    def _dec(word: int) -> int:
        return word - 1

    @staticmethod
    def _pack_seg(link: int, eop: bool, length: int) -> int:
        word = link & LINK_MASK
        if eop:
            word |= EOP_BIT
        word |= (length - 1) << LEN_SHIFT
        return word

    def _decode_seg(self, slot: int, word: int) -> SegmentInfo:
        eop = bool(word & EOP_BIT)
        length = (word >> LEN_SHIFT) + 1
        shadow = self._seg_shadow.get(slot)
        pid = shadow.pid if shadow else -1
        index = shadow.index if shadow else 0
        return SegmentInfo(slot, eop, length, pid, index)

    @staticmethod
    def _pack_desc(first: int, last: int, next_enc: int) -> int:
        """first/last are slot numbers; next_enc is already encoded."""
        return (
            (first + 1)
            | ((last + 1) << LINK_BITS)
            | ((next_enc & LINK_MASK) << (2 * LINK_BITS))
        )

    @staticmethod
    def _unpack_desc(word: int) -> Tuple[int, int, int]:
        first = (word & LINK_MASK) - 1
        last = ((word >> LINK_BITS) & LINK_MASK) - 1
        nxt = (word >> (2 * LINK_BITS)) & LINK_MASK
        return first, last, nxt

    @staticmethod
    def _pack_qa_raw(head_enc: int, tail_enc: int) -> int:
        return (head_enc & LINK_MASK) | ((tail_enc & LINK_MASK) << LINK_BITS)

    @staticmethod
    def _unpack_qa(word: int) -> Tuple[int, int]:
        return word & LINK_MASK, (word >> LINK_BITS) & LINK_MASK

    def _check_flow(self, flow: int) -> None:
        if not 0 <= flow < self.num_flows:
            raise ValueError(f"flow {flow} out of range [0, {self.num_flows})")
