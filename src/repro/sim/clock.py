"""Time units and clock-domain conversion.

All kernel timestamps are integer picoseconds.  The constants below let
model code write ``5 * NS`` instead of magic numbers.  :class:`Clock`
converts between cycles of a given frequency and picoseconds; every
hardware model in the repo works internally in its own clock cycles and
converts at its boundary.
"""

from __future__ import annotations

#: one picosecond (the kernel base unit)
PS = 1
#: one nanosecond in picoseconds
NS = 1_000
#: one microsecond in picoseconds
US = 1_000_000
#: one millisecond in picoseconds
MS = 1_000_000_000
#: one second in picoseconds
SEC = 1_000_000_000_000
#: one megahertz, expressed in hertz
MHZ = 1_000_000


class Clock:
    """A clock domain: frequency, period and cycle arithmetic.

    Parameters
    ----------
    freq_mhz:
        Clock frequency in MHz.  The paper's domains -- 100 MHz (PLB,
        DDR command rate), 125 MHz (MMS), 200 MHz (IXP1200 microengines)
        -- all have integer picosecond periods.

    Examples
    --------
    >>> mms = Clock(125)
    >>> mms.period_ps
    8000
    >>> mms.cycles_to_ps(10)
    80000
    >>> mms.ps_to_cycles(80000)
    10
    """

    __slots__ = ("freq_mhz", "period_ps")

    def __init__(self, freq_mhz: float) -> None:
        if freq_mhz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_mhz}")
        self.freq_mhz = freq_mhz
        period = 1_000_000 / freq_mhz  # ps
        rounded = round(period)
        if abs(period - rounded) > 1e-9:
            # Non-integer periods would break determinism guarantees; all
            # frequencies used by the paper are exact.
            raise ValueError(
                f"{freq_mhz} MHz has a non-integer picosecond period ({period})"
            )
        self.period_ps = rounded

    def cycles_to_ps(self, cycles: float) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds."""
        if type(cycles) is int:  # exact already; skip float round-trip
            return cycles * self.period_ps
        return round(cycles * self.period_ps)

    def ps_to_cycles(self, ps: int) -> float:
        """Exact (possibly fractional) number of cycles in ``ps``."""
        return ps / self.period_ps

    def ps_to_whole_cycles(self, ps: int) -> int:
        """Number of *complete* cycles contained in ``ps``."""
        return ps // self.period_ps

    def next_edge(self, now_ps: int) -> int:
        """Timestamp of the first rising edge at or after ``now_ps``."""
        rem = now_ps % self.period_ps
        if rem == 0:
            return now_ps
        return now_ps + (self.period_ps - rem)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock({self.freq_mhz} MHz, period={self.period_ps} ps)"
