"""Discrete-event simulation kernel used by every model in :mod:`repro`.

The kernel is deliberately small and dependency-free.  It provides:

* :class:`~repro.sim.kernel.Simulator` -- an event heap over integer
  picosecond timestamps with generator-based processes,
* :class:`~repro.sim.clock.Clock` -- cycle <-> picosecond conversion for a
  clock domain (the paper mixes 100 MHz, 125 MHz and 200 MHz domains),
* :class:`~repro.sim.fifo.Fifo` -- a bounded FIFO with blocking put/get and
  backpressure, the basic coupling element between hardware blocks,
* :class:`~repro.sim.resource.Resource` -- counted resource (bus, port),
* :mod:`~repro.sim.stats` -- counters, time-weighted averages, histograms
  and latency recorders used by the experiment harness.

Time is kept in integer picoseconds so that all the clock domains in the
paper (8 ns, 10 ns, 5 ns periods, 40 ns DDR access cycles) are exactly
representable and simulations are bit-for-bit deterministic.
"""

from repro.sim.clock import MHZ, NS, PS, US, MS, SEC, Clock
from repro.sim.kernel import Event, Process, SimulationError, Simulator
from repro.sim.fifo import Fifo, FifoFullError, FifoEmptyError
from repro.sim.resource import Resource
from repro.sim.stats import (
    Counter,
    Histogram,
    LatencyRecorder,
    RunningStats,
    TimeWeighted,
)

__all__ = [
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "MHZ",
    "Clock",
    "Simulator",
    "Process",
    "Event",
    "SimulationError",
    "Fifo",
    "FifoFullError",
    "FifoEmptyError",
    "Resource",
    "Counter",
    "TimeWeighted",
    "Histogram",
    "LatencyRecorder",
    "RunningStats",
]
