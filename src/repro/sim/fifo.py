"""Bounded FIFOs with blocking put/get -- the coupling element between
hardware blocks.

The paper's MMS "keeps incoming commands in FIFOs (one per port) so as to
smooth the bursts of commands" (Section 6.1) and exerts backpressure when
they fill; :class:`Fifo` models exactly that.  Both blocking (process
generator) and non-blocking (``try_*``) interfaces are provided, plus
occupancy statistics for the latency-decomposition experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.kernel import Event, Simulator
from repro.sim.stats import TimeWeighted


class FifoFullError(RuntimeError):
    """Non-blocking put on a full FIFO."""


class FifoEmptyError(RuntimeError):
    """Non-blocking get on an empty FIFO."""


class Fifo:
    """A bounded FIFO channel between simulation processes.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum occupancy; ``None`` means unbounded (no backpressure).
    name:
        Used in statistics and error messages.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "fifo") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._put_waiters: Deque[tuple[Event, Any]] = deque()
        self._get_waiters: Deque[Event] = deque()
        self.occupancy = TimeWeighted(sim, initial=0)
        self.total_put = 0
        self.total_got = 0

    # -------------------------------------------------------------- state

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def peek(self) -> Any:
        """Head item without removing it (raises if empty)."""
        if not self._items:
            raise FifoEmptyError(f"{self.name}: peek on empty FIFO")
        return self._items[0]

    # ------------------------------------------------------- non-blocking

    def try_put(self, item: Any) -> None:
        """Insert ``item`` or raise :class:`FifoFullError`."""
        if self.is_full:
            raise FifoFullError(f"{self.name}: put on full FIFO (cap={self.capacity})")
        self._deposit(item)

    def try_get(self) -> Any:
        """Remove and return the head item or raise :class:`FifoEmptyError`."""
        if not self._items:
            raise FifoEmptyError(f"{self.name}: get on empty FIFO")
        return self._withdraw()

    # ----------------------------------------------------------- blocking

    def put(self, item: Any) -> Generator[Any, Any, None]:
        """Blocking put: ``yield from fifo.put(x)`` waits while full."""
        if self.is_full:
            gate = self.sim.event(name=f"{self.name}.put")
            self._put_waiters.append((gate, item))
            yield gate
            # the get side deposited our item when it freed the slot
            return
        self._deposit(item)

    def get(self) -> Generator[Any, Any, Any]:
        """Blocking get: ``item = yield from fifo.get()`` waits while empty."""
        if self._items:
            return self._withdraw()
        gate = self.sim.event(name=f"{self.name}.get")
        self._get_waiters.append(gate)
        item = yield gate
        return item

    # ---------------------------------------------------------- internals

    def _deposit(self, item: Any) -> None:
        self.total_put += 1
        if self._get_waiters:
            # Hand the item straight to the oldest waiting consumer.
            gate = self._get_waiters.popleft()
            self.total_got += 1
            gate.trigger(item)
            return
        self._items.append(item)
        self.occupancy.record(len(self._items))

    def _withdraw(self) -> Any:
        item = self._items.popleft()
        self.total_got += 1
        if self._put_waiters:
            gate, pending = self._put_waiters.popleft()
            self._items.append(pending)
            self.total_put += 1
            gate.trigger(None)
        self.occupancy.record(len(self._items))
        return item

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity is None else self.capacity
        return f"Fifo({self.name!r}, {len(self._items)}/{cap})"
