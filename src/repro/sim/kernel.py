"""The discrete-event simulation kernel.

A :class:`Simulator` owns an event heap keyed by ``(time_ps, sequence)``.
Model behaviour is written as Python generator functions ("processes")
that ``yield`` one of:

* an ``int`` -- advance simulated time by that many picoseconds,
* an :class:`Event` -- suspend until the event is triggered; the value the
  event was triggered with becomes the value of the ``yield`` expression,
* a :class:`Process` -- join: suspend until that process terminates; its
  return value becomes the value of the ``yield`` expression,
* ``None`` -- yield the scheduler without advancing time (the process is
  resumed after already-scheduled same-time events).

This is the same programming model as SimPy, reimplemented minimally so
the repo has no runtime dependencies and full control over determinism:
ties are broken by a monotonically increasing sequence number, so two
runs of the same model with the same seeds produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

ProcessBody = Generator[Any, Any, Any]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, double trigger...)."""


class Event:
    """A one-shot synchronization point.

    Processes wait on an event by yielding it; :meth:`trigger` wakes all
    waiters (in wait order) and records the value.  Waiting on an already
    triggered event resumes immediately with the recorded value.
    """

    __slots__ = ("sim", "name", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: list[Process] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiting process at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule_resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self.triggered else f"{len(self._waiters)} waiters"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running generator, owned by a :class:`Simulator`.

    A process is itself waitable: yielding a process from another process
    suspends the caller until the callee returns, and evaluates to the
    callee's return value.
    """

    __slots__ = ("sim", "name", "_body", "done", "result", "_completion")

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str) -> None:
        self.sim = sim
        self.name = name
        self._body = body
        self.done = False
        self.result: Any = None
        self._completion = Event(sim, name=f"{name}.done")

    @property
    def completion(self) -> Event:
        """Event triggered (with the return value) when the process ends."""
        return self._completion

    def _step(self, send_value: Any) -> None:
        try:
            command = self._body.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.trigger(stop.value)
            return
        self.sim._dispatch(self, command)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Event-heap simulator over integer picosecond time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Process, Any]] = []
        self._seq = 0
        self._processes: list[Process] = []

    # ------------------------------------------------------------------ API

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Create a process from a generator and schedule its first step now."""
        proc = Process(self, body, name=f"{name}#{self._seq}")
        self._processes.append(proc)
        self._push(self.now, proc, None)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh (untriggered) event bound to this simulator."""
        return Event(self, name)

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap empties, ``until_ps`` is reached, or
        ``max_events`` steps executed.  Returns the final simulated time."""
        steps = 0
        while self._heap:
            when, _seq, proc, value = self._heap[0]
            if until_ps is not None and when > until_ps:
                self.now = until_ps
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            if proc.done:
                continue
            proc._step(value)
            steps += 1
            if max_events is not None and steps >= max_events:
                break
        if until_ps is not None and not self._heap:
            self.now = max(self.now, until_ps)
        return self.now

    def run_all(self, limit_ps: int = 10 * 10**12) -> int:
        """Run to completion with a safety time limit (default 10 s)."""
        end = self.run(until_ps=limit_ps)
        if self._heap:
            raise SimulationError(
                f"simulation did not quiesce before {limit_ps} ps "
                f"({len(self._heap)} events pending)"
            )
        return end

    # ----------------------------------------------------------- internals

    def _push(self, when: int, proc: Process, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, proc, value))

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._push(self.now, proc, value)

    def _dispatch(self, proc: Process, command: Any) -> None:
        if command is None:
            self._push(self.now, proc, None)
        elif isinstance(command, int):
            if command < 0:
                raise SimulationError(
                    f"process {proc.name!r} yielded a negative delay {command}"
                )
            self._push(self.now + command, proc, None)
        elif isinstance(command, Event):
            command._add_waiter(proc)
        elif isinstance(command, Process):
            command._completion._add_waiter(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command "
                f"{command!r} (expected int delay, Event, Process or None)"
            )


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """Return an event that triggers when every event in ``events`` has.

    The combined event's value is the list of individual values, in the
    order the events were given.
    """
    events = list(events)
    combined = sim.event(name="all_of")
    if not events:
        combined.trigger([])
        return combined

    def waiter() -> ProcessBody:
        values = []
        for ev in events:
            value = yield ev
            values.append(value)
        combined.trigger(values)

    sim.spawn(waiter(), name="all_of")
    return combined


def call_at(sim: Simulator, when_ps: int, fn: Callable[[], None]) -> Process:
    """Schedule a plain callback at an absolute simulated time."""
    if when_ps < sim.now:
        raise SimulationError(f"call_at({when_ps}) is in the past (now={sim.now})")

    def body() -> ProcessBody:
        yield when_ps - sim.now
        fn()

    return sim.spawn(body(), name="call_at")
