"""The discrete-event simulation kernel.

A :class:`Simulator` owns an event schedule keyed by ``(time_ps,
sequence)``.  Model behaviour is written as Python generator functions
("processes") that ``yield`` one of:

* an ``int`` -- advance simulated time by that many picoseconds,
* an :class:`Event` -- suspend until the event is triggered; the value the
  event was triggered with becomes the value of the ``yield`` expression,
* a :class:`Process` -- join: suspend until that process terminates; its
  return value becomes the value of the ``yield`` expression,
* ``None`` -- yield the scheduler without advancing time (the process is
  resumed after already-scheduled same-time events).

This is the same programming model as SimPy, reimplemented minimally so
the repo has no runtime dependencies and full control over determinism:
ties are broken by a monotonically increasing sequence number, so two
runs of the same model with the same seeds produce identical traces.

Scheduler engines
-----------------

Two interchangeable engines implement that contract:

* :class:`Simulator` (the default) uses a **bucket calendar queue**: a
  hash calendar of per-timestamp FIFO lanes indexed by a small heap of
  *distinct* pending timestamps.  Events scheduled for the current
  instant -- the dominant case in clocked hardware models (``yield
  None``, event triggers, FIFO handshakes, resource grants) -- append to
  the *current lane* in O(1) and never touch the heap; heap operations
  are paid once per distinct future timestamp rather than once per
  event, which collapses the cost of clock-aligned models where many
  processes share edge timestamps.  Entries whose process already
  finished are skipped lazily on pop (counted in
  :attr:`Simulator.stale_skips`) instead of being sifted through the
  comparison-based structure.
* :class:`HeapqSimulator` is the original single-``heapq`` engine, kept
  as the executable specification: the equivalence suite
  (``tests/sim/test_kernel_equivalence.py``) asserts both engines
  produce bit-identical traces on the same models.

Within one timestamp both engines resume processes in push order, which
equals sequence order (the sequence counter is monotonic), so the
observable order is exactly the ``(time_ps, sequence)`` order of the
original heap implementation.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Tuple

ProcessBody = Generator[Any, Any, Any]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, double trigger...)."""


class Event:
    """A one-shot synchronization point.

    Processes wait on an event by yielding it; :meth:`trigger` wakes all
    waiters (in wait order) and records the value.  Waiting on an already
    triggered event resumes immediately with the recorded value.
    """

    __slots__ = ("sim", "name", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: list[Process] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiting process at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule_resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self.triggered else f"{len(self._waiters)} waiters"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running generator, owned by a :class:`Simulator`.

    A process is itself waitable: yielding a process from another process
    suspends the caller until the callee returns, and evaluates to the
    callee's return value.
    """

    __slots__ = ("sim", "name", "_body", "done", "result", "_completion")

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str) -> None:
        self.sim = sim
        self.name = name
        self._body = body
        self.done = False
        self.result: Any = None
        self._completion = Event(sim, name=f"{name}.done")

    @property
    def completion(self) -> Event:
        """Event triggered (with the return value) when the process ends."""
        return self._completion

    def _step(self, send_value: Any) -> None:
        try:
            command = self._body.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.trigger(stop.value)
            return
        self.sim._dispatch(self, command)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Bucket-calendar-queue simulator over integer picosecond time.

    The schedule is split into the *current lane* -- a FIFO of resumes
    due exactly now -- and a calendar of per-timestamp FIFO buckets for
    future instants, indexed by a heap of distinct timestamps.  When the
    lane drains, the earliest bucket is promoted wholesale to become the
    new lane.  Same-time scheduling is therefore O(1) and allocation-free
    beyond the ``(proc, value)`` pair; plain ``yield <int>`` delays take
    a fast path in the run loop that never constructs an :class:`Event`.
    """

    def __init__(self) -> None:
        self.now: int = 0
        #: resumes due at the current instant, in sequence order
        self._lane: Deque[Tuple["Process", Any]] = deque()
        #: future instant -> FIFO of resumes due then
        self._buckets: Dict[int, Deque[Tuple["Process", Any]]] = {}
        #: heap of the *distinct* timestamps present in ``_buckets``
        self._times: List[int] = []
        self._pending = 0
        self._seq = 0
        #: entries dropped on pop because their process had already
        #: finished (lazy deletion -- they are never re-sifted)
        self.stale_skips = 0
        self._processes: list[Process] = []

    # ------------------------------------------------------------------ API

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Create a process from a generator and schedule its first step now."""
        proc = Process(self, body, name=f"{name}#{self._seq}")
        self._processes.append(proc)
        self._push(self.now, proc, None)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh (untriggered) event bound to this simulator."""
        return Event(self, name)

    @property
    def pending_events(self) -> int:
        """Scheduled resumes not yet executed (stale entries included)."""
        return self._pending

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the schedule empties, ``until_ps`` is reached, or
        ``max_events`` steps executed.  Returns the final simulated time."""
        steps = 0
        lane = self._lane
        buckets = self._buckets
        times = self._times
        while True:
            if not lane:
                if not times:
                    break
                when = times[0]
                if until_ps is not None and when > until_ps:
                    self.now = until_ps
                    return self.now
                heapq.heappop(times)
                # The promoted bucket becomes the current lane: everything
                # in it was pushed before time advanced here, so in-order.
                lane = self._lane = buckets.pop(when)
                self.now = when
            proc, value = lane.popleft()
            self._pending -= 1
            if proc.done:
                self.stale_skips += 1
                continue
            # --- inline Process._step + dispatch (the hot path) ---------
            try:
                command = proc._body.send(value)
            except StopIteration as stop:
                proc.done = True
                proc.result = stop.value
                proc._completion.trigger(stop.value)
                command = _NO_COMMAND
            if command is _NO_COMMAND:
                pass
            elif command is None:
                self._seq += 1
                self._pending += 1
                lane.append((proc, None))
            elif isinstance(command, int):
                if command < 0:
                    raise SimulationError(
                        f"process {proc.name!r} yielded a negative delay {command}"
                    )
                self._seq += 1
                self._pending += 1
                if command == 0:
                    lane.append((proc, None))
                else:
                    when = self.now + command
                    bucket = buckets.get(when)
                    if bucket is None:
                        buckets[when] = deque(((proc, None),))
                        heapq.heappush(times, when)
                    else:
                        bucket.append((proc, None))
            elif isinstance(command, Event):
                command._add_waiter(proc)
            elif isinstance(command, Process):
                command._completion._add_waiter(proc)
            else:
                raise SimulationError(
                    f"process {proc.name!r} yielded unsupported command "
                    f"{command!r} (expected int delay, Event, Process or None)"
                )
            steps += 1
            if max_events is not None and steps >= max_events:
                break
        if until_ps is not None and not self._pending:
            self.now = max(self.now, until_ps)
        return self.now

    def run_all(self, limit_ps: int = 10 * 10**12) -> int:
        """Run to completion with a safety time limit (default 10 s)."""
        end = self.run(until_ps=limit_ps)
        if self._pending:
            raise SimulationError(
                f"simulation did not quiesce before {limit_ps} ps "
                f"({self._pending} events pending)"
            )
        return end

    def schedule_state(self) -> Dict[str, Any]:
        """Serialize the event schedule: the clock plus every live
        pending resume as ``[when_ps, process_name, value_kind]`` in
        ``(time, sequence)`` order.

        Process names carry their spawn sequence number (``name#seq``),
        so two runs of the same model produce identical serializations
        exactly when their schedules are equivalent -- the anchor of the
        kernel path's replay-verified checkpoints
        (:mod:`repro.checkpoint`).  Stale entries (process already
        done) are skipped: they are unobservable.
        """
        entries: List[List[Any]] = []
        for proc, value in self._lane:
            if not proc.done:
                entries.append([self.now, proc.name, _value_kind(value)])
        for when in sorted(self._buckets):
            for proc, value in self._buckets[when]:
                if not proc.done:
                    entries.append([when, proc.name, _value_kind(value)])
        return {"now": self.now, "entries": entries}

    # ----------------------------------------------------------- internals

    def _push(self, when: int, proc: Process, value: Any) -> None:
        self._seq += 1
        self._pending += 1
        if when == self.now:
            self._lane.append((proc, value))
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = deque(((proc, value),))
            heapq.heappush(self._times, when)
        else:
            bucket.append((proc, value))

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._push(self.now, proc, value)

    def _dispatch(self, proc: Process, command: Any) -> None:
        if command is None:
            self._push(self.now, proc, None)
        elif isinstance(command, int):
            if command < 0:
                raise SimulationError(
                    f"process {proc.name!r} yielded a negative delay {command}"
                )
            self._push(self.now + command, proc, None)
        elif isinstance(command, Event):
            command._add_waiter(proc)
        elif isinstance(command, Process):
            command._completion._add_waiter(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command "
                f"{command!r} (expected int delay, Event, Process or None)"
            )


#: Sentinel marking "process terminated, nothing to dispatch" in the
#: inlined run loop.
_NO_COMMAND = object()


def _value_kind(value: Any) -> str:
    """Stable label of a pending resume value for serialization (the
    values themselves -- event payloads, process results -- are model
    objects and not JSON)."""
    return "none" if value is None else type(value).__name__


class HeapqSimulator(Simulator):
    """Reference engine: the original single-``heapq`` event loop.

    Kept verbatim as the executable specification of the kernel's
    ordering semantics; the equivalence tests run identical models on
    both engines and require bit-identical traces.  New models should
    use :class:`Simulator`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[int, int, Process, Any]] = []

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        steps = 0
        while self._heap:
            when, _seq, proc, value = self._heap[0]
            if until_ps is not None and when > until_ps:
                self.now = until_ps
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            if proc.done:
                self.stale_skips += 1
                continue
            proc._step(value)
            steps += 1
            if max_events is not None and steps >= max_events:
                break
        if until_ps is not None and not self._heap:
            self.now = max(self.now, until_ps)
        return self.now

    def run_all(self, limit_ps: int = 10 * 10**12) -> int:
        end = self.run(until_ps=limit_ps)
        if self._heap:
            raise SimulationError(
                f"simulation did not quiesce before {limit_ps} ps "
                f"({len(self._heap)} events pending)"
            )
        return end

    def schedule_state(self) -> Dict[str, Any]:
        """Heapq engine's :meth:`Simulator.schedule_state`: the heap in
        ``(time, sequence)`` order (sorting a heap list yields exactly
        that order -- the sequence is the unique tie-break)."""
        entries = [[when, proc.name, _value_kind(value)]
                   for when, _seq, proc, value in sorted(self._heap)
                   if not proc.done]
        return {"now": self.now, "entries": entries}

    def _push(self, when: int, proc: Process, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, proc, value))


#: Engine registry used by the equivalence tests and benchmarks.
ENGINES: Dict[str, type] = {
    "calendar": Simulator,
    "heapq": HeapqSimulator,
}

#: Scenario-level engine names: every DES-backed experiment exposes the
#: same ``engine="fast" | "reference"`` knob, which for kernel-driven
#: models resolves to the calendar-queue kernel vs the heapq ordering
#: spec (proven trace-identical by tests/sim/test_kernel_equivalence.py).
ENGINE_ALIASES: Dict[str, str] = {
    "fast": "calendar",
    "reference": "heapq",
}


def make_simulator(engine: str = "calendar") -> Simulator:
    """Instantiate a kernel by engine name.

    Accepts the kernel names ``"calendar"`` / ``"heapq"`` and the
    scenario-level aliases ``"fast"`` / ``"reference"``.
    """
    try:
        cls = ENGINES[ENGINE_ALIASES.get(engine, engine)]
    except KeyError:
        choices = sorted(ENGINES) + sorted(ENGINE_ALIASES)
        raise ValueError(
            f"unknown kernel engine {engine!r} (choose from {choices})"
        ) from None
    return cls()


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """Return an event that triggers when every event in ``events`` has.

    The combined event's value is the list of individual values, in the
    order the events were given.
    """
    events = list(events)
    combined = sim.event(name="all_of")
    if not events:
        combined.trigger([])
        return combined

    def waiter() -> ProcessBody:
        values = []
        for ev in events:
            value = yield ev
            values.append(value)
        combined.trigger(values)

    sim.spawn(waiter(), name="all_of")
    return combined


def call_at(sim: Simulator, when_ps: int, fn: Callable[[], None]) -> Process:
    """Schedule a plain callback at an absolute simulated time."""
    if when_ps < sim.now:
        raise SimulationError(f"call_at({when_ps}) is in the past (now={sim.now})")

    def body() -> ProcessBody:
        yield when_ps - sim.now
        fn()

    return sim.spawn(body(), name="call_at")
