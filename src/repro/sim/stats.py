"""Statistics collectors for the experiment harness.

Every table in the paper is an aggregate over a simulation run:
throughput-loss fractions (Table 1), packet rates (Table 2), cycle counts
(Tables 3/4) and mean delay decompositions (Table 5).  The collectors
here are intentionally simple, deterministic and dependency-free.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class Counter:
    """A named monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.4g}, "
            f"sd={self.stddev:.4g})"
        )


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Used for FIFO occupancy and resource utilization: ``record(v)`` at
    each change; :attr:`mean` integrates value over simulated time.
    """

    __slots__ = ("sim", "_value", "_last_change_ps", "_integral", "_start_ps")

    def __init__(self, sim: "Simulator", initial: float = 0.0) -> None:
        self.sim = sim
        self._value = initial
        self._last_change_ps = sim.now
        self._start_ps = sim.now
        self._integral = 0.0

    def record(self, value: float) -> None:
        now = self.sim.now
        self._integral += self._value * (now - self._last_change_ps)
        self._value = value
        self._last_change_ps = now

    @property
    def current(self) -> float:
        return self._value

    @property
    def mean(self) -> float:
        now = self.sim.now
        elapsed = now - self._start_ps
        if elapsed <= 0:
            return self._value
        integral = self._integral + self._value * (now - self._last_change_ps)
        return integral / elapsed


class Histogram:
    """Fixed-width bin histogram with overflow bin and quantile queries."""

    def __init__(self, bin_width: float, num_bins: int, origin: float = 0.0) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        self.bin_width = bin_width
        self.num_bins = num_bins
        self.origin = origin
        self.bins: List[int] = [0] * (num_bins + 1)  # last bin = overflow
        self.count = 0

    def add(self, x: float) -> None:
        idx = int((x - self.origin) // self.bin_width)
        if idx < 0:
            idx = 0
        elif idx >= self.num_bins:
            idx = self.num_bins  # overflow
        self.bins[idx] += 1
        self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile (bin upper edge); q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if self.count == 0:
            return self.origin
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bins):
            cumulative += n
            if cumulative >= target:
                return self.origin + (i + 1) * self.bin_width
        return self.origin + (self.num_bins + 1) * self.bin_width

    @property
    def overflow(self) -> int:
        return self.bins[-1]


class LatencyRecorder:
    """Latency sample aggregator with optional full-sample retention.

    The Table 5 experiment needs mean FIFO / execution / data delays; the
    ablations additionally inspect tails, so samples can be kept.
    """

    def __init__(self, name: str = "latency", keep_samples: bool = False) -> None:
        self.name = name
        self.stats = RunningStats()
        self.keep_samples = keep_samples
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.stats.add(value)
        if self.keep_samples:
            self.samples.append(value)

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def minimum(self) -> float:
        return self.stats.minimum if self.stats.count else 0.0

    @property
    def maximum(self) -> float:
        return self.stats.maximum if self.stats.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile over retained samples (requires keep_samples)."""
        if not self.keep_samples:
            raise RuntimeError(f"{self.name}: samples were not retained")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyRecorder({self.name!r}, n={self.count}, mean={self.mean:.3f})"


def weighted_mean(pairs: Sequence[tuple[float, float]]) -> float:
    """Mean of ``(value, weight)`` pairs; 0.0 when total weight is zero."""
    total_w = sum(w for _v, w in pairs)
    if total_w == 0:
        return 0.0
    return sum(v * w for v, w in pairs) / total_w
