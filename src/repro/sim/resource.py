"""Counted resources (buses, memory ports, execution units).

A :class:`Resource` has ``slots`` concurrent users; further acquirers
queue in FIFO order.  Used for the PLB bus (one master at a time), the
IXP1200's shared SRAM/SDRAM controllers, and the MMS pointer-memory port.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.sim.kernel import Event, Simulator
from repro.sim.stats import TimeWeighted


class Resource:
    """FIFO-granting counted resource."""

    def __init__(self, sim: Simulator, slots: int = 1, name: str = "resource") -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.sim = sim
        self.slots = slots
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.busy = TimeWeighted(sim, initial=0)
        self.total_acquisitions = 0
        self.total_wait_ps = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.slots - self._in_use

    def acquire(self) -> Generator[Any, Any, None]:
        """Blocking acquire: ``yield from res.acquire()``."""
        start = self.sim.now
        if self._in_use < self.slots and not self._waiters:
            self._grant()
        else:
            gate = self.sim.event(name=f"{self.name}.acquire")
            self._waiters.append(gate)
            yield gate
            # _grant() was performed by release() on our behalf
        self.total_acquisitions += 1
        self.total_wait_ps += self.sim.now - start

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns ``True`` on success."""
        if self._in_use < self.slots and not self._waiters:
            self._grant()
            self.total_acquisitions += 1
            return True
        return False

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self._in_use -= 1
        if self._waiters:
            gate = self._waiters.popleft()
            self._grant()
            gate.trigger(None)
        else:
            self.busy.record(self._in_use)

    def _grant(self) -> None:
        self._in_use += 1
        self.busy.record(self._in_use)

    @property
    def mean_wait_ps(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_ps / self.total_acquisitions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resource({self.name!r}, {self._in_use}/{self.slots} in use)"
