"""Reference NPU platform model (paper Section 5, Figure 1, Table 3).

The paper's authors built a "typical reference NPU" on a Xilinx
Virtex-II Pro: a PowerPC 405 (100 MHz) on a 64-bit PLB bus with OCM
instruction/data memories, an external DDR DRAM for packet data (PLB DDR
controller), an external ZBT SRAM for pointers (PLB EMC), and an Ethernet
MAC staging packets through a dual-port BRAM.  Queue management runs in
software on the PowerPC; Table 3 prices each sub-operation in cycles.

This package reproduces that platform at transaction level:

* :mod:`repro.npu.params` -- PLB/DMA timing parameters,
* :mod:`repro.npu.microprograms` -- the queue-manager microprograms,
  priced from the real :mod:`repro.queueing` access traces plus
  documented instruction overheads (Table 3, and the Section 5.3
  line-transaction and DMA improvements),
* :mod:`repro.npu.system` -- a DES model of the whole Figure 1 system
  for end-to-end runs (MAC -> BRAM -> queue manager -> DDR and back).
"""

from repro.npu.params import DmaTiming, NpuParams, PlbTiming
from repro.npu.microprograms import (
    CopyStrategy,
    OpCost,
    QueueSwModel,
    Table3Row,
)
from repro.npu.system import NpuRunResult, ReferenceNpu, figure1_diagram

__all__ = [
    "PlbTiming",
    "DmaTiming",
    "NpuParams",
    "OpCost",
    "CopyStrategy",
    "QueueSwModel",
    "Table3Row",
    "ReferenceNpu",
    "NpuRunResult",
    "figure1_diagram",
]
