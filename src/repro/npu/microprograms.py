"""Queue-manager microprograms for the reference NPU (Table 3).

Each Table 3 row is priced as::

    cycles = PLB cost of the operation's pointer accesses
           + documented instruction overhead (NpuParams.instr_*)

where the pointer accesses are *measured* on the real Section 5.2
structure (:class:`repro.queueing.SegmentQueueManager` with free-list
anchors in memory, as software must keep them).  The segment copy is
priced per copy strategy:

* ``WORD`` -- 8 single-beat PLB reads from BRAM + 8 single-beat writes to
  DDR + loop instructions (the baseline: 136 cycles),
* ``LINE`` -- one PLB line read + one line write through the data cache
  ("a segment can be retrieved ... in only 12 cycles", total 24),
* ``DMA``  -- 4 register writes to set up the engine (16 CPU cycles);
  the 34-cycle transfer itself runs on the DMA engine, freeing the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.npu.params import NpuParams, SEGMENT_BEATS
from repro.queueing import SegmentQueueManager
from repro.queueing.pointer_memory import AccessRecord
from repro.queueing.segment_queues import SegmentMeta


class CopyStrategy(Enum):
    """How the 64-byte segment moves between BRAM and DDR (Section 5.3)."""

    WORD = "word"
    LINE = "line"
    DMA = "dma"


@dataclass(frozen=True)
class OpCost:
    """Cycle decomposition of one sub-operation."""

    name: str
    plb_reads: int = 0
    plb_writes: int = 0
    line_reads: int = 0
    line_writes: int = 0
    dma_setups: int = 0
    instr: int = 0

    def cpu_cycles(self, params: NpuParams) -> int:
        """Cycles the PowerPC is busy with this sub-operation."""
        plb = params.plb
        return (
            self.plb_reads * plb.single_read_cycles
            + self.plb_writes * plb.single_write_cycles
            + (self.line_reads + self.line_writes) * plb.line_transaction_cycles
            + self.dma_setups * params.dma.setup_cycles
            + self.instr
        )


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3 (cycles per segment operation)."""

    function: str
    enqueue_cycles: int
    dequeue_cycles: int


def _count(trace: List[AccessRecord]) -> tuple[int, int]:
    reads = sum(1 for a in trace if a.kind == "R")
    writes = sum(1 for a in trace if a.kind == "W")
    return reads, writes


class QueueSwModel:
    """The software queue manager of Section 5, priced per Table 3.

    All pointer-access counts are measured on a live
    :class:`SegmentQueueManager` at construction time; the model then
    answers cycle and throughput questions for any copy strategy.
    """

    def __init__(self, params: NpuParams = NpuParams()) -> None:
        self.params = params
        m = SegmentQueueManager(num_queues=2, num_slots=8)
        # --- measure the free-list and queue-list sub-operations in
        # steady state (queue stays non-empty across the dequeue)
        m.enqueue(0, SegmentMeta(eop=True))
        slot, t_pop = m.alloc()
        t_link_first = m.link_segment(0, slot, SegmentMeta(eop=False))
        slot2, _ = m.alloc()
        t_link_rest = m.link_segment(0, slot2, SegmentMeta(eop=True),
                                     packet_head_slot=slot)
        slot3, _meta, t_unlink = m.unlink_segment(0)
        t_push = m.release(slot3)

        r, w = _count(t_pop)
        self.free_pop = OpCost("dequeue free list", plb_reads=r, plb_writes=w,
                               instr=params.instr_free_pop)
        r, w = _count(t_link_first)
        self.link_first = OpCost("enqueue segment (first)", plb_reads=r,
                                 plb_writes=w, instr=params.instr_link_first)
        r, w = _count(t_link_rest)
        self.link_rest = OpCost("enqueue segment (rest)", plb_reads=r,
                                plb_writes=w, instr=params.instr_link_rest)
        r, w = _count(t_unlink)
        self.unlink = OpCost("dequeue segment", plb_reads=r, plb_writes=w,
                             instr=params.instr_unlink)
        r, w = _count(t_push)
        self.free_push = OpCost("enqueue free list", plb_reads=r, plb_writes=w,
                                instr=params.instr_free_push)

    # ------------------------------------------------------------- copies

    def copy_cost(self, strategy: CopyStrategy) -> OpCost:
        """Cycle cost of moving one 64-byte segment BRAM <-> DDR."""
        p = self.params
        if strategy is CopyStrategy.WORD:
            return OpCost(
                "copy a segment (word)",
                plb_reads=SEGMENT_BEATS,
                plb_writes=SEGMENT_BEATS,
                instr=SEGMENT_BEATS * p.instr_copy_per_beat,
            )
        if strategy is CopyStrategy.LINE:
            return OpCost("copy a segment (line)", line_reads=1, line_writes=1)
        if strategy is CopyStrategy.DMA:
            return OpCost("copy a segment (dma setup)", dma_setups=1)
        raise ValueError(f"unknown strategy {strategy}")

    # -------------------------------------------------------------- rows

    def enqueue_cycles(self, strategy: CopyStrategy,
                       first_segment: bool = True) -> int:
        """Full enqueue of one segment: free-list pop + link + copy."""
        link = self.link_first if first_segment else self.link_rest
        return (
            self.free_pop.cpu_cycles(self.params)
            + link.cpu_cycles(self.params)
            + self.copy_cost(strategy).cpu_cycles(self.params)
        )

    def dequeue_cycles(self, strategy: CopyStrategy) -> int:
        """Full dequeue of one segment: unlink + free-list push + copy."""
        return (
            self.unlink.cpu_cycles(self.params)
            + self.free_push.cpu_cycles(self.params)
            + self.copy_cost(strategy).cpu_cycles(self.params)
        )

    def table3(self, strategy: CopyStrategy = CopyStrategy.WORD
               ) -> List[Table3Row]:
        """The rows of Table 3 for a copy strategy."""
        p = self.params
        copy = self.copy_cost(strategy).cpu_cycles(p)
        return [
            Table3Row("Dequeue Free List" if strategy is CopyStrategy.WORD
                      else "Free list op",
                      self.free_pop.cpu_cycles(p), self.free_push.cpu_cycles(p)),
            Table3Row("Enqueue Segment",
                      self.link_first.cpu_cycles(p), self.unlink.cpu_cycles(p)),
            Table3Row("Enqueue Segment (rest)",
                      self.link_rest.cpu_cycles(p), self.unlink.cpu_cycles(p)),
            Table3Row("Copy a segment", copy, copy),
            Table3Row("Total",
                      self.enqueue_cycles(strategy, first_segment=True),
                      self.dequeue_cycles(strategy)),
            Table3Row("Total (rest)",
                      self.enqueue_cycles(strategy, first_segment=False),
                      self.dequeue_cycles(strategy)),
        ]

    # -------------------------------------------------------- throughput

    def full_duplex_gbps(self, strategy: CopyStrategy,
                         clock_mhz: float = None,
                         worst_case: bool = True) -> float:
        """Sustainable full-duplex line rate for 64-byte packets.

        In one packet interval ``T = 512 bits / R`` the CPU must enqueue
        one arriving packet and dequeue one departing packet, so
        ``R_max = 512 x f / (enqueue + dequeue cycles)``.  The paper's
        rule of thumb falls out: ~100 Mbps at 100 MHz for the baseline,
        ~200 Mbps with line transactions.
        """
        clock_mhz = clock_mhz or self.params.cpu_clock_mhz
        cycles = (self.enqueue_cycles(strategy, first_segment=not worst_case)
                  + self.dequeue_cycles(strategy))
        return 512 * clock_mhz / cycles / 1000.0

    def cpu_headroom_fraction(self, strategy: CopyStrategy,
                              line_rate_gbps: float = 0.1) -> float:
        """Fraction of CPU cycles left for *other* work at a full-duplex
        line rate (the Section 5.3 DMA argument: same throughput, but
        the copy cycles come back as headroom)."""
        interval_cycles = (512 / line_rate_gbps / 1000.0) * self.params.cpu_clock_mhz
        used = (self.enqueue_cycles(strategy, first_segment=False)
                + self.dequeue_cycles(strategy))
        return max(0.0, 1.0 - used / interval_cycles)
