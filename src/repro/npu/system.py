"""End-to-end DES model of the Figure 1 reference NPU.

Packet path: the Ethernet MAC writes arriving frames into the dual-port
BRAM (its own WishBone port -- no PLB cycles); the PowerPC queue manager
enqueues each frame into its flow queue (pointer ops on the ZBT through
the PLB EMC + segment copy into DDR), dequeues frames back into the BRAM
and the MAC transmits them.  CPU costs come from
:class:`repro.npu.microprograms.QueueSwModel` -- i.e. from Table 3 -- so
the sustainable end-to-end rate of this simulation *is* the Section 5.3
throughput claim, now with queues, drops and duplex interleaving instead
of a closed-form bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net import Packet, TimedPacket
from repro.net.ethernet import packet_service_time_ps
from repro.npu.microprograms import CopyStrategy, QueueSwModel
from repro.npu.params import NpuParams
from repro.queueing import OutOfBuffersError, SegmentQueueManager
from repro.queueing.segment_queues import SegmentMeta
from repro.sim import Clock, Fifo
from repro.sim.clock import SEC
from repro.sim.kernel import make_simulator


@dataclass
class NpuRunResult:
    """Outcome of an end-to-end run."""

    offered_gbps: float
    strategy: CopyStrategy
    received: int
    forwarded: int
    dropped: int
    duration_ps: int
    #: DES kernel the run used ("fast" = calendar queue, "reference" =
    #: heapq ordering spec); simulated results are identical.
    engine: str = "fast"

    @property
    def forwarded_gbps(self) -> float:
        if self.duration_ps == 0:
            return 0.0
        return self.forwarded * 512.0 * 1000 / self.duration_ps

    @property
    def drop_rate(self) -> float:
        if self.received == 0:
            return 0.0
        return self.dropped / self.received

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NpuRunResult(offered={self.offered_gbps} Gbps, "
            f"forwarded={self.forwarded_gbps:.3f} Gbps, "
            f"drops={self.drop_rate:.1%})"
        )


class ReferenceNpu:
    """The Figure 1 platform, runnable against a packet stream.

    Parameters
    ----------
    strategy:
        Segment copy strategy (Section 5.3 progression).
    num_queues / num_buffer_segments:
        Queue-manager configuration (DDR packet buffer capacity).
    bram_segments:
        Dual-port BRAM staging capacity per direction ("4 Kbytes Dual
        Port internal Block RAM" = 32 x 64 B each way).
    """

    def __init__(self, strategy: CopyStrategy = CopyStrategy.WORD,
                 num_queues: int = 16, num_buffer_segments: int = 1024,
                 bram_segments: int = 32,
                 params: NpuParams = NpuParams(),
                 engine: str = "fast") -> None:
        self.params = params
        self.strategy = strategy
        self.engine = engine
        self.sim = make_simulator(engine)
        self.clock = Clock(params.cpu_clock_mhz)
        self.sw = QueueSwModel(params)
        self.queues = SegmentQueueManager(num_queues=num_queues,
                                          num_slots=num_buffer_segments)
        self.rx_bram = Fifo(self.sim, capacity=bram_segments, name="rx-bram")
        self.tx_bram = Fifo(self.sim, capacity=bram_segments, name="tx-bram")
        self.num_queues = num_queues
        self.received = 0
        self.dropped = 0
        self.forwarded = 0
        self._backlog = 0  # packets resident in DDR queues
        self._last_activity_ps = 0

    # -------------------------------------------------------------- parts

    def _rx_mac(self, stream: Iterator[TimedPacket], limit: int):
        """MAC receive: frames land in the RX BRAM or are dropped."""
        count = 0
        for tp in stream:
            if tp.arrival_ps > self.sim.now:
                yield tp.arrival_ps - self.sim.now
            self.received += 1
            if self.rx_bram.is_full:
                self.dropped += 1
            else:
                self.rx_bram.try_put(tp.packet)
            count += 1
            if count >= limit:
                return

    def _cpu(self):
        """PowerPC queue-manager loop: alternate ingress and egress."""
        cyc = self.clock.cycles_to_ps
        while True:
            worked = False
            if not self.rx_bram.is_empty:
                pkt: Packet = self.rx_bram.try_get()
                queue = pkt.flow_id % self.num_queues
                try:
                    head = None
                    for i, seg_len in enumerate(pkt.segment_lengths()):
                        eop = i == pkt.num_segments - 1
                        yield cyc(self.sw.enqueue_cycles(
                            self.strategy, first_segment=(i == 0)))
                        slot, _ = self.queues.enqueue(
                            queue,
                            SegmentMeta(eop=eop, length=seg_len, pid=pkt.pid,
                                        index=i),
                            packet_head_slot=head)
                        if head is None:
                            head = slot
                    self._backlog += 1
                except OutOfBuffersError:
                    self.dropped += 1
                worked = True
            if self._backlog and not self.tx_bram.is_full:
                queue = self._next_nonempty_queue()
                if queue is not None:
                    segs = []
                    while True:
                        yield cyc(self.sw.dequeue_cycles(self.strategy))
                        _slot, meta, _t = self.queues.dequeue(queue)
                        segs.append(meta)
                        if meta.eop:
                            break
                    self._backlog -= 1
                    self.tx_bram.try_put(segs[0].pid)
                    worked = True
            if not worked:
                yield cyc(8)  # idle poll of the MAC status registers

    def _next_nonempty_queue(self) -> Optional[int]:
        for q in range(self.num_queues):
            if not self.queues.is_empty(q):
                return q
        return None

    def _tx_mac(self, rate_gbps: float):
        """MAC transmit: drain the TX BRAM at line rate."""
        while True:
            _pid = yield from self.tx_bram.get()
            yield packet_service_time_ps(64, rate_gbps)
            self.forwarded += 1
            self._last_activity_ps = self.sim.now

    # ---------------------------------------------------------------- run

    def run(self, stream: Iterator[TimedPacket], offered_gbps: float,
            num_packets: int = 2000) -> NpuRunResult:
        """Feed ``num_packets`` from ``stream`` through the platform."""
        rx = self.sim.spawn(self._rx_mac(stream, num_packets), name="rx")
        self.sim.spawn(self._cpu(), name="cpu")
        self.sim.spawn(self._tx_mac(max(offered_gbps, 1.0)), name="tx")

        def watchdog():
            yield rx
            # give the pipeline time to drain
            while self._backlog or len(self.rx_bram) or len(self.tx_bram):
                yield 50_000_000  # 50 us

        w = self.sim.spawn(watchdog(), name="drain")
        limit = self.sim.now + 60 * SEC
        while not w.done and self.sim.now < limit:
            self.sim.run(until_ps=self.sim.now + SEC // 10, max_events=2_000_000)
        return NpuRunResult(
            offered_gbps=offered_gbps,
            strategy=self.strategy,
            received=self.received,
            forwarded=self.forwarded,
            dropped=self.dropped,
            duration_ps=self._last_activity_ps,
            engine=self.engine,
        )


def figure1_diagram() -> str:
    """ASCII rendering of Figure 1 (the reference NPU architecture)."""
    return """\
                 Figure 1: NPU core architecture (Virtex-II Pro)

      +-----------+          +----------------------+
      |  PowerPC  |--OCM-----| Instr/Data Mem 16KB  |
      |   405     |          +----------------------+
      +-----+-----+
            |
  ==========+=============== PLB 64-bit @ 100 MHz ==================
     |              |                |                   |
 +---+----+   +-----+------+   +-----+------+   +--------+-------+
 | PLB    |   | PLB DDR    |   | PLB EMC    |   | PLB-WB Bridge  |
 | BRAM   |   | Controller |   | (ZBT ctrl) |   +--------+-------+
 | Ctrl   |   +-----+------+   +-----+------+            | WB (control)
 +---+----+         |                |             +-----+------+
     |         +----+-----+    +-----+-----+       | MAC (MII)  |
 +---+-----+   |   DDR    |    | ZBT SRAM  |       +-----+------+
 | DP-BRAM |   |  SDRAM   |    | (pointers)|             | WB (data)
 | 4KB     |===| (packets)|    +-----------+       +-----+------+
 +---------+   +----------+                        |  DP-BRAM   |
                                                   +------------+
"""
