"""Timing parameters of the Figure 1 reference NPU.

The numbers the paper states are used verbatim:

* 100 MHz PowerPC and 64-bit PLB (Section 5.1),
* a PLB *line transaction* moves a 64-byte segment as "9 cycles for 9
  double words and 3 cycle latency" = 12 cycles (Section 5.3),
* "each single PLB write transaction needs 4 cycles, thus we need at
  least 16 cycles to initiate the DMA transfer [4 registers] and at
  least 34 cycles to copy the data" (Section 5.3).

The remaining two constants -- single-beat read and write costs through
the PLB to the EMC/BRAM slaves -- are calibrated once so the baseline
column of Table 3 matches (8 and 6 cycles); every other number in the
table then *follows* from the access traces.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Double words (64-bit beats) in one 64-byte segment.
SEGMENT_BEATS = 8


@dataclass(frozen=True)
class PlbTiming:
    """Processor Local Bus transaction costs, in bus cycles."""

    single_read_cycles: int = 8
    single_write_cycles: int = 6
    line_beats: int = 9          # 9 double words per the paper
    line_latency_cycles: int = 3
    clock_mhz: int = 100

    def __post_init__(self) -> None:
        if min(self.single_read_cycles, self.single_write_cycles,
               self.line_beats, self.line_latency_cycles) < 1:
            raise ValueError("PLB timing values must be >= 1 cycle")

    @property
    def line_transaction_cycles(self) -> int:
        """One cache-line burst over the PLB: 9 + 3 = 12 cycles."""
        return self.line_beats + self.line_latency_cycles


@dataclass(frozen=True)
class DmaTiming:
    """The Section 5.3 DMA engine ([13]/[14] in the paper)."""

    setup_registers: int = 4        # control, source, destination, length
    register_write_cycles: int = 4  # "each single PLB write ... 4 cycles"
    transfer_cycles: int = 34       # "at least 34 cycles to copy the data"

    def __post_init__(self) -> None:
        if self.setup_registers < 1 or self.register_write_cycles < 1:
            raise ValueError("DMA setup parameters must be >= 1")
        if self.transfer_cycles < 1:
            raise ValueError("transfer_cycles must be >= 1")

    @property
    def setup_cycles(self) -> int:
        """CPU cycles to program one transfer: 4 x 4 = 16."""
        return self.setup_registers * self.register_write_cycles


@dataclass(frozen=True)
class NpuParams:
    """Whole-platform parameter set."""

    plb: PlbTiming = PlbTiming()
    dma: DmaTiming = DmaTiming()
    cpu_clock_mhz: int = 100

    # Documented instruction-count calibration (DESIGN.md): list-handling
    # instructions executed by the handcrafted queue-manager code around
    # its pointer accesses.  Fitted once against the baseline column of
    # Table 3; reused unchanged for the line/DMA variants.
    instr_free_pop: int = 12
    instr_link_first: int = 20
    instr_link_rest: int = 28
    instr_unlink: int = 30
    instr_free_push: int = 16
    instr_copy_per_beat: int = 3
