"""The probe protocol and the declarative telemetry knob.

A :class:`Probe` observes the two event streams every MMS execution
path emits at its command boundaries:

* ``on_command`` -- one call per DQM dispatch, at the pop instant, with
  the functional result and the post-dispatch occupancy.  The kernel
  path emits it from the probed ``DataQueueManager`` dispatch; the
  stream engine from the probed dispatch of its inlined loop.
* ``on_record`` -- one call per latency-record delivery (the instant
  the data transfer completes, or end of execution for pointer-only
  commands), with the full cycle decomposition.  The kernel path emits
  it from the probed finalize process; the stream engine replays its
  record stream in delivery order after the run.

The two channels carry no ordering contract *between* each other (the
stream engine delivers all ``on_command`` calls before replaying the
records), so probes must keep their per-channel state independent.
Within a channel, call order and every argument are byte-identical
across engines -- that is the identity contract ``tests/engines``
asserts, and what makes telemetry an engine-agnostic layer.

Probes are *structurally absent* when disabled: the execution paths
swap in their probed dispatch/finalize variants only when a probe is
installed at construction time, so the probes-off hot path contains no
telemetry call sites (and no per-command branches) at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.commands import CommandType


@dataclass(frozen=True)
class TelemetrySpec:
    """Declarative telemetry configuration (scenario-spec payload).

    Carried by :class:`~repro.scenarios.ScenarioSpec.telemetry`; its
    presence enables telemetry for a run, its fields tune the standard
    :class:`~repro.telemetry.MmsTelemetry` probe.
    """

    #: Occupancy time-series stride: one sample every N dispatched
    #: commands (peaks are still tracked at every command).
    sample_every: int = 32
    #: Percentile summaries reported per histogram.
    percentiles: Tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {self.sample_every}")
        if not self.percentiles:
            raise ValueError("percentiles must be non-empty")
        for p in self.percentiles:
            if not 0.0 < p <= 100.0:
                raise ValueError(
                    f"percentiles must be in (0, 100], got {p}")


class Probe:
    """Observation protocol (no-op base class).

    Subclass and override the hooks you need;
    :class:`~repro.telemetry.MmsTelemetry` is the standard
    implementation.  Probes are passive: they must not mutate any
    simulation state (the engines share functional state with the
    probe's arguments).
    """

    #: Stage-transition opt-in: the execution paths emit ``on_stages``
    #: (and pay its bookkeeping) only when this is True, so
    #: telemetry-only probes keep the exact PR-5 probed hot path.
    wants_stages: bool = False

    def on_command(self, time_ps: int, op: CommandType, flow: int,
                   result: object, queue_depth: int,
                   total_segments: int) -> None:
        """One DQM dispatch: ``op`` on ``flow`` at ``time_ps`` returned
        ``result``; ``queue_depth`` is the flow's post-dispatch segment
        occupancy and ``total_segments`` the aggregate buffer
        occupancy."""

    def on_record(self, time_ps: int, op: CommandType, fifo_cycles: float,
                  execution_cycles: float, data_cycles: float,
                  end_to_end_cycles: float) -> None:
        """One latency-record delivery at ``time_ps`` (the Table 5
        decomposition plus the true submit-to-completion latency), in
        record-delivery order."""

    def on_stages(self, time_ps: int, seq: int, op: CommandType, flow: int,
                  submit_ps: int, start_ps: int, end_ps: int,
                  data_submit_ps: int, data_done_ps: int) -> None:
        """One command's lifecycle stage bounds, delivered at its
        latency-record instant (``time_ps``), in record-delivery order.

        ``seq`` is the command's dispatch index -- the DQM is serial, so
        dispatch order is a total order shared by both engines even
        though records complete out of it.  ``submit_ps`` is -1 for
        commands never staged through a port FIFO;
        ``data_submit_ps``/``data_done_ps`` are -1 for pointer-only
        commands.  Emitted only when :attr:`wants_stages` is True.
        """


class ProbeChain(Probe):
    """Fan a single probe slot out to several independent probes.

    The execution paths take exactly one probe at construction; chaining
    keeps that contract while letting a run carry both the telemetry
    collector and the span tracer.  Each hook forwards to every child in
    chain order; :attr:`wants_stages` is the OR of the children's, so a
    telemetry-only chain still skips stage bookkeeping.
    """

    def __init__(self, probes: Sequence[Probe]) -> None:
        if not probes:
            raise ValueError("ProbeChain requires at least one probe")
        self.probes: Tuple[Probe, ...] = tuple(probes)
        self.wants_stages = any(
            getattr(p, "wants_stages", False) for p in self.probes)

    def on_command(self, time_ps: int, op: CommandType, flow: int,
                   result: object, queue_depth: int,
                   total_segments: int) -> None:
        for probe in self.probes:
            probe.on_command(time_ps, op, flow, result, queue_depth,
                             total_segments)

    def on_record(self, time_ps: int, op: CommandType, fifo_cycles: float,
                  execution_cycles: float, data_cycles: float,
                  end_to_end_cycles: float) -> None:
        for probe in self.probes:
            probe.on_record(time_ps, op, fifo_cycles, execution_cycles,
                            data_cycles, end_to_end_cycles)

    def on_stages(self, time_ps: int, seq: int, op: CommandType, flow: int,
                  submit_ps: int, start_ps: int, end_ps: int,
                  data_submit_ps: int, data_done_ps: int) -> None:
        for probe in self.probes:
            probe.on_stages(time_ps, seq, op, flow, submit_ps, start_ps,
                            end_ps, data_submit_ps, data_done_ps)
