"""Streaming log2-bucket histograms.

The telemetry layer must answer tail questions (p99, p99.9, max) over
millions of latency samples without retaining them.  A
:class:`Log2Histogram` keeps *exact* counts in logarithmic buckets --
bucket ``b`` covers ``[2^(b-1), 2^b)`` cycles (bucket 0 covers
``[0, 1)``) -- plus the exact running sum, minimum and maximum.
Percentiles are estimated deterministically by linear interpolation
inside the covering bucket, so two runs that feed identical sample
streams (the engine-identity contract) report byte-identical summaries.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple


def bucket_of(value: float) -> int:
    """The log2 bucket covering ``value`` (negatives clamp to 0)."""
    if value < 1.0:
        return 0
    # frexp: value = m * 2**e with m in [0.5, 1)  =>  value in [2^(e-1), 2^e)
    return math.frexp(value)[1]


def bucket_bounds(bucket: int) -> Tuple[float, float]:
    """``[lower, upper)`` edges of ``bucket`` in sample units."""
    if bucket < 0:
        raise ValueError(f"bucket must be >= 0, got {bucket}")
    lower = 0.0 if bucket == 0 else 2.0 ** (bucket - 1)
    return lower, 2.0 ** bucket


class Log2Histogram:
    """Exact-count log2 histogram with deterministic quantile summaries.

    ``add`` is O(1) and allocation-free after a bucket exists; the
    bucket table is sparse (a dict), so the footprint is bounded by the
    dynamic range of the data (~60 buckets for picosecond spans), not
    the sample count.
    """

    __slots__ = ("buckets", "count", "total", "min_value", "max_value")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    # ------------------------------------------------------------ feeding

    def add(self, value: float) -> None:
        b = bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    # ------------------------------------------------------------ queries

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self.min_value if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self.max_value if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Deterministic percentile estimate.

        The covering bucket is found by cumulative count; the value is
        linearly interpolated inside its ``[lower, upper)`` range and
        clamped to the exact observed ``[min, max]`` (so p=100 is the
        exact maximum and low percentiles never undershoot the
        minimum).
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        cumulative = 0
        estimate = self.max_value
        for b in sorted(self.buckets):
            n = self.buckets[b]
            cumulative += n
            if cumulative >= target:
                lower, upper = bucket_bounds(b)
                frac = (target - (cumulative - n)) / n
                estimate = lower + frac * (upper - lower)
                break
        if estimate < self.min_value:
            return self.min_value
        if estimate > self.max_value:
            return self.max_value
        return estimate

    def summary(self, percentiles: Sequence[float]) -> Dict[str, float]:
        """``{"p50": ..., "p99": ..., "max": ...}`` summary dict (keys
        ordered by the requested percentiles; ``max`` is exact)."""
        out = {f"p{_fmt_p(p)}": self.percentile(p) for p in percentiles}
        out["max"] = self.maximum
        return out

    # ------------------------------------------------------ serialization

    def to_dict(self, percentiles: Sequence[float] = ()) -> Dict[str, object]:
        d: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {str(b): self.buckets[b]
                        for b in sorted(self.buckets)},
        }
        if percentiles:
            d["percentiles"] = self.summary(percentiles)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "Log2Histogram":
        """Rebuild the streaming state from :meth:`to_dict` output.

        Exact for counts/buckets/sum/min/max (everything the summaries
        are computed from), so ``h.to_dict(ps) ==
        Log2Histogram.from_dict(h.to_dict(ps)).to_dict(ps)``.
        """
        h = cls()
        h.count = int(d["count"])            # type: ignore[arg-type]
        h.total = float(d["sum"])            # type: ignore[arg-type]
        if h.count:
            h.min_value = float(d["min"])    # type: ignore[arg-type]
            h.max_value = float(d["max"])    # type: ignore[arg-type]
        h.buckets = {int(b): int(n)
                     for b, n in d["buckets"].items()}  # type: ignore[union-attr]
        if sum(h.buckets.values()) != h.count:
            raise ValueError("histogram bucket counts disagree with count")
        return h


def _fmt_p(p: float) -> str:
    """Percentile label fragment: 99 -> "99", 99.9 -> "99.9"."""
    return f"{p:g}"
