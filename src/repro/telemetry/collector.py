"""The standard MMS probe and its typed, JSON-round-tripping snapshot.

:class:`MmsTelemetry` consumes the two probe channels
(:class:`~repro.telemetry.probe.Probe`) and aggregates:

* **latency histograms** -- one :class:`Log2Histogram` per
  ``<class>.<component>`` key, where the class is ``enqueue`` /
  ``dequeue`` / ``other`` (by command type) plus the ``all`` aggregate,
  and the components are ``e2e`` (true submit-to-completion cycles) and
  ``fifo`` (FIFO wait cycles) -- the distributions behind the paper's
  Table 5 means;
* **occupancy series** -- the aggregate buffer occupancy sampled every
  ``sample_every`` dispatched commands (peaks tracked at *every*
  command), plus per-queue occupancy peaks;
* **throughput/drop counters** -- per-opcode dispatch counts and
  policy-drop counts keyed by the
  :class:`~repro.policies.base.DropRecord` reason the policy attached
  to the rejected arrival.

Everything is a deterministic fold over the probe streams, so the
snapshot of a ``fast``-engine run is byte-identical to the
``reference`` run's (the engine-identity contract of
``tests/engines``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.commands import CommandType
from repro.policies.base import DroppedSegment
from repro.telemetry.histogram import Log2Histogram
from repro.telemetry.probe import Probe, TelemetrySpec

#: Schema version of the serialized telemetry payload.
TELEMETRY_SCHEMA = 1

#: Histogram key classes by command type (everything else: "other").
_CLASS_OF = {
    CommandType.ENQUEUE: "enqueue",
    CommandType.DEQUEUE: "dequeue",
}

#: Latency components recorded per class.
_COMPONENTS = ("e2e", "fifo")


class MmsTelemetry(Probe):
    """The standard telemetry probe (see module docstring)."""

    def __init__(self, spec: TelemetrySpec = TelemetrySpec()) -> None:
        self.spec = spec
        self.histograms: Dict[str, Log2Histogram] = {}
        # per-opcode shortcut to the four histograms a record feeds
        # (built on first sight of each opcode; keeps the per-record
        # path free of string formatting and key hashing)
        self._routes: Dict[CommandType, tuple] = {}
        # counters channel
        self.commands = 0
        self.by_op: Dict[str, int] = {}
        self.dropped_commands = 0
        self.drops_by_reason: Dict[str, int] = {}
        # occupancy channel
        self.series: List[Tuple[int, int]] = []
        self.peak_total = 0
        self.peak_time_ps = -1
        self.final_total = 0
        self.queue_peaks: Dict[int, int] = {}

    # ------------------------------------------------------ probe channel

    def on_command(self, time_ps: int, op: CommandType, flow: int,
                   result: object, queue_depth: int,
                   total_segments: int) -> None:
        n = self.commands
        self.commands = n + 1
        key = op.value
        self.by_op[key] = self.by_op.get(key, 0) + 1
        if isinstance(result, DroppedSegment):
            self.dropped_commands += 1
            reason = result.reason
            self.drops_by_reason[reason] = \
                self.drops_by_reason.get(reason, 0) + 1
        if n % self.spec.sample_every == 0:
            self.series.append((time_ps, total_segments))
        if total_segments > self.peak_total:
            self.peak_total = total_segments
            self.peak_time_ps = time_ps
        self.final_total = total_segments
        if queue_depth > self.queue_peaks.get(flow, -1):
            self.queue_peaks[flow] = queue_depth

    def on_record(self, time_ps: int, op: CommandType, fifo_cycles: float,
                  execution_cycles: float, data_cycles: float,
                  end_to_end_cycles: float) -> None:
        route = self._routes.get(op)
        if route is None:
            route = self._routes[op] = self._make_route(op)
        cls_e2e, cls_fifo, all_e2e, all_fifo = route
        cls_e2e.add(end_to_end_cycles)
        all_e2e.add(end_to_end_cycles)
        cls_fifo.add(fifo_cycles)
        all_fifo.add(fifo_cycles)

    def _make_route(self, op: CommandType) -> tuple:
        cls = _CLASS_OF.get(op, "other")
        hists = self.histograms
        return tuple(
            hists.setdefault(f"{label}.{component}", Log2Histogram())
            for label in (cls, "all") for component in _COMPONENTS)

    # ------------------------------------------------- snapshot/restore

    def state_dict(self) -> Dict[str, Any]:
        """Exact JSON-serializable snapshot of the fold state.

        Unlike :meth:`snapshot` (the *published* summary, which rounds
        nothing but fixes the percentile set), this captures everything
        needed to *continue* the fold mid-run: restoring it into a
        fresh probe of the same :class:`TelemetrySpec` and feeding the
        remaining probe stream yields a byte-identical final snapshot
        (the :mod:`repro.checkpoint` resume-identity contract).
        """
        return {
            "sample_every": self.spec.sample_every,
            "commands": self.commands,
            "by_op": dict(self.by_op),
            "dropped_commands": self.dropped_commands,
            "drops_by_reason": dict(self.drops_by_reason),
            "series": [[t, v] for t, v in self.series],
            "peak_total": self.peak_total,
            "peak_time_ps": self.peak_time_ps,
            "final_total": self.final_total,
            "queue_peaks": {str(q): v for q, v in self.queue_peaks.items()},
            "histograms": {k: self.histograms[k].to_dict()
                           for k in sorted(self.histograms)},
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output (see its contract)."""
        if state["sample_every"] != self.spec.sample_every:
            raise ValueError(
                f"telemetry state was folded with sample_every="
                f"{state['sample_every']}, this probe uses "
                f"{self.spec.sample_every}")
        self.commands = state["commands"]
        self.by_op = dict(state["by_op"])
        self.dropped_commands = state["dropped_commands"]
        self.drops_by_reason = dict(state["drops_by_reason"])
        self.series = [(t, v) for t, v in state["series"]]
        self.peak_total = state["peak_total"]
        self.peak_time_ps = state["peak_time_ps"]
        self.final_total = state["final_total"]
        self.queue_peaks = {int(q): v
                            for q, v in state["queue_peaks"].items()}
        self.histograms = {k: Log2Histogram.from_dict(h)
                           for k, h in state["histograms"].items()}
        # the route cache holds direct references into the replaced
        # histogram dict; drop it so _make_route reconnects lazily
        self._routes = {}

    # ----------------------------------------------------------- snapshot

    def snapshot(self) -> "TelemetrySnapshot":
        return TelemetrySnapshot(
            schema=TELEMETRY_SCHEMA,
            counters={
                "commands": self.commands,
                "by_op": {k: self.by_op[k] for k in sorted(self.by_op)},
                "dropped_commands": self.dropped_commands,
                "drops_by_reason": {k: self.drops_by_reason[k]
                                    for k in sorted(self.drops_by_reason)},
            },
            histograms={k: self.histograms[k].to_dict(self.spec.percentiles)
                        for k in sorted(self.histograms)},
            occupancy={
                "sample_every": self.spec.sample_every,
                "series": [[t, v] for t, v in self.series],
                "peak_total": self.peak_total,
                "peak_time_ps": self.peak_time_ps,
                "final_total": self.final_total,
                "queue_peaks": {str(q): self.queue_peaks[q]
                                for q in sorted(self.queue_peaks)},
            },
        )


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Typed, immutable view of one telemetry fold.

    ``to_dict`` / ``from_dict`` round-trip exactly (floats included --
    JSON preserves Python float reprs), so a snapshot can travel inside
    :attr:`~repro.scenarios.RunResult.metrics` and be compared
    byte-for-byte across engines.
    """

    schema: int
    counters: Dict[str, Any]
    histograms: Dict[str, Any]
    occupancy: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "counters": self.counters,
            "histograms": self.histograms,
            "occupancy": self.occupancy,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TelemetrySnapshot":
        problems = validate_telemetry_dict(d)
        if problems:
            raise ValueError("invalid telemetry payload: "
                             + "; ".join(problems))
        return cls(schema=d["schema"],
                   counters=dict(d["counters"]),
                   histograms={k: dict(v)
                               for k, v in d["histograms"].items()},
                   occupancy=dict(d["occupancy"]))

    # -------------------------------------------------------- convenience

    def percentile(self, histogram: str, p: float) -> float:
        """Recompute a percentile from the serialized buckets (matches
        the stored summary for the spec's percentiles)."""
        return Log2Histogram.from_dict(
            self.histograms[histogram]).percentile(p)


def validate_telemetry_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of one serialized telemetry payload (list of
    human-readable problems; empty = valid).  Dependency-free, like
    :func:`repro.scenarios.validate_result_dict`."""
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["telemetry payload is not an object"]
    if d.get("schema") != TELEMETRY_SCHEMA:
        problems.append(f"schema {d.get('schema')!r} != {TELEMETRY_SCHEMA}")
    for key in ("counters", "histograms", "occupancy"):
        if not isinstance(d.get(key), Mapping):
            problems.append(f"{key!r} missing or not an object")
    if isinstance(d.get("histograms"), Mapping):
        for name, h in d["histograms"].items():
            if not isinstance(h, Mapping):
                problems.append(f"histograms[{name!r}] malformed")
                continue
            for key, types in (("count", int), ("sum", (int, float)),
                               ("min", (int, float)), ("max", (int, float)),
                               ("buckets", Mapping)):
                if not isinstance(h.get(key), types):
                    problems.append(f"histograms[{name!r}].{key} malformed")
            if isinstance(h.get("buckets"), Mapping):
                total = 0
                for b, n in h["buckets"].items():
                    if not str(b).isdigit() or not isinstance(n, int):
                        problems.append(
                            f"histograms[{name!r}].buckets[{b!r}] malformed")
                    else:
                        total += n
                if isinstance(h.get("count"), int) and total != h["count"]:
                    problems.append(
                        f"histograms[{name!r}] bucket counts != count")
    occ = d.get("occupancy")
    if isinstance(occ, Mapping):
        for key, types in (("sample_every", int), ("series", list),
                           ("peak_total", int), ("peak_time_ps", int),
                           ("final_total", int), ("queue_peaks", Mapping)):
            if not isinstance(occ.get(key), types):
                problems.append(f"occupancy.{key} malformed")
        if isinstance(occ.get("series"), list):
            for i, pair in enumerate(occ["series"]):
                if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                        or not all(isinstance(x, int) for x in pair)):
                    problems.append(f"occupancy.series[{i}] malformed")
                    break
    return problems
