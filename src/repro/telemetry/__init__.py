"""``repro.telemetry``: engine-agnostic streaming observability.

The paper's evaluation reports aggregate access counts and *mean*
command latencies (Tables 4-5), but queue-management behavior under
load is a question about *distributions*: tail latency, occupancy
dynamics, loss provenance.  This package adds a streaming telemetry
layer that answers those questions without storing per-command samples:

* :class:`Probe` -- the observation protocol.  Both execution paths
  (the DES kernels driving :class:`~repro.core.dqm.DataQueueManager`
  and the DES-free :class:`~repro.engines.StreamMms` loop) emit the
  same two event streams at the same simulated instants: ``on_command``
  at every DQM dispatch boundary and ``on_record`` at every
  latency-record delivery.  Because the dispatch/record streams are
  already proven byte-identical across engines (``tests/engines``),
  any deterministic probe observes byte-identical telemetry from
  either engine.
* :class:`Log2Histogram` -- exact streaming counts in log2 buckets,
  with deterministic p50/p90/p99/p99.9/max summaries and no sample
  retention.
* :class:`MmsTelemetry` -- the standard probe: per-class
  (enqueue/dequeue) latency histograms, per-queue/aggregate occupancy
  time-series samplers, and throughput/drop counters with
  :class:`~repro.policies.base.DropRecord` reason provenance.
* :class:`TelemetrySpec` -- the declarative knob carried by
  :class:`~repro.scenarios.ScenarioSpec` and the CLI's ``--telemetry``.

The probes-off contract is *structural absence*, not inertness: when no
probe is installed, the execution hot paths contain no telemetry call
sites at all (the probed dispatch/finalize variants are swapped in only
at construction time), so the fast-path floors are unaffected.
"""

from repro.telemetry.histogram import Log2Histogram
from repro.telemetry.probe import Probe, ProbeChain, TelemetrySpec
from repro.telemetry.collector import (
    TELEMETRY_SCHEMA,
    MmsTelemetry,
    TelemetrySnapshot,
    validate_telemetry_dict,
)

__all__ = [
    "Probe",
    "ProbeChain",
    "TelemetrySpec",
    "Log2Histogram",
    "MmsTelemetry",
    "TelemetrySnapshot",
    "TELEMETRY_SCHEMA",
    "validate_telemetry_dict",
]
