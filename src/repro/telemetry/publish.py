"""Incremental telemetry frame publication for in-flight runs.

The serving daemon (:mod:`repro.serve`) streams observability *while a
run executes*: its worker processes activate a :class:`FramePublisher`
before running a scenario, and the scenario's probe chain
(:func:`repro.scenarios.catalog._probes`) picks the active publisher up
as one extra :class:`PublishingProbe` riding behind the telemetry
collector.  Every ``publish_every`` dispatched commands the probe
appends one *frame* -- a progress snapshot of the live
:class:`~repro.telemetry.MmsTelemetry` fold -- as a single JSON line to
the run's ``frames.jsonl``; when the run finishes, the worker appends a
terminal ``done`` frame carrying the final telemetry payload
byte-identical to ``RunResult.metrics["telemetry"]``.

Design constraints, mirroring :mod:`repro.monitor.events`:

* **line-atomic appends** -- each frame is one ``os.write`` on an
  ``O_APPEND`` descriptor, so a reader tailing the file never sees a
  torn frame beyond the final line of a crashed worker
  (:func:`read_frames` tolerates exactly that, and the stream endpoint
  only forwards complete lines);
* **replay-deterministic ordering** -- frames are keyed by the
  dispatched-command count, never a clock: re-running the same spec
  publishes the identical frame sequence (per engine -- the stream
  engine replays latency records after its command loop, so *mid-run*
  histogram content is engine-specific; the terminal frame is
  byte-identical across engines, like the telemetry payload itself);
* **structurally absent when disabled** -- nothing publishes unless a
  worker explicitly activated a publisher first: plain runs build the
  exact probe chain they always did, and no publisher means no frame
  objects, no snapshots, no writes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional

from repro.core.commands import CommandType
from repro.telemetry.collector import MmsTelemetry
from repro.telemetry.probe import Probe

#: Schema version of one serialized frame line.
FRAME_SCHEMA = 1

#: Frame types: periodic progress snapshots and the terminal frame.
FRAME_TYPES = ("progress", "done")

#: Canonical frames filename inside a serve run directory.
FRAMES_FILENAME = "frames.jsonl"

#: Default publication stride (dispatched commands per frame).
DEFAULT_PUBLISH_EVERY = 256


class FramePublisher:
    """Append-only JSONL frame writer for one run.

    The file is truncated at construction: a retried worker starts its
    frame sequence over rather than appending a second, interleaved
    sequence after the first attempt's torn tail.
    """

    def __init__(self, path: str,
                 every: int = DEFAULT_PUBLISH_EVERY) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = os.fspath(path)
        self.every = every
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fd: Optional[int] = os.open(
            self.path,
            os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND, 0o644)
        self.frames = 0

    def publish(self, frame: Dict[str, Any]) -> None:
        """Stamp and append one frame as a single atomic line."""
        if self._fd is None:
            raise ValueError(f"FramePublisher({self.path!r}) is closed")
        doc = {"schema": FRAME_SCHEMA, "frame": self.frames}
        doc.update(frame)
        line = json.dumps(doc, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        self.frames += 1

    def publish_done(self, scenario: str, commands: Optional[int],
                     telemetry: Optional[Mapping[str, Any]]) -> None:
        """The terminal frame: final telemetry (byte-identical to the
        run result's ``metrics["telemetry"]``, or None for runs without
        telemetry) plus the command count."""
        self.publish({"type": "done", "scenario": scenario,
                      "commands": commands,
                      "telemetry": dict(telemetry)
                      if telemetry is not None else None})

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FramePublisher":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class PublishingProbe(Probe):
    """A probe that periodically publishes the live telemetry fold.

    Chained *after* the telemetry collector (chain order is delivery
    order), so each ``on_command`` observes the collector's post-update
    state.  Frames are keyed by the dispatched-command count -- no
    clocks, so the frame sequence is replay-deterministic.
    """

    def __init__(self, publisher: FramePublisher,
                 telemetry: MmsTelemetry) -> None:
        self.publisher = publisher
        self.telemetry = telemetry
        self._commands = 0

    def on_command(self, time_ps: int, op: CommandType, flow: int,
                   result: object, queue_depth: int,
                   total_segments: int) -> None:
        n = self._commands + 1
        self._commands = n
        if n % self.publisher.every == 0:
            self.publisher.publish({
                "type": "progress",
                "commands": n,
                "time_ps": time_ps,
                "telemetry": self.telemetry.snapshot().to_dict(),
            })


# ------------------------------------------------- process-global slot
#
# The serving worker owns the process (process-per-task pool), so one
# module-global publisher slot is race-free and keeps the scenario
# executors free of any serve-layer dependency: the catalog only asks
# "is a publisher active?" -- a plain attribute read when off.

_ACTIVE: Optional[FramePublisher] = None


def activate(publisher: FramePublisher) -> None:
    """Install ``publisher`` as this process's active frame publisher."""
    global _ACTIVE
    _ACTIVE = publisher


def deactivate() -> None:
    """Clear the active publisher (the worker's ``finally`` duty)."""
    global _ACTIVE
    _ACTIVE = None


def active_probe(telemetry: Optional[MmsTelemetry]
                 ) -> Optional[PublishingProbe]:
    """A :class:`PublishingProbe` bound to the active publisher, or
    None (no publisher active, or the run carries no telemetry
    collector to snapshot)."""
    if _ACTIVE is None or telemetry is None:
        return None
    return PublishingProbe(_ACTIVE, telemetry)


def read_frames(path: str, strict: bool = False) -> List[Dict[str, Any]]:
    """Parse a ``frames.jsonl`` file (complete lines only).

    A torn *final* line (a worker died mid-append) is silently dropped;
    any other malformed line raises -- or every problem raises
    immediately under ``strict``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    frames: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        try:
            doc = json.loads(line)
            problems = validate_frame_dict(doc)
            if problems:
                raise ValueError("; ".join(problems))
        except ValueError:
            if not strict and i == len(lines) - 1:
                break
            raise ValueError(
                f"{path}:{i + 1}: invalid frame line") from None
        frames.append(doc)
    return frames


def validate_frame_dict(d: Any) -> List[str]:
    """Schema check of one serialized frame (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["frame is not an object"]
    if d.get("schema") != FRAME_SCHEMA:
        problems.append(f"schema {d.get('schema')!r} != {FRAME_SCHEMA}")
    if not isinstance(d.get("frame"), int) or isinstance(d.get("frame"),
                                                         bool):
        problems.append("'frame' missing or not an integer")
    if d.get("type") not in FRAME_TYPES:
        problems.append(f"type {d.get('type')!r} invalid "
                        f"(choose from {FRAME_TYPES})")
    if d.get("type") == "progress":
        if not isinstance(d.get("commands"), int):
            problems.append("'commands' missing or not an integer")
        if not isinstance(d.get("telemetry"), Mapping):
            problems.append("'telemetry' missing or not an object")
    if d.get("type") == "done":
        if not isinstance(d.get("scenario"), str):
            problems.append("'scenario' missing or not a string")
        tele = d.get("telemetry")
        if tele is not None and not isinstance(tele, Mapping):
            problems.append("'telemetry' not an object or null")
    return problems
