"""TailDrop: drop the arriving segment when the buffer (or queue) is full.

The baseline shared-memory policy: arrivals are rejected exactly when
the free list would be empty, and optionally when the arriving queue
exceeds a static per-queue cap (complete partitioning of the buffer when
``per_queue_limit * num_queues == capacity``).  Everything already
queued is left untouched -- no push-out.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.policies.base import ACCEPT, BufferPolicy, Decision


class TailDrop(BufferPolicy):
    """Shared-buffer tail drop with an optional static per-queue cap."""

    name = "taildrop"

    def __init__(self, capacity: int, per_queue_limit: Optional[int] = None,
                 keep_records: bool = False) -> None:
        super().__init__(capacity, keep_records=keep_records)
        if per_queue_limit is not None and per_queue_limit < 1:
            raise ValueError("per_queue_limit must be >= 1 when set")
        self.per_queue_limit = per_queue_limit

    def decide(self, queue: int, nbytes: int, exclude: FrozenSet[int],
               blocked: bool) -> Decision:
        if blocked:
            return Decision("drop", reason="descriptors exhausted")
        if self.total_segments >= self.capacity:
            return Decision("drop", reason="buffer full")
        if (self.per_queue_limit is not None
                and self.queue_length(queue) >= self.per_queue_limit):
            return Decision("drop", reason="queue limit")
        return ACCEPT

    def admit_fast(self, queue: int, nbytes: int) -> bool:
        if self.total_segments >= self.capacity:
            return False
        limit = self.per_queue_limit
        return limit is None or self.queue_segments.get(queue, 0) < limit
