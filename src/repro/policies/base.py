"""Buffer-management policy protocol and shared bookkeeping.

The paper's DQM/MMS exists to manage thousands of per-flow queues over
*shared* buffer memory, but says nothing about what happens when that
memory fills: the reproduction used to raise a bare
:class:`~repro.queueing.freelist.OutOfBuffersError` and die.  This
package turns enqueue-on-full into a *policy decision*, reproducing the
canonical shared-memory admission policies from the related work
(PAPERS.md): TailDrop, RED, Dynamic Threshold (Choudhury--Hahne) and
Longest Queue Drop (Matsakis: 1.5-competitive).

Division of labor:

* a :class:`BufferPolicy` owns the *decision* -- it tracks per-queue and
  aggregate occupancy (in segments and bytes) and answers
  :meth:`BufferPolicy.admit` with accept / drop / push-out(victim),
* the queue manager owns the *mechanism* -- it performs the enqueue, the
  tail push-out, and reports every occupancy change back through the
  ``note_*`` hooks,
* every drop or push-out is recorded as a typed :class:`DropRecord` and
  aggregated into :class:`PolicyStats` (counters + byte totals), so
  overload experiments report loss behavior, not stack traces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

#: Registered policy family names (the ``PolicySpec.name`` vocabulary).
POLICIES = ("taildrop", "red", "dynamic-threshold", "lqd")

#: Decision actions a policy may return.
ACTIONS = ("accept", "drop", "pushout")


@dataclass(frozen=True)
class PolicySpec:
    """Declarative buffer-policy selection (carried by scenario specs,
    app configs and :class:`~repro.core.mms.MmsConfig`).

    Only the parameters of the named family are consulted; the rest keep
    their neutral defaults, mirroring :class:`TrafficSpec`.
    """

    #: Policy family: one of :data:`POLICIES`.
    name: str = "taildrop"
    #: TailDrop: optional static per-queue segment cap (None = shared
    #: buffer only).
    per_queue_limit: Optional[int] = None
    #: Dynamic Threshold: the Choudhury--Hahne alpha (threshold =
    #: alpha * free buffer space).
    alpha: float = 1.0
    #: RED thresholds as fractions of capacity, max drop probability at
    #: max_th, and the EWMA weight of the average-occupancy filter.
    red_min_frac: float = 0.25
    red_max_frac: float = 0.85
    red_max_p: float = 0.1
    red_weight: float = 0.2

    def __post_init__(self) -> None:
        if self.name not in POLICIES:
            raise ValueError(
                f"unknown policy {self.name!r} (choose from {POLICIES})")
        if self.per_queue_limit is not None and self.per_queue_limit < 1:
            raise ValueError("per_queue_limit must be >= 1 when set")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if not 0.0 <= self.red_min_frac < self.red_max_frac <= 1.0:
            raise ValueError(
                "need 0 <= red_min_frac < red_max_frac <= 1, got "
                f"{self.red_min_frac}/{self.red_max_frac}")
        if not 0.0 < self.red_max_p <= 1.0:
            raise ValueError(f"red_max_p must be in (0, 1], got {self.red_max_p}")
        if not 0.0 < self.red_weight <= 1.0:
            raise ValueError(
                f"red_weight must be in (0, 1], got {self.red_weight}")


@dataclass(frozen=True)
class Decision:
    """One admission verdict.

    ``accept`` admits the arriving segment; ``drop`` rejects it;
    ``pushout`` asks the manager to free the *tail* buffer of ``victim``
    and consult the policy again.
    """

    action: str
    victim: Optional[int] = None
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r} (choose from {ACTIONS})")
        if self.action == "pushout" and self.victim is None:
            raise ValueError("pushout decisions need a victim queue")


#: Shared accept verdict (policies return it unchanged on the fast path).
ACCEPT = Decision("accept")


@dataclass(frozen=True)
class DropRecord:
    """One dropped or pushed-out buffer, in arrival order.

    ``kind`` is ``"drop"`` (the arriving segment was rejected) or
    ``"pushout"`` (a previously accepted buffer was evicted to admit the
    arrival).  ``seq`` is the policy-local event sequence number;
    ``time_ps`` is simulated time when the policy is wired to a
    simulator (-1 otherwise).
    """

    seq: int
    queue: int
    kind: str
    segments: int
    nbytes: int
    reason: str
    time_ps: int = -1


@dataclass(frozen=True)
class DroppedSegment:
    """Functional result of a rejected enqueue: the queue managers (and
    the DQM executing an MMS ENQUEUE) return this instead of a buffer
    slot when the policy dropped the arriving segment."""

    queue: int
    length: int
    reason: str


@dataclass
class PolicyStats:
    """Aggregate accept/drop/push-out counters and byte totals."""

    offered_segments: int = 0
    offered_bytes: int = 0
    accepted_segments: int = 0
    accepted_bytes: int = 0
    dropped_segments: int = 0
    dropped_bytes: int = 0
    pushed_out_segments: int = 0
    pushed_out_bytes: int = 0
    records: List[DropRecord] = field(default_factory=list)

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of offered segments (push-outs excluded:
        their buffers were accepted, then evicted)."""
        if self.offered_segments == 0:
            return 0.0
        return self.dropped_segments / self.offered_segments

    def as_dict(self) -> Dict[str, object]:
        """Counters as plain JSON types (metrics payload)."""
        return {
            "offered_segments": self.offered_segments,
            "offered_bytes": self.offered_bytes,
            "accepted_segments": self.accepted_segments,
            "accepted_bytes": self.accepted_bytes,
            "dropped_segments": self.dropped_segments,
            "dropped_bytes": self.dropped_bytes,
            "pushed_out_segments": self.pushed_out_segments,
            "pushed_out_bytes": self.pushed_out_bytes,
            "drop_rate": self.drop_rate,
        }


class BufferPolicy(ABC):
    """Admission/drop policy over a shared buffer of ``capacity``
    segments.

    Subclasses implement :meth:`decide`; the base class keeps the
    occupancy books (per-queue and aggregate, segments and bytes) that
    every policy consults, fed by the owning queue manager through the
    ``note_*`` hooks.
    """

    #: Family name (mirrors :data:`POLICIES`).
    name: str = "base"

    def __init__(self, capacity: int, keep_records: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.keep_records = keep_records
        self.stats = PolicyStats()
        self.queue_segments: Dict[int, int] = {}
        self.queue_bytes: Dict[int, int] = {}
        self.total_segments = 0
        self.total_bytes = 0
        #: Wired by the MMS to the simulator clock; -1 = unwired.
        self.now_fn: Callable[[], int] = lambda: -1
        self._seq = 0

    # ------------------------------------------------------------ decision

    def admit(self, queue: int, nbytes: int,
              exclude: FrozenSet[int] = frozenset(),
              blocked: bool = False) -> Decision:
        """Decide the fate of one arriving segment for ``queue``.

        ``exclude`` names queues the manager could not push out (no
        published packet); push-out policies must not name them again.
        ``blocked`` signals that a required pointer resource other than
        segment occupancy (a packet descriptor) is exhausted: policies
        must treat the arrival as if the buffer were full, so push-out
        families can still evict (freeing the descriptor along with the
        buffers) while drop families reject.  The *stats* are not
        touched here -- the manager records the outcome it actually
        performed via :meth:`record_drop` / :meth:`record_pushout` /
        :meth:`record_accept`.
        """
        return self.decide(queue, nbytes, exclude, blocked)

    @abstractmethod
    def decide(self, queue: int, nbytes: int, exclude: FrozenSet[int],
               blocked: bool) -> Decision:
        """Policy-specific verdict (see :meth:`admit`)."""

    def admit_fast(self, queue: int, nbytes: int) -> bool:
        """Scalar-only accept check for the common uncongested case.

        Returns True only when :meth:`decide` would certainly return
        ``accept`` for an unblocked arrival *and* deciding so has no
        side effects -- the occupancy books alone settle it.  The queue
        manager consults this before building the full admission context
        (exclusion sets, descriptor probing); False means "take the
        slow path", never "drop".  Policies with per-decision state
        (RED's average filter and RNG draw) must keep returning False.
        """
        return False

    # ------------------------------------------------- occupancy tracking

    def queue_length(self, queue: int) -> int:
        """Occupancy of ``queue`` in segments."""
        return self.queue_segments.get(queue, 0)

    @property
    def free_segments(self) -> int:
        return self.capacity - self.total_segments

    def note_enqueue(self, queue: int, nbytes: int, segments: int = 1) -> None:
        """A buffer entered ``queue`` (enqueue, append, prefill)."""
        self.queue_segments[queue] = self.queue_segments.get(queue, 0) + segments
        self.queue_bytes[queue] = self.queue_bytes.get(queue, 0) + nbytes
        self.total_segments += segments
        self.total_bytes += nbytes

    def note_release(self, queue: int, nbytes: int, segments: int = 1) -> None:
        """Buffers left ``queue`` (dequeue, delete, abort)."""
        self.queue_segments[queue] = self.queue_segments.get(queue, 0) - segments
        self.queue_bytes[queue] = self.queue_bytes.get(queue, 0) - nbytes
        self.total_segments -= segments
        self.total_bytes -= nbytes

    def note_move(self, src: int, dst: int, nbytes: int, segments: int) -> None:
        """A packet moved between queues (occupancy transfer, no stats)."""
        self.note_release(src, nbytes, segments)
        self.note_enqueue(dst, nbytes, segments)

    # --------------------------------------------------- outcome recording

    def record_accept(self, queue: int, nbytes: int) -> None:
        """The manager enqueued the arriving segment."""
        self.stats.offered_segments += 1
        self.stats.offered_bytes += nbytes
        self.stats.accepted_segments += 1
        self.stats.accepted_bytes += nbytes

    def record_drop(self, queue: int, nbytes: int, reason: str) -> None:
        """The arriving segment was rejected."""
        self.stats.offered_segments += 1
        self.stats.offered_bytes += nbytes
        self.stats.dropped_segments += 1
        self.stats.dropped_bytes += nbytes
        self._record(queue, "drop", 1, nbytes, reason)

    def record_pushout(self, victim: int, segments: int, nbytes: int,
                       reason: str) -> None:
        """The manager evicted ``segments`` buffers from ``victim``'s
        tail; occupancy is released here (the buffers are gone)."""
        self.note_release(victim, nbytes, segments)
        self.stats.pushed_out_segments += segments
        self.stats.pushed_out_bytes += nbytes
        self._record(victim, "pushout", segments, nbytes, reason)

    def _record(self, queue: int, kind: str, segments: int, nbytes: int,
                reason: str) -> None:
        self._seq += 1
        if self.keep_records:
            self.stats.records.append(DropRecord(
                seq=self._seq, queue=queue, kind=kind, segments=segments,
                nbytes=nbytes, reason=reason, time_ps=self.now_fn()))

    # ------------------------------------------------- snapshot/restore

    def state_dict(self) -> Dict[str, object]:
        """Exact JSON-serializable snapshot of the mutable policy state
        (occupancy books, stats, records, family extras).

        Restoring it into a freshly constructed policy of the same
        family/parameters via :meth:`load_state` reproduces every future
        decision bit-for-bit -- the checkpoint/resume identity contract
        of :mod:`repro.checkpoint`.  Constructor parameters (capacity,
        thresholds, seeds) are *not* captured: they travel with the
        :class:`~repro.core.mms.MmsConfig` in the checkpoint params.
        """
        s = self.stats
        return {
            "stats": {
                "offered_segments": s.offered_segments,
                "offered_bytes": s.offered_bytes,
                "accepted_segments": s.accepted_segments,
                "accepted_bytes": s.accepted_bytes,
                "dropped_segments": s.dropped_segments,
                "dropped_bytes": s.dropped_bytes,
                "pushed_out_segments": s.pushed_out_segments,
                "pushed_out_bytes": s.pushed_out_bytes,
                "records": [[r.seq, r.queue, r.kind, r.segments, r.nbytes,
                             r.reason, r.time_ps] for r in s.records],
            },
            "queue_segments": {str(q): n
                               for q, n in self.queue_segments.items()},
            "queue_bytes": {str(q): n for q, n in self.queue_bytes.items()},
            "total_segments": self.total_segments,
            "total_bytes": self.total_bytes,
            "seq": self._seq,
            "extra": self._state_extra(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output (see its contract)."""
        st = state["stats"]
        s = self.stats
        s.offered_segments = st["offered_segments"]
        s.offered_bytes = st["offered_bytes"]
        s.accepted_segments = st["accepted_segments"]
        s.accepted_bytes = st["accepted_bytes"]
        s.dropped_segments = st["dropped_segments"]
        s.dropped_bytes = st["dropped_bytes"]
        s.pushed_out_segments = st["pushed_out_segments"]
        s.pushed_out_bytes = st["pushed_out_bytes"]
        s.records = [DropRecord(seq=r[0], queue=r[1], kind=r[2],
                                segments=r[3], nbytes=r[4], reason=r[5],
                                time_ps=r[6]) for r in st["records"]]
        self.queue_segments = {int(q): n
                               for q, n in state["queue_segments"].items()}
        self.queue_bytes = {int(q): n
                            for q, n in state["queue_bytes"].items()}
        self.total_segments = state["total_segments"]
        self.total_bytes = state["total_bytes"]
        self._seq = state["seq"]
        self._load_extra(state.get("extra") or {})

    def _state_extra(self) -> Dict[str, object]:
        """Family-specific mutable state (RED's filter and RNG);
        JSON-serializable.  The base families have none."""
        return {}

    def _load_extra(self, extra: Dict[str, object]) -> None:
        """Restore :meth:`_state_extra` output."""
