"""Dynamic Threshold (Choudhury--Hahne) shared-buffer admission.

Every queue shares one adaptive threshold ``T = alpha * free``, where
``free`` is the unoccupied buffer space: an arrival for queue ``q`` is
accepted iff ``len(q) < T``.  Long queues self-limit (their own growth
shrinks ``free`` and hence ``T``), while a lone hot queue may use up to
``alpha / (1 + alpha)`` of the buffer -- the classic control knob
between full sharing (large alpha) and tight isolation (small alpha).
The alpha bound is a tested invariant: at every accept,
``len(q) < alpha * free`` held at decision time.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.policies.base import ACCEPT, BufferPolicy, Decision


class DynamicThreshold(BufferPolicy):
    """Choudhury--Hahne dynamic per-queue thresholds over shared memory."""

    name = "dynamic-threshold"

    def __init__(self, capacity: int, alpha: float = 1.0,
                 keep_records: bool = False) -> None:
        super().__init__(capacity, keep_records=keep_records)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def threshold(self) -> float:
        """The current shared threshold ``alpha * free``."""
        return self.alpha * self.free_segments

    def decide(self, queue: int, nbytes: int, exclude: FrozenSet[int],
               blocked: bool) -> Decision:
        if blocked:
            return Decision("drop", reason="descriptors exhausted")
        if self.total_segments >= self.capacity:
            return Decision("drop", reason="buffer full")
        if self.queue_length(queue) >= self.threshold():
            return Decision("drop", reason="dynamic threshold")
        return ACCEPT

    def admit_fast(self, queue: int, nbytes: int) -> bool:
        if self.total_segments >= self.capacity:
            return False
        # same comparison as decide(): len(q) < alpha * free
        return (self.queue_segments.get(queue, 0)
                < self.alpha * (self.capacity - self.total_segments))
