"""Random Early Detection over the aggregate buffer occupancy.

Floyd/Jacobson RED adapted to the shared-segment buffer: an EWMA filter
tracks the *average* aggregate occupancy; below ``min_th`` every arrival
is accepted, above ``max_th`` every arrival is dropped, and in between
the drop probability ramps linearly up to ``max_p`` -- monotone in the
average occupancy (a tested invariant).  A full buffer always drops
(RED shapes the queue, the free list bounds it).

The coin flips come from a seeded private :class:`random.Random`, so a
run's drop sequence is a pure function of (seed, arrival order) -- which
is how the fast and reference DES kernels, being trace-identical,
produce byte-identical drop counters.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet

from repro.policies.base import ACCEPT, BufferPolicy, Decision


class RandomEarlyDetection(BufferPolicy):
    """RED on average aggregate occupancy, seeded and deterministic."""

    name = "red"

    def __init__(self, capacity: int, min_frac: float = 0.25,
                 max_frac: float = 0.85, max_p: float = 0.1,
                 weight: float = 0.2, seed: int = 2005,
                 keep_records: bool = False) -> None:
        super().__init__(capacity, keep_records=keep_records)
        if not 0.0 <= min_frac < max_frac <= 1.0:
            raise ValueError(
                f"need 0 <= min_frac < max_frac <= 1, got {min_frac}/{max_frac}")
        if not 0.0 < max_p <= 1.0:
            raise ValueError(f"max_p must be in (0, 1], got {max_p}")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {weight}")
        self.min_th = min_frac * capacity
        self.max_th = max_frac * capacity
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0
        self._rng = random.Random(seed)

    # ------------------------------------------------------------ verdict

    def drop_probability(self, avg: float) -> float:
        """The RED curve: 0 below ``min_th``, ``max_p`` ramp on
        [min_th, max_th), 1 at/above ``max_th``.  Monotone in ``avg``
        (tested property)."""
        if avg < self.min_th:
            return 0.0
        if avg >= self.max_th:
            return 1.0
        return self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)

    def decide(self, queue: int, nbytes: int, exclude: FrozenSet[int],
               blocked: bool) -> Decision:
        self.avg = (1.0 - self.weight) * self.avg \
            + self.weight * self.total_segments
        if blocked:
            return Decision("drop", reason="descriptors exhausted")
        if self.total_segments >= self.capacity:
            return Decision("drop", reason="buffer full")
        p = self.drop_probability(self.avg)
        if p >= 1.0:
            return Decision("drop", reason="red: avg >= max_th")
        if p > 0.0 and self._rng.random() < p:
            return Decision("drop", reason="red: early drop")
        return ACCEPT

    # ------------------------------------------------- snapshot/restore

    def _state_extra(self) -> Dict[str, object]:
        # Mersenne Twister state: (version, 625-int word tuple,
        # gauss_next or None) -- every component is JSON-exact, so the
        # restored RNG continues the identical draw sequence.
        version, words, gauss_next = self._rng.getstate()
        return {"avg": self.avg,
                "rng": [version, list(words), gauss_next]}

    def _load_extra(self, extra: Dict[str, object]) -> None:
        self.avg = extra["avg"]
        version, words, gauss_next = extra["rng"]
        self._rng.setstate((version, tuple(words), gauss_next))
