"""Buffer-management policies for the shared segment memory.

The queue managers (:mod:`repro.queueing`) and the MMS used to raise a
bare ``OutOfBuffersError`` the moment the free list emptied, so no
overload experiment could run to completion.  This package makes
enqueue-on-full a *policy decision*: a :class:`BufferPolicy` tracks
per-queue and aggregate occupancy and decides accept / drop /
push-out per arriving segment, emitting typed :class:`DropRecord`
streams and :class:`PolicyStats` counters.

Four canonical policies are provided (see PAPERS.md for the sources):

* :class:`TailDrop` -- drop on full (optionally per-queue capped),
* :class:`RandomEarlyDetection` -- probabilistic early drop on average
  occupancy (monotone drop curve, seeded and deterministic),
* :class:`DynamicThreshold` -- Choudhury--Hahne adaptive thresholds
  ``T = alpha * free``,
* :class:`LongestQueueDrop` -- Matsakis' 1.5-competitive push-out of
  the longest queue's tail buffer.

Select one declaratively with a :class:`PolicySpec` (carried by
``MmsConfig.policy``, app configs and the ``overload-*`` scenario
family) and build it with :func:`make_policy`; the overload load
harness lives in :mod:`repro.policies.harness`.
"""

from repro.policies.base import (
    ACCEPT,
    ACTIONS,
    POLICIES,
    BufferPolicy,
    Decision,
    DropRecord,
    DroppedSegment,
    PolicySpec,
    PolicyStats,
)
from repro.policies.taildrop import TailDrop
from repro.policies.red import RandomEarlyDetection
from repro.policies.dynamic_threshold import DynamicThreshold
from repro.policies.lqd import LongestQueueDrop

__all__ = [
    "ACCEPT",
    "ACTIONS",
    "POLICIES",
    "BufferPolicy",
    "Decision",
    "DropRecord",
    "DroppedSegment",
    "PolicySpec",
    "PolicyStats",
    "TailDrop",
    "RandomEarlyDetection",
    "DynamicThreshold",
    "LongestQueueDrop",
    "make_policy",
]


def make_policy(spec: PolicySpec, capacity: int, seed: int = 2005,
                keep_records: bool = False) -> BufferPolicy:
    """Build the policy a :class:`PolicySpec` names, sized to a buffer
    of ``capacity`` segments.

    ``seed`` feeds RED's private RNG (the other families are
    deterministic and ignore it); ``keep_records`` retains the full
    :class:`DropRecord` stream instead of counters only.
    """
    if spec.name == "taildrop":
        return TailDrop(capacity, per_queue_limit=spec.per_queue_limit,
                        keep_records=keep_records)
    if spec.name == "red":
        return RandomEarlyDetection(
            capacity, min_frac=spec.red_min_frac, max_frac=spec.red_max_frac,
            max_p=spec.red_max_p, weight=spec.red_weight, seed=seed,
            keep_records=keep_records)
    if spec.name == "dynamic-threshold":
        return DynamicThreshold(capacity, alpha=spec.alpha,
                                keep_records=keep_records)
    if spec.name == "lqd":
        return LongestQueueDrop(capacity, keep_records=keep_records)
    raise ValueError(f"unknown policy {spec.name!r} (choose from {POLICIES})")
