"""The overload load harness: drive an MMS past its buffer capacity.

The Table 5 harness keeps the offered load below the MMS saturation
point and the buffer far larger than the backlog -- no loss ever occurs.
This harness does the opposite: a deliberately small segment buffer, a
drain that is slower than the offered traffic, and a policy deciding the
fate of every arrival.  Three traffic shapes cover the canonical
overload situations:

* ``burst``    -- low average load with large synchronized volleys that
  transiently overflow the buffer (drain recovers in between),
* ``sustained``-- steady 2x oversubscription (arrival pacing at twice
  the drain pacing): occupancy climbs and pins at capacity,
* ``incast``   -- many flows converge simultaneously with short
  multi-segment packets (many short queues; victim selection and
  per-queue thresholds behave differently than under ``burst``'s few
  long queues).

Everything runs through the real MMS blocks (port FIFOs, DQM schedule
timing, DMC transfers), and the ``engine`` knob works exactly like
Table 5's: ``"fast"`` routes to the DES-free command-stream machine
(:mod:`repro.engines`; kernel fallback for configurations it declines),
``"reference"`` to the heapq kernel.  The paths are trace-identical,
and the policy decisions are a pure function of (seed, arrival order),
so the drop/accept counters are byte-identical across engines --
asserted by the equivalence tests, the differential fuzz suite and the
benchmark gate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    from repro.telemetry.probe import Probe

from repro.core.mms import MMS, MmsConfig
from repro.core.workloads import (
    drive_port,
    overload_drain_ops,
    overload_feed_ops,
)
from repro.policies.base import PolicySpec
from repro.sim.clock import SEC
from repro.sim.kernel import make_simulator

#: Traffic shapes of the overload scenario family.
SHAPES = ("burst", "sustained", "incast")

#: Default overload build: a deliberately tiny shared buffer.
OVERLOAD_MMS_CFG = MmsConfig(num_flows=64, num_segments=96,
                             num_descriptors=96)


@dataclass
class OverloadResult:
    """Loss behavior of one policy under one overload shape."""

    policy: str
    shape: str
    offered_segments: int
    offered_bytes: int
    accepted_segments: int
    accepted_bytes: int
    dropped_segments: int
    dropped_bytes: int
    pushed_out_segments: int
    pushed_out_bytes: int
    dequeued_segments: int
    residual_segments: int
    capacity_segments: int
    elapsed_ps: int
    engine: str = "fast"

    @property
    def drop_rate(self) -> float:
        if self.offered_segments == 0:
            return 0.0
        return self.dropped_segments / self.offered_segments

    def counters(self) -> Dict[str, int]:
        """The drop/accept counters that must be byte-identical across
        engines (everything except wall-clock, which is not simulated
        state)."""
        return {
            "offered_segments": self.offered_segments,
            "offered_bytes": self.offered_bytes,
            "accepted_segments": self.accepted_segments,
            "accepted_bytes": self.accepted_bytes,
            "dropped_segments": self.dropped_segments,
            "dropped_bytes": self.dropped_bytes,
            "pushed_out_segments": self.pushed_out_segments,
            "pushed_out_bytes": self.pushed_out_bytes,
            "dequeued_segments": self.dequeued_segments,
            "residual_segments": self.residual_segments,
            "elapsed_ps": self.elapsed_ps,
        }


def run_overload(policy: PolicySpec, shape: str, *,
                 num_arrivals: int = 1200,
                 active_flows: int = 32,
                 config: MmsConfig = OVERLOAD_MMS_CFG,
                 seed: int = 2005,
                 engine: str = "fast",
                 keep_records: bool = False,
                 probe: Optional["Probe"] = None) -> OverloadResult:
    """Run one (policy, traffic shape) overload experiment.

    ``num_arrivals`` segments are offered across ``active_flows`` flow
    queues by three enqueue ports while one port drains at half the
    offered pace; the policy decides every arrival's fate.  Returns the
    typed loss counters.
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r} (choose from {SHAPES})")
    if num_arrivals < 1:
        raise ValueError(f"num_arrivals must be >= 1, got {num_arrivals}")
    if not 1 <= active_flows <= config.num_flows:
        raise ValueError(
            f"active_flows must be in [1, {config.num_flows}], "
            f"got {active_flows}")
    cfg = dataclasses.replace(config, policy=policy, policy_seed=seed,
                              policy_records=keep_records)

    if engine == "fast":
        from repro.engines import stream_run_overload, stream_supports
        if stream_supports(cfg) is None:
            return stream_run_overload(cfg, shape,
                                       num_arrivals=num_arrivals,
                                       active_flows=active_flows,
                                       engine_label=engine,
                                       probe=probe)

    mms = MMS(cfg, sim=make_simulator(engine), probe=probe)
    sim = mms.sim
    pol = mms.policy

    # Pacing: the DQM serves one command per ~10.5 cycles; the drain
    # dequeues at twice that interval and the three enqueue ports
    # together offer four segments per drain slot -- 2x oversubscription
    # in steady state, shaped per repro.core.workloads.overload_feed_ops.
    service_ps = round(10.5 * mms.clock.period_ps)
    drain_period = 2 * service_ps
    enq_period = 3 * drain_period // 4     # per port; 3 ports

    per_port = num_arrivals // 3
    counters = {"dequeued": 0}

    for port in range(3):
        sim.spawn(drive_port(mms, port,
                             overload_feed_ops(shape, port, per_port,
                                               active_flows, enq_period,
                                               counters)),
                  name=f"enq{port}")
    sim.spawn(drive_port(mms, 3,
                         overload_drain_ops(mms.pqm.queued_packets,
                                            active_flows, drain_period,
                                            counters)),
              name="drain")

    horizon = (num_arrivals * 16 * enq_period
               + config.num_segments * 4 * drain_period
               + SEC // 1000)
    sim.run(until_ps=horizon)

    stats = pol.stats
    return OverloadResult(
        policy=policy.name,
        shape=shape,
        offered_segments=stats.offered_segments,
        offered_bytes=stats.offered_bytes,
        accepted_segments=stats.accepted_segments,
        accepted_bytes=stats.accepted_bytes,
        dropped_segments=stats.dropped_segments,
        dropped_bytes=stats.dropped_bytes,
        pushed_out_segments=stats.pushed_out_segments,
        pushed_out_bytes=stats.pushed_out_bytes,
        dequeued_segments=counters["dequeued"],
        residual_segments=pol.total_segments,
        capacity_segments=cfg.num_segments,
        elapsed_ps=sim.now,
        engine=engine,
    )
