"""Longest Queue Drop: push out the longest queue's tail to admit.

Matsakis (PAPERS.md) proves LQD 1.5-competitive for shared-memory
switches: when the buffer is full, the arriving segment is admitted by
evicting a buffer from the *tail* of the currently longest queue --
unless the arriving queue is itself (one of) the longest, in which case
the arrival is dropped.  The victim's head (the HOL packet about to be
serviced) survives whenever the victim holds more than one packet -- a
tested invariant; a single-packet victim necessarily loses that packet.

The policy names the victim; the owning queue manager performs the
actual tail push-out (a whole tail packet in the two-level MMS
structure, a tail segment in the flat Section 5.2 structure) and reports
what it freed via :meth:`BufferPolicy.record_pushout`.  Queues the
manager cannot push out (nothing published yet) come back in
``exclude``; when no viable victim longer than the arriving queue
remains, the arrival is dropped.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.policies.base import ACCEPT, BufferPolicy, Decision


class LongestQueueDrop(BufferPolicy):
    """LQD with push-out of the longest queue's tail buffer."""

    name = "lqd"

    def decide(self, queue: int, nbytes: int, exclude: FrozenSet[int],
               blocked: bool) -> Decision:
        # ``blocked`` (descriptor exhaustion) is treated exactly like a
        # full buffer: evicting a tail packet frees its descriptor too.
        if not blocked and self.total_segments < self.capacity:
            return ACCEPT
        victim = self._longest(exclude)
        if victim is None:
            return Decision("drop", reason="lqd: no viable victim")
        if self.queue_length(victim) <= self.queue_length(queue):
            # the arriving queue is (tied for) the longest: dropping the
            # arrival is the LQD-prescribed outcome
            return Decision("drop", reason="lqd: arriving queue longest")
        return Decision("pushout", victim=victim, reason="lqd: longest queue")

    def admit_fast(self, queue: int, nbytes: int) -> bool:
        # below capacity LQD accepts unconditionally; at capacity the
        # victim scan needs the full admission context
        return self.total_segments < self.capacity

    def _longest(self, exclude: FrozenSet[int]) -> Optional[int]:
        """The longest non-excluded, non-empty queue (lowest id on ties,
        for deterministic victim selection).  Single linear scan: this
        runs on every admission once the buffer is full."""
        best: Optional[int] = None
        best_len = 0
        for q, qlen in self.queue_segments.items():
            if qlen <= 0 or q in exclude:
                continue
            if qlen > best_len or (qlen == best_len and best is not None
                                   and q < best):
                best, best_len = q, qlen
        return best
