"""Operational monitoring: event log, resource profiles, metrics.

Slow-path observability substrate (never imported from hot paths):

* :mod:`repro.monitor.events` -- schema-validated append-only JSONL
  lifecycle log (:class:`EventSink`, :class:`Event`, :class:`SweepLog`);
* :mod:`repro.monitor.resources` -- per-task rusage profiling
  (:class:`ResourceProfiler`);
* :mod:`repro.monitor.metrics` -- Counter/Gauge/Rate registry with
  Prometheus-text and JSON exposition;
* :mod:`repro.monitor.progress` -- journal-directory folding for the
  ``watch`` / ``sweep-status`` / ``report`` CLI (imported on demand;
  not re-exported here to keep the package root import-light).
"""

from repro.monitor.events import (
    EVENT_ACTIONS,
    EVENT_KINDS,
    EVENT_SCHEMA,
    EVENTS_FILENAME,
    Event,
    EventSink,
    SweepLog,
    events_path,
    read_events,
    validate_event_dict,
)
from repro.monitor.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    MetricsRegistry,
    Rate,
    parse_prometheus_text,
    validate_metrics_dict,
)
from repro.monitor.resources import (
    RESOURCES_SCHEMA,
    ResourceProfiler,
    validate_resources_dict,
)

__all__ = [
    "EVENT_ACTIONS",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EVENTS_FILENAME",
    "Event",
    "EventSink",
    "SweepLog",
    "events_path",
    "read_events",
    "validate_event_dict",
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Rate",
    "parse_prometheus_text",
    "validate_metrics_dict",
    "RESOURCES_SCHEMA",
    "ResourceProfiler",
    "validate_resources_dict",
]
