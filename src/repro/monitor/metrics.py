"""Metrics registry: counters, gauges, windowed rates, exposition.

A :class:`MetricsRegistry` aggregates pool-wide operational state --
tasks queued/running/retried/done, events per second, cache-ready spec
hashes -- into named instruments and writes them out in two formats:

* **Prometheus text exposition** (:meth:`MetricsRegistry.to_prometheus`)
  -- the ``# HELP`` / ``# TYPE`` / sample-line format every scraping
  stack ingests; :func:`parse_prometheus_text` is the matching strict
  reader (tests and the CI smoke assert round-trips through it);
* **JSON** (:meth:`MetricsRegistry.to_dict`) -- the shape the
  ``sweep-status --json`` document and the future ``repro.serve``
  daemon expose.

Instruments are deliberately label-free: one registry describes one
journal directory (= one sweep), and per-task detail lives in the
event log, not in a metric-label explosion.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Tuple, Union

#: Schema version of the JSON exposition document.
METRICS_SCHEMA = 1

#: Prometheus metric-name grammar (no labels in this registry).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: One exposition sample line: ``name value``.
_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*) (\S+)$")


class _Instrument:
    """Common shape: a name, a help string and a numeric value."""

    kind = ""

    def __init__(self, name: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid metric name {name!r} (must match "
                f"[a-zA-Z_:][a-zA-Z0-9_:]*)")
        self.name = name
        self.help_text = help_text

    @property
    def value(self) -> float:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._value = 0.0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {n})")
        self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """Point-in-time value (set freely)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Rate(_Instrument):
    """Windowed event rate (events/s over the trailing window).

    :meth:`record` takes explicit timestamps -- the registry never
    reads a clock itself, so replaying a recorded event log yields a
    deterministic rate.  Exposed as a Prometheus gauge.
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 window_s: float = 60.0) -> None:
        super().__init__(name, help_text)
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        self._hits: Deque[Tuple[float, float]] = deque()
        self._now = 0.0

    def record(self, t: float, n: Union[int, float] = 1) -> None:
        """One batch of ``n`` events at time ``t`` (any consistent
        clock; call in non-decreasing ``t`` order)."""
        self._hits.append((t, float(n)))
        self.observe(t)

    def observe(self, now: float) -> None:
        """Advance the window edge to ``now`` (drops aged-out hits)."""
        self._now = max(self._now, now)
        edge = self._now - self.window_s
        while self._hits and self._hits[0][0] < edge:
            self._hits.popleft()

    @property
    def value(self) -> float:
        if not self._hits:
            return 0.0
        span = min(self.window_s,
                   max(self._now - self._hits[0][0], 1e-9))
        return round(sum(n for _t, n in self._hits) / span, 6)


class MetricsRegistry:
    """Named instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, cls: type, name: str, help_text: str,
             **kwargs: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}")
            return existing
        instrument = cls(name, help_text, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)  # type: ignore[no-any-return]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)  # type: ignore[no-any-return]

    def rate(self, name: str, help_text: str = "",
             window_s: float = 60.0) -> Rate:
        return self._get(Rate, name, help_text,  # type: ignore[no-any-return]
                         window_s=window_s)

    # ------------------------------------------------------- exposition

    def to_dict(self) -> Dict[str, Any]:
        """JSON exposition (``sweep-status --json`` payload shape)."""
        return {
            "schema": METRICS_SCHEMA,
            "metrics": {
                name: {"type": inst.kind, "help": inst.help_text,
                       "value": inst.value}
                for name, inst in sorted(self._instruments.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name, inst in sorted(self._instruments.items()):
            if inst.help_text:
                lines.append(f"# HELP {name} {inst.help_text}")
            lines.append(f"# TYPE {name} {inst.kind}")
            value = inst.value
            rendered = repr(value) if value != int(value) else str(
                int(value))
            lines.append(f"{name} {rendered}")
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Strict reader for the exposition this module writes.

    Returns ``{metric_name: value}``; raises :class:`ValueError` on any
    malformed line, so "the exposition parses" is a real assertion in
    tests and the CI monitoring smoke.
    """
    values: Dict[str, float] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge"):
                raise ValueError(f"line {lineno}: malformed TYPE line")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            if not line.startswith("# HELP "):
                raise ValueError(f"line {lineno}: unknown comment form")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample line "
                             f"{line!r}")
        name, raw = m.groups()
        if name not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} has no "
                             f"preceding TYPE line")
        try:
            values[name] = float(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw!r}") from None
    return values


def validate_metrics_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of the JSON exposition document."""
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["metrics document is not an object"]
    if d.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema {d.get('schema')!r} != {METRICS_SCHEMA}")
    metrics = d.get("metrics")
    if not isinstance(metrics, Mapping):
        return problems + ["'metrics' missing or not an object"]
    for name, m in metrics.items():
        if not _NAME_RE.match(str(name)):
            problems.append(f"metric name {name!r} invalid")
        if not isinstance(m, Mapping):
            problems.append(f"metrics[{name!r}] not an object")
            continue
        if m.get("type") not in ("counter", "gauge"):
            problems.append(f"metrics[{name!r}].type invalid")
        if not isinstance(m.get("value"), (int, float)) \
                or isinstance(m.get("value"), bool):
            problems.append(f"metrics[{name!r}].value not numeric")
    return problems
