"""Live sweep progress: journal-directory state, tables, metrics.

:func:`load_sweep` folds a journal directory's monitoring artifacts --
the shared ``events.jsonl`` (preferred), the per-task
``<name>.heartbeat.json`` documents (legacy fallback for pre-event
journals) and the journaled result documents -- into one
:class:`SweepStatus`: per-task terminal/live state, attempts, wall/CPU,
stragglers and an ETA.  The renderers turn that into the ``watch``
table, the ``sweep-status`` summary and the ``report`` timeline;
:func:`build_registry` turns it into a metrics registry for Prometheus
/ JSON exposition.

Everything here is read-side tooling: it observes a sweep another
process is running (or ran), so it works on live directories, finished
ones and crash leftovers alike -- a torn final event line or a missing
finish event (the pool died) degrade to honest "running/unknown" rows
rather than errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.monitor.events import (
    EVENTS_FILENAME,
    Event,
    events_path,
    read_events,
)
from repro.monitor.metrics import MetricsRegistry

#: Task states a sweep can report.  ``done``/``failed`` are terminal.
TASK_STATES: Tuple[str, ...] = ("queued", "running", "retrying", "done",
                                "failed")

#: A running task this much slower than the median finished task is
#: flagged as a straggler (given at least _STRAGGLER_MIN_DONE samples).
_STRAGGLER_FACTOR = 2.0
_STRAGGLER_MIN_DONE = 2

#: Result-document key the pool uses for a task exception (kept in
#: sync by tests/monitor; duplicated here so the read-side tooling
#: does not import the pool it observes).
_ERROR_KEY = "__error__"


def safe_name(name: str) -> str:
    """Filesystem-safe task filename stem (the pool's convention)."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


@dataclass
class TaskProgress:
    """One task's folded lifecycle."""

    name: str
    state: str = "queued"
    attempts: int = 0
    #: Total seconds spent actually running, across attempts (live
    #: tasks include the open attempt, measured against ``now_wall``).
    wall_s: float = 0.0
    cpu_s: Optional[float] = None
    max_rss_kb: Optional[int] = None
    #: Last failure/retry reason seen.
    reason: str = ""
    straggler: bool = False
    #: Wall timestamp of the open attempt's start (running tasks).
    _open_since: Optional[float] = None
    #: Retry provenance: one ``(attempt, reason)`` per requeue.
    retries: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


@dataclass
class SweepStatus:
    """Everything the watch/status renderers need about one sweep."""

    journal_dir: str
    source: str                      # "events" | "heartbeats"
    tasks: List[TaskProgress]
    events: List[Event]
    total: int
    jobs: Optional[int] = None
    skipped_from_journal: int = 0
    interrupted: Optional[int] = None
    #: Distinct (scenario, engine, seed, budget) hashes with a valid
    #: journaled result -- the warm-cache inventory a serving layer
    #: could answer from without re-running anything.
    cache_ready_specs: int = 0
    now_wall: float = 0.0

    def counts(self) -> Dict[str, int]:
        c = {state: 0 for state in TASK_STATES}
        for task in self.tasks:
            c[task.state] += 1
        return c

    @property
    def finished(self) -> bool:
        return all(task.terminal for task in self.tasks)

    def events_per_second(self, window_s: float = 60.0) -> float:
        if not self.events:
            return 0.0
        newest = max(e.t_wall for e in self.events)
        edge = newest - window_s
        hits = sum(1 for e in self.events if e.t_wall >= edge)
        span = min(window_s,
                   max(newest - min(e.t_wall for e in self.events), 1e-9))
        return round(hits / span, 6)

    def eta_s(self) -> Optional[float]:
        """Rough time-to-done from finished-task durations (None until
        at least one task finished, or once everything is terminal)."""
        done = [t.wall_s for t in self.tasks if t.state == "done"]
        if not done or self.finished:
            return None
        mean = sum(done) / len(done)
        workers = max(self.jobs or 1, 1)
        pending = sum(1 for t in self.tasks
                      if t.state in ("queued", "retrying"))
        running = [max(mean - t.wall_s, 0.0) for t in self.tasks
                   if t.state == "running"]
        return round((pending * mean + sum(running)) / workers, 3)


# ------------------------------------------------------------- loading

def _fold_events(events: List[Event], now_wall: float
                 ) -> Tuple[List[TaskProgress], Optional[int],
                            List[str], int, Optional[int]]:
    """Replay task events into per-task progress.

    Returns ``(tasks, jobs, names_from_sweep_start, skipped,
    interrupted)``; task order is sweep-start order when known, else
    first-appearance order.
    """
    by_name: Dict[str, TaskProgress] = {}
    order: List[str] = []
    jobs: Optional[int] = None
    skipped = 0
    interrupted: Optional[int] = None
    announced: List[str] = []

    def task(name: str) -> TaskProgress:
        if name not in by_name:
            by_name[name] = TaskProgress(name=name)
            order.append(name)
        return by_name[name]

    for event in events:
        if event.kind == "sweep":
            if event.action == "start":
                jobs = event.extra.get("jobs", jobs)
                skipped = event.extra.get("skipped_from_journal", skipped)
                for name in event.extra.get("names", []):
                    task(str(name))
                    announced.append(str(name))
            elif event.action in ("finish", "fail"):
                interrupted = event.extra.get("interrupted", interrupted)
            continue
        if event.kind != "task":
            continue
        t = task(event.name)
        if event.attempt is not None:
            t.attempts = max(t.attempts, event.attempt)
        if event.action == "start":
            t.state = "running"
            t._open_since = event.t_wall
        elif event.action in ("retry", "finish", "fail"):
            if t._open_since is not None:
                t.wall_s += max(event.t_wall - t._open_since, 0.0)
                t._open_since = None
            if event.action == "retry":
                t.state = "retrying"
                reason = str(event.extra.get("reason", ""))
                t.reason = reason
                t.retries.append((event.attempt or t.attempts, reason))
            elif event.action == "finish":
                t.state = "done"
                resources = event.extra.get("resources")
                if isinstance(resources, dict):
                    t.cpu_s = resources.get("cpu_s")
                    t.max_rss_kb = resources.get("max_rss_kb")
            else:
                t.state = "failed"
                t.reason = str(event.extra.get("reason", t.reason))
                resources = event.extra.get("resources")
                if isinstance(resources, dict):
                    t.cpu_s = resources.get("cpu_s")
                    t.max_rss_kb = resources.get("max_rss_kb")

    for t in by_name.values():
        if t._open_since is not None:   # still running: live elapsed
            t.wall_s += max(now_wall - t._open_since, 0.0)
        t.wall_s = round(t.wall_s, 3)
    return [by_name[n] for n in order], jobs, announced, skipped, \
        interrupted


def _fold_heartbeats(journal_dir: str) -> List[TaskProgress]:
    """Legacy fallback: reconstruct task state from the per-task
    heartbeat documents of a pre-events journal."""
    tasks: List[TaskProgress] = []
    for entry in sorted(os.listdir(journal_dir)):
        if not entry.endswith(".heartbeat.json"):
            continue
        try:
            with open(os.path.join(journal_dir, entry),
                      encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        t = TaskProgress(name=str(doc.get("name", entry)))
        open_since: Optional[float] = None
        for hb in doc.get("events", []):
            action = hb.get("event")
            elapsed = hb.get("elapsed_s", 0.0)
            t.attempts = max(t.attempts, hb.get("attempt", 0))
            if action == "start":
                t.state = "running"
                open_since = elapsed
            elif action in ("retry", "finish", "fail"):
                if open_since is not None:
                    t.wall_s += max(elapsed - open_since, 0.0)
                    open_since = None
                if action == "retry":
                    t.state = "retrying"
                    t.retries.append((hb.get("attempt", t.attempts), ""))
                else:
                    t.state = "done" if action == "finish" else "failed"
        t.wall_s = round(t.wall_s, 3)
        tasks.append(t)
    return tasks


def _result_doc(journal_dir: str, name: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(journal_dir, safe_name(name) + ".json")
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def _spec_hash(doc: Dict[str, Any]) -> str:
    key = json.dumps([doc.get("scenario"), doc.get("engine"),
                      doc.get("seed"), doc.get("budget")],
                     sort_keys=True)
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def load_sweep(journal_dir: str,
               now_wall: Optional[float] = None) -> SweepStatus:
    """Fold one journal directory into a :class:`SweepStatus`.

    Raises :class:`ValueError` when the directory carries no
    monitoring artifacts at all (not a journal, or an empty one).
    """
    if not os.path.isdir(journal_dir):
        raise ValueError(f"{journal_dir}: not a directory")
    now = time.time() if now_wall is None else now_wall

    ev_path = events_path(journal_dir)
    if os.path.exists(ev_path):
        events = read_events(ev_path)
        tasks, jobs, _announced, skipped, interrupted = _fold_events(
            events, now)
        source = "events"
    else:
        events = []
        tasks, jobs, skipped, interrupted = \
            _fold_heartbeats(journal_dir), None, 0, None
        source = "heartbeats"
    if not tasks and not events:
        raise ValueError(
            f"{journal_dir}: no {EVENTS_FILENAME} and no heartbeat "
            f"documents -- not a monitored journal directory")

    # Cross-check against the journaled result documents: a task whose
    # result landed is done even if its finish event was lost (and the
    # valid results are the sweep's warm cache).
    cache: set[str] = set()
    for task in tasks:
        doc = _result_doc(journal_dir, task.name)
        if doc is None:
            continue
        if _ERROR_KEY in doc:
            if not task.terminal:
                task.state = "failed"
                task.reason = str(doc[_ERROR_KEY])
        else:
            if not task.terminal:
                task.state = "done"
            cache.add(_spec_hash(doc))

    status = SweepStatus(journal_dir=journal_dir, source=source,
                         tasks=tasks, events=events, total=len(tasks),
                         jobs=jobs, skipped_from_journal=skipped,
                         interrupted=interrupted,
                         cache_ready_specs=len(cache), now_wall=now)
    _flag_stragglers(status)
    return status


def status_from_events(path: str,
                       now_wall: Optional[float] = None) -> SweepStatus:
    """A :class:`SweepStatus` from a bare ``events.jsonl`` file (no
    journal directory context: no result-doc cross-check)."""
    now = time.time() if now_wall is None else now_wall
    events = read_events(path)
    tasks, jobs, _announced, skipped, interrupted = _fold_events(
        events, now)
    status = SweepStatus(journal_dir=os.path.dirname(path) or ".",
                         source="events", tasks=tasks, events=events,
                         total=len(tasks), jobs=jobs,
                         skipped_from_journal=skipped,
                         interrupted=interrupted, now_wall=now)
    _flag_stragglers(status)
    return status


def _flag_stragglers(status: SweepStatus) -> None:
    done = sorted(t.wall_s for t in status.tasks if t.state == "done")
    if len(done) < _STRAGGLER_MIN_DONE:
        return
    median = done[len(done) // 2]
    threshold = max(median * _STRAGGLER_FACTOR, 1e-3)
    for task in status.tasks:
        if task.state == "running" and task.wall_s > threshold:
            task.straggler = True


# ------------------------------------------------------------- metrics

def build_registry(status: SweepStatus) -> MetricsRegistry:
    """The sweep's operational state as a metrics registry."""
    reg = MetricsRegistry()
    counts = status.counts()
    reg.gauge("repro_sweep_tasks_total",
              "tasks known to this sweep").set(status.total)
    for state in TASK_STATES:
        reg.gauge(f"repro_sweep_tasks_{state}",
                  f"tasks currently {state}").set(counts[state])
    reg.counter("repro_sweep_retries_total",
                "task attempts beyond the first").inc(
        sum(len(t.retries) for t in status.tasks))
    reg.counter("repro_sweep_events_total",
                "lifecycle events recorded").inc(len(status.events))
    rate = reg.rate("repro_sweep_events_per_second",
                    "event rate over the trailing window")
    for event in status.events:
        rate.record(event.t_wall)
    reg.gauge("repro_sweep_cache_ready_specs",
              "distinct spec hashes with a valid journaled result").set(
        status.cache_ready_specs)
    reg.counter("repro_sweep_cpu_seconds_total",
                "task CPU seconds (user+sys), where profiled").inc(
        round(sum(t.cpu_s or 0.0 for t in status.tasks), 6))
    reg.gauge("repro_sweep_max_rss_kb",
              "largest task RSS high-water mark, where profiled").set(
        max((t.max_rss_kb or 0 for t in status.tasks), default=0))
    return reg


# ----------------------------------------------------------- rendering

def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 100:
        return f"{seconds:.0f}s"
    return f"{seconds:.2f}s"


def _fmt_rss(kb: Optional[int]) -> str:
    if not kb:
        return "-"
    return f"{kb / 1024:.0f}MB"


def render_watch(status: SweepStatus) -> str:
    """The per-task progress table (the ``watch`` screen)."""
    counts = status.counts()
    head = (f"sweep {status.journal_dir}: {status.total} task(s)"
            + (f", jobs={status.jobs}" if status.jobs else "")
            + (f", {status.skipped_from_journal} resumed from journal"
               if status.skipped_from_journal else "")
            + f"  [{status.source}: {len(status.events)} events, "
              f"{status.events_per_second():.2f}/s]")
    lines = [head]
    width = max([len(t.name) for t in status.tasks] + [4])
    lines.append(f"  {'TASK':<{width}}  {'STATE':<8} {'ATT':>3} "
                 f"{'WALL':>8} {'CPU':>8} {'RSS':>7}  NOTE")
    for task in status.tasks:
        note = ""
        if task.straggler:
            note = "straggler"
        elif task.state == "failed" and task.reason:
            note = task.reason
        elif task.retries:
            note = f"{len(task.retries)} retr" + \
                ("y" if len(task.retries) == 1 else "ies")
        lines.append(
            f"  {task.name:<{width}}  {task.state:<8} "
            f"{task.attempts or '-':>3} {_fmt_s(task.wall_s):>8} "
            f"{_fmt_s(task.cpu_s):>8} {_fmt_rss(task.max_rss_kb):>7}  "
            f"{note}".rstrip())
    summary = ", ".join(f"{counts[s]} {s}" for s in TASK_STATES
                        if counts[s])
    eta = status.eta_s()
    if eta is not None:
        summary += f"  eta ~{_fmt_s(eta)}"
    if status.interrupted:
        summary += f"  (interrupted by signal {status.interrupted})"
    lines.append(f"  {summary}")
    return "\n".join(lines)


def render_status(status: SweepStatus) -> str:
    """The one-shot ``sweep-status`` summary."""
    counts = status.counts()
    done = [t.wall_s for t in status.tasks if t.state == "done"]
    lines = [f"journal: {status.journal_dir}"]
    summary = ", ".join(f"{counts[s]} {s}" for s in TASK_STATES
                        if counts[s]) or "no tasks"
    retries = sum(len(t.retries) for t in status.tasks)
    lines.append(f"tasks: {status.total} total -- {summary}"
                 + (f" ({retries} retries)" if retries else ""))
    lines.append(f"events: {len(status.events)} from {status.source}, "
                 f"{status.events_per_second():.2f}/s; "
                 f"cache-ready specs: {status.cache_ready_specs}")
    if done:
        mean = sum(done) / len(done)
        cpu = sum(t.cpu_s or 0.0 for t in status.tasks)
        peak = max((t.max_rss_kb or 0 for t in status.tasks), default=0)
        lines.append(
            f"done tasks: mean wall {_fmt_s(mean)}, "
            f"slowest {_fmt_s(max(done))}"
            + (f"; cpu total {_fmt_s(cpu)}" if cpu else "")
            + (f"; peak rss {_fmt_rss(peak)}" if peak else ""))
    eta = status.eta_s()
    if eta is not None:
        lines.append(f"eta: ~{_fmt_s(eta)}")
    failed = [t for t in status.tasks if t.state == "failed"]
    if failed:
        lines.append("failures:")
        for task in failed:
            lines.append(f"  {task.name}: {task.reason or '?'} "
                         f"(attempts={task.attempts})")
    if status.interrupted:
        lines.append(f"interrupted by signal {status.interrupted}")
    return "\n".join(lines)


def render_timeline(status: SweepStatus) -> str:
    """The ``report`` view of a journal: chronological sweep timeline,
    per-task wall/CPU table and retry provenance."""
    lines = [f"sweep timeline ({status.source}, "
             f"{len(status.events)} events):"]
    for event in status.events:
        detail = ""
        if event.kind == "task":
            detail = f" {event.name}"
            if event.attempt is not None:
                detail += f" (attempt {event.attempt})"
            reason = event.extra.get("reason")
            if reason:
                detail += f": {reason}"
        elif event.extra:
            cells = "  ".join(
                f"{k}={v}" for k, v in sorted(event.extra.items())
                if not isinstance(v, (dict, list)))
            detail = f"  {cells}" if cells else ""
        lines.append(f"  {event.elapsed_s:>9.3f}s  {event.kind}."
                     f"{event.action}{detail}")
    if not status.events:
        lines.append("  (no event log; heartbeat reconstruction)")
    lines.append("per-task:")
    width = max([len(t.name) for t in status.tasks] + [4])
    for task in status.tasks:
        lines.append(
            f"  {task.name:<{width}}  {task.state:<8} "
            f"attempts={task.attempts}  wall={_fmt_s(task.wall_s)}"
            + (f"  cpu={_fmt_s(task.cpu_s)}" if task.cpu_s is not None
               else "")
            + (f"  rss={_fmt_rss(task.max_rss_kb)}"
               if task.max_rss_kb else ""))
    provenance = [(t.name, a, r) for t in status.tasks
                  for a, r in t.retries]
    if provenance:
        lines.append("retry provenance:")
        for name, attempt, reason in provenance:
            lines.append(f"  {name}: attempt {attempt} requeued"
                         + (f" ({reason})" if reason else ""))
    return "\n".join(lines)
