"""Structured run-event log: append-only JSONL of lifecycle events.

Every fleet-level actor -- the :class:`~repro.scenarios.runner.Runner`,
the fault-tolerant sweep pool (:mod:`repro.checkpoint.pool`),
``checkpoint-run`` (:mod:`repro.checkpoint.runs`) and the benchmark
driver (``benchmarks/run_benchmarks.py``) -- reports its lifecycle
through one :class:`EventSink`: typed :class:`Event` records appended
as single JSON lines to ``events.jsonl``.  The format is the
operational substrate the ``watch`` / ``sweep-status`` CLI and the
future ``repro.serve`` daemon read.

Design constraints, in order:

* **line-atomic appends** -- the sink writes each event with one
  ``os.write`` on an ``O_APPEND`` descriptor, so concurrent writers
  (pool parent + worker processes sharing one file) never interleave
  within a line and a reader never parses a half-written record beyond
  the final line of a crashed run (:func:`read_events` tolerates
  exactly that);
* **structurally absent when disabled** -- nothing constructs a sink
  unless monitoring is on: no sink, no event objects, no clock reads,
  no import of this module from any hot path (the bench_monitor gate
  asserts this);
* **exact round-trip** -- ``Event.from_dict(e.to_dict()) == e`` for
  every event, and :func:`validate_event_dict` names every problem in
  a foreign document instead of deserializing garbage.

Events carry both a monotonic ``elapsed_s`` (relative to the sink's
creation, immune to wall-clock steps) and a wall ``t_wall`` timestamp
(what a *different* process -- the live ``watch`` table -- needs to
compute "how long has this task been running").
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Mapping, Optional, Sequence, Tuple

from repro.checkpoint.atomic import write_json_atomic

#: Schema version of one serialized event line.
EVENT_SCHEMA = 1

#: What the event is about.
EVENT_KINDS: Tuple[str, ...] = ("run", "sweep", "task", "checkpoint",
                                "bench")

#: Lifecycle transitions an event can report.
EVENT_ACTIONS: Tuple[str, ...] = ("start", "progress", "retry", "finish",
                                  "fail")

#: Canonical event-log filename inside a journal directory.
EVENTS_FILENAME = "events.jsonl"


def events_path(journal_dir: str) -> str:
    """The canonical event-log path for a journal directory."""
    return os.path.join(journal_dir, EVENTS_FILENAME)


@dataclass(frozen=True)
class Event:
    """One lifecycle event (see module docstring for the format)."""

    kind: str
    action: str
    name: str
    elapsed_s: float
    t_wall: float
    attempt: Optional[int] = None
    scenario: Optional[str] = None
    engine: Optional[str] = None
    seed: Optional[int] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r} "
                f"(choose from {EVENT_KINDS})")
        if self.action not in EVENT_ACTIONS:
            raise ValueError(
                f"unknown event action {self.action!r} "
                f"(choose from {EVENT_ACTIONS})")

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "kind": self.kind,
            "action": self.action,
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "t_wall": self.t_wall,
        }
        for key in ("attempt", "scenario", "engine", "seed"):
            value = getattr(self, key)
            if value is not None:
                d[key] = value
        if self.extra:
            d["extra"] = self.extra
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Event":
        problems = validate_event_dict(d)
        if problems:
            raise ValueError(
                f"invalid event document: {'; '.join(problems)}")
        return cls(
            kind=d["kind"],
            action=d["action"],
            name=d["name"],
            elapsed_s=d["elapsed_s"],
            t_wall=d["t_wall"],
            attempt=d.get("attempt"),
            scenario=d.get("scenario"),
            engine=d.get("engine"),
            seed=d.get("seed"),
            extra=dict(d.get("extra", {})),
        )


def validate_event_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of one serialized :class:`Event`.

    Returns human-readable problems (empty = valid); dependency-free
    like every validator in this repo.
    """
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["event is not an object"]
    if d.get("schema") != EVENT_SCHEMA:
        problems.append(f"schema {d.get('schema')!r} != {EVENT_SCHEMA}")
    for key in ("kind", "action", "name"):
        if not isinstance(d.get(key), str):
            problems.append(f"{key!r} missing or not a string")
    if isinstance(d.get("kind"), str) and d["kind"] not in EVENT_KINDS:
        problems.append(f"kind {d['kind']!r} invalid")
    if isinstance(d.get("action"), str) \
            and d["action"] not in EVENT_ACTIONS:
        problems.append(f"action {d['action']!r} invalid")
    for key in ("elapsed_s", "t_wall"):
        value = d.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{key!r} missing or not a number")
        elif value < 0:
            problems.append(f"{key!r} is negative")
    for key in ("attempt", "seed"):
        if key in d and (not isinstance(d[key], int)
                         or isinstance(d[key], bool)):
            problems.append(f"{key!r} not an integer")
    if "attempt" in d and isinstance(d["attempt"], int) \
            and not isinstance(d["attempt"], bool) and d["attempt"] < 0:
        problems.append("'attempt' is negative")
    for key in ("scenario", "engine"):
        if key in d and not isinstance(d[key], str):
            problems.append(f"{key!r} not a string")
    if "extra" in d and not isinstance(d["extra"], Mapping):
        problems.append("'extra' not an object")
    return problems


class EventSink:
    """Append-only JSONL event writer (one per journal directory).

    Safe for several processes to hold sinks on the same path: each
    event is serialized to one ``\\n``-terminated line and written with
    a single ``os.write`` on an ``O_APPEND`` descriptor, which the
    kernel appends indivisibly -- lines never interleave.  ``elapsed_s``
    is monotonic time since *this* sink was created, so the pool parent
    (which owns the sweep clock) and short-lived workers report
    comparable timelines via ``t_wall``.
    """

    def __init__(self, path: str,
                 _t0: Optional[float] = None) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._t0 = time.monotonic() if _t0 is None else _t0

    # ------------------------------------------------------------ emit

    def elapsed_s(self) -> float:
        """Monotonic seconds since this sink was created."""
        return round(time.monotonic() - self._t0, 6)

    def emit(self, kind: str, action: str, name: str, *,
             attempt: Optional[int] = None,
             scenario: Optional[str] = None,
             engine: Optional[str] = None,
             seed: Optional[int] = None,
             extra: Optional[Dict[str, Any]] = None) -> Event:
        """Build, stamp and append one event; returns it."""
        event = Event(kind=kind, action=action, name=name,
                      elapsed_s=self.elapsed_s(),
                      t_wall=round(time.time(), 6),
                      attempt=attempt, scenario=scenario, engine=engine,
                      seed=seed, extra=dict(extra) if extra else {})
        self.append(event)
        return event

    def append(self, event: Event) -> None:
        """Append an already-built event as one atomic line."""
        if self._fd is None:
            raise ValueError(f"EventSink({self.path!r}) is closed")
        line = json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def read_events(path: str, strict: bool = False) -> List[Event]:
    """Parse an ``events.jsonl`` file.

    A torn *final* line (a writer crashed mid-append) is silently
    dropped; a torn or invalid line anywhere else -- which line-atomic
    appends should make impossible -- raises, or every problem raises
    immediately under ``strict``.
    """
    events: List[Event] = []
    fh: IO[str]
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        try:
            events.append(Event.from_dict(json.loads(line)))
        except ValueError:
            if not strict and i == len(lines) - 1:
                break  # torn final line: the writer died mid-append
            raise ValueError(
                f"{path}:{i + 1}: invalid event line") from None
    return events


class SweepLog:
    """The sweep pool's one code path for task lifecycle reporting.

    Every transition goes through :meth:`task`, which appends the
    typed event to the shared ``events.jsonl`` *and* rewrites the
    task's ``<name>.heartbeat.json`` document -- the PR 8 format,
    now derived from the same :class:`Event` objects so the two views
    cannot drift.  With no sink (un-journaled throwaway sweeps) every
    method is a no-op.
    """

    def __init__(self, sink: Optional[EventSink],
                 names: Sequence[str],
                 heartbeat_paths: Optional[Sequence[str]] = None) -> None:
        self.sink = sink
        self.names = list(names)
        self.heartbeat_paths = list(heartbeat_paths) \
            if heartbeat_paths is not None else None
        self._heartbeats: Dict[int, List[Dict[str, Any]]] = {}

    def sweep(self, action: str, *,
              extra: Optional[Dict[str, Any]] = None) -> None:
        """One sweep-level event (start / finish / fail)."""
        if self.sink is not None:
            self.sink.emit("sweep", action, "sweep", extra=extra)

    def task(self, idx: int, action: str, attempt: int, *,
             extra: Optional[Dict[str, Any]] = None) -> None:
        """One task transition: event line + heartbeat rewrite."""
        if self.sink is None:
            return
        event = self.sink.emit("task", action, self.names[idx],
                               attempt=attempt, extra=extra)
        if self.heartbeat_paths is None:
            return
        entries = self._heartbeats.setdefault(idx, [])
        entries.append({"event": event.action, "attempt": attempt,
                        "elapsed_s": round(event.elapsed_s, 3)})
        write_json_atomic(self.heartbeat_paths[idx],
                          {"schema": 1, "name": self.names[idx],
                           "events": entries})
