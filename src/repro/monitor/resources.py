"""Per-task resource profiling: rusage deltas at task boundaries.

A :class:`ResourceProfiler` samples ``getrusage(RUSAGE_SELF)`` plus a
monotonic wall clock when constructed and again at :meth:`profile`,
reporting the delta as a plain JSON dict::

    {"schema": 1, "cpu_user_s": ..., "cpu_sys_s": ..., "cpu_s": ...,
     "max_rss_kb": ..., "wall_s": ...}

``max_rss_kb`` is the process high-water mark (the kernel reports no
delta for it) -- exactly what a process-per-task pool worker wants,
since the worker process *is* the task.  Optional in-run strides
(:meth:`tick`) fold intermediate samples into a ``"strides"`` list, so
long checkpointed runs can report a resource timeline rather than one
terminal number.

The profiler is slow-path machinery: it is constructed only when
monitoring is enabled (``Runner(... resources=...)``, pool
``resources=True``, benchmark provenance) and never imported from any
hot path -- the ``bench_monitor`` gate asserts that.
"""

from __future__ import annotations

import resource
import time
from typing import Any, Dict, List, Mapping, Tuple

#: Schema version of one serialized resource profile.
RESOURCES_SCHEMA = 1

#: Numeric fields every profile (and stride) carries.
_PROFILE_FIELDS = ("cpu_user_s", "cpu_sys_s", "cpu_s", "max_rss_kb",
                   "wall_s")


def _sample() -> Tuple[float, float, int, float]:
    """``(cpu_user_s, cpu_sys_s, max_rss_kb, wall_s)`` right now."""
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return ru.ru_utime, ru.ru_stime, ru.ru_maxrss, time.monotonic()


class ResourceProfiler:
    """Delta profiler between construction and :meth:`profile`."""

    def __init__(self) -> None:
        self._t0 = _sample()
        self._strides: List[Dict[str, Any]] = []

    def _delta(self, label: str = "") -> Dict[str, Any]:
        user, sys_, rss, wall = _sample()
        u0, s0, _rss0, w0 = self._t0
        d: Dict[str, Any] = {
            "cpu_user_s": round(user - u0, 6),
            "cpu_sys_s": round(sys_ - s0, 6),
            "cpu_s": round((user - u0) + (sys_ - s0), 6),
            "max_rss_kb": rss,
            "wall_s": round(wall - w0, 6),
        }
        if label:
            d["at"] = label
        return d

    def tick(self, label: str) -> Dict[str, Any]:
        """Record an in-run stride sample (cumulative since start)."""
        stride = self._delta(label)
        self._strides.append(stride)
        return stride

    def profile(self) -> Dict[str, Any]:
        """The terminal profile (cumulative), with any recorded
        strides folded in."""
        prof = self._delta()
        prof["schema"] = RESOURCES_SCHEMA
        if self._strides:
            prof["strides"] = list(self._strides)
        return prof


def validate_resources_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of one serialized resource profile."""
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["resources is not an object"]
    if d.get("schema") != RESOURCES_SCHEMA:
        problems.append(
            f"schema {d.get('schema')!r} != {RESOURCES_SCHEMA}")
    for key in _PROFILE_FIELDS:
        value = d.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{key!r} missing or not a number")
        elif value < 0:
            problems.append(f"{key!r} is negative")
    if "strides" in d:
        if not isinstance(d["strides"], list):
            problems.append("'strides' not a list")
        else:
            for i, stride in enumerate(d["strides"]):
                if not isinstance(stride, Mapping) or not all(
                        isinstance(stride.get(k), (int, float))
                        and not isinstance(stride.get(k), bool)
                        for k in _PROFILE_FIELDS):
                    problems.append(f"strides[{i}] malformed")
    return problems
