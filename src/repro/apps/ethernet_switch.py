"""Ethernet switching with 802.1p QoS over the MMS.

A learning L2 switch: ingress frames are segmented and enqueued into a
per-(egress port, 802.1p priority) flow queue; egress serves each port's
priority queues in strict order.  Everything that touches packet data is
an MMS command; the switch itself only keeps the MAC learning table.

Flow-id layout: ``flow = egress_port * 8 + pcp`` -- one queue per port
and priority class, the classic output-queued QoS switch arrangement the
paper's per-flow queuing targets ("Ethernet switching (with QoS e.g.
802.1p, 802.1q)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps._admission import enqueue_packet
from repro.core import MMS, Command, CommandType, MmsConfig
from repro.net.packet import Packet
from repro.policies import PolicySpec

#: 802.1p priority classes.
NUM_PRIORITIES = 8


@dataclass(frozen=True)
class SwitchConfig:
    """Switch shape: ports and buffer provisioning."""

    num_ports: int = 4
    segments_per_port: int = 2048
    #: Optional buffer-management policy for the shared segment memory
    #: (None = legacy: enqueue-on-full raises).
    policy: Optional[PolicySpec] = None

    def __post_init__(self) -> None:
        if self.num_ports < 2:
            raise ValueError(f"need >= 2 ports, got {self.num_ports}")

    @property
    def num_flows(self) -> int:
        return self.num_ports * NUM_PRIORITIES


class QosEthernetSwitch:
    """Output-queued learning switch with strict-priority egress."""

    def __init__(self, config: SwitchConfig = SwitchConfig(),
                 mms: Optional[MMS] = None) -> None:
        self.config = config
        self.mms = mms or MMS(MmsConfig(
            num_flows=config.num_flows,
            num_segments=config.num_ports * config.segments_per_port,
            num_descriptors=config.num_ports * config.segments_per_port,
            policy=config.policy,
        ))
        self._mac_table: Dict[str, int] = {}
        self._pkt_meta: Dict[int, Packet] = {}  # pid -> original packet
        self._pkt_refs: Dict[int, int] = {}     # pid -> queued copies
        self.frames_switched = 0
        self.frames_flooded = 0
        self.frames_dropped = 0
        #: Frames rejected by the buffer policy (per egress copy).
        self.frames_dropped_policy = 0
        #: Queued copies later evicted by an LQD push-out.
        self.frames_pushed_out = 0
        self.mms.pqm.pushout_listeners.append(self._on_pushout)

    # ------------------------------------------------------------ ingress

    def ingress(self, port: int, frame: Packet) -> List[int]:
        """Learn, classify and enqueue a frame.

        Required ``frame.fields``: ``src_mac``, ``dst_mac``; optional
        ``pcp`` (802.1p priority, default 0).  Returns the egress ports
        the frame was queued to (several when flooding).
        """
        self._check_port(port)
        src = frame.fields.get("src_mac")
        dst = frame.fields.get("dst_mac")
        if src is None or dst is None:
            raise ValueError("frame needs src_mac and dst_mac fields")
        pcp = int(frame.fields.get("pcp", 0))
        if not 0 <= pcp < NUM_PRIORITIES:
            raise ValueError(f"pcp must be in [0, 8), got {pcp}")
        self._mac_table[src] = port

        egress = self._lookup(dst, exclude=port)
        if not egress:
            self.frames_dropped += 1
            return []
        queued: List[int] = []
        for out_port in egress:
            flow = self._flow_id(out_port, pcp)
            if not enqueue_packet(self.mms, flow, frame):
                self.frames_dropped_policy += 1
                continue
            self._pkt_meta[frame.pid] = frame
            self._pkt_refs[frame.pid] = self._pkt_refs.get(frame.pid, 0) + 1
            queued.append(out_port)
        if not queued:
            # every copy was policy-rejected: already counted above
            # (frames_dropped stays 'no egress port' only)
            return []
        if len(queued) > 1:
            self.frames_flooded += 1
        else:
            self.frames_switched += 1
        return queued

    # ------------------------------------------------------------- egress

    def egress(self, port: int) -> Optional[Packet]:
        """Transmit one frame from ``port``: strict priority, highest
        (7) first.  Returns the frame or None when the port is idle."""
        self._check_port(port)
        for pcp in range(NUM_PRIORITIES - 1, -1, -1):
            flow = self._flow_id(port, pcp)
            if self.mms.pqm.queued_packets(flow) == 0:
                continue
            pid = None
            while True:
                info = self.mms.apply(Command(type=CommandType.DEQUEUE,
                                              flow=flow))
                pid = info.pid
                if info.eop:
                    break
            frame = self._pkt_meta.get(pid)
            self._release_ref(pid)
            return frame
        return None

    def queued_frames(self, port: int) -> int:
        self._check_port(port)
        return sum(
            self.mms.pqm.queued_packets(self._flow_id(port, pcp))
            for pcp in range(NUM_PRIORITIES)
        )

    @property
    def mac_table(self) -> Dict[str, int]:
        return dict(self._mac_table)

    # --------------------------------------------------------- internals

    def _on_pushout(self, flow: int, pids: List[int]) -> None:
        """An LQD push-out evicted a queued copy: account the loss and
        release its metadata reference."""
        for pid in pids:
            self.frames_pushed_out += 1
            self._release_ref(pid)

    def _release_ref(self, pid: int) -> None:
        refs = self._pkt_refs.get(pid)
        if refs is None:
            return
        if refs <= 1:
            self._pkt_refs.pop(pid, None)
            self._pkt_meta.pop(pid, None)
        else:
            self._pkt_refs[pid] = refs - 1

    def _lookup(self, dst: str, exclude: int) -> List[int]:
        port = self._mac_table.get(dst)
        if port is not None:
            return [] if port == exclude else [port]
        # unknown unicast: flood to all other ports
        return [p for p in range(self.config.num_ports) if p != exclude]

    def _flow_id(self, port: int, pcp: int) -> int:
        return port * NUM_PRIORITIES + pcp

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.config.num_ports:
            raise ValueError(
                f"port {port} out of range [0, {self.config.num_ports})"
            )
