"""ATM switching over the MMS.

Cells of one virtual circuit form a flow queue; switching remaps the
(VPI, VCI) header -- an MMS *Overwrite* on the cell's (single) segment --
and the cell moves to its output-port queue.  The MMS lineage is exactly
this workload: its ancestors ([2], [3] in the paper) were ATM queue
managers, and a 53-byte cell fits one 64-byte segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core import MMS, Command, CommandType, MmsConfig
from repro.net.atm import ATM_CELL_BYTES, AtmCell
from repro.apps._admission import release_pushed_out
from repro.policies import DroppedSegment, PolicySpec

VcKey = Tuple[int, int, int]          # (in_port, vpi, vci)
VcTarget = Tuple[int, int, int]       # (out_port, new_vpi, new_vci)


class VcMap:
    """The virtual-circuit cross-connect table."""

    def __init__(self) -> None:
        self._map: Dict[VcKey, VcTarget] = {}

    def connect(self, in_port: int, vpi: int, vci: int,
                out_port: int, new_vpi: int, new_vci: int) -> None:
        if min(in_port, out_port, vpi, vci, new_vpi, new_vci) < 0:
            raise ValueError("VC identifiers must be non-negative")
        self._map[(in_port, vpi, vci)] = (out_port, new_vpi, new_vci)

    def lookup(self, in_port: int, vpi: int, vci: int) -> Optional[VcTarget]:
        return self._map.get((in_port, vpi, vci))

    def __len__(self) -> int:
        return len(self._map)


@dataclass(frozen=True)
class SwitchedCell:
    """A cell after the cross-connect."""

    out_port: int
    cell: AtmCell


class AtmSwitch:
    """Per-output-port cell queues over the MMS."""

    def __init__(self, num_ports: int = 4, mms: Optional[MMS] = None,
                 policy: Optional[PolicySpec] = None) -> None:
        if num_ports < 2:
            raise ValueError(f"need >= 2 ports, got {num_ports}")
        self.num_ports = num_ports
        self.vcs = VcMap()
        self.mms = mms or MMS(MmsConfig(num_flows=num_ports,
                                        num_segments=4096,
                                        num_descriptors=4096,
                                        policy=policy))
        self._cell_meta: Dict[int, SwitchedCell] = {}
        self._next_tag = 0
        self.cells_switched = 0
        self.cells_dropped = 0
        self.cells_dropped_policy = 0
        self.cells_pushed_out = 0
        self.mms.pqm.pushout_listeners.append(self._on_pushout)

    def switch_cell(self, in_port: int, cell: AtmCell) -> Optional[SwitchedCell]:
        """Cross-connect one cell; returns its queued form or None
        (unknown VC -> dropped, no MMS state consumed)."""
        target = self.vcs.lookup(in_port, cell.vpi, cell.vci)
        if target is None:
            self.cells_dropped += 1
            return None
        out_port, new_vpi, new_vci = target
        tag = self._next_tag
        self._next_tag += 1
        # one 53-byte cell = one short segment; header remap is the
        # segment's data being rewritten on the way in
        result = self.mms.apply(Command(
            type=CommandType.ENQUEUE, flow=out_port, eop=True,
            length=ATM_CELL_BYTES, pid=tag))
        if isinstance(result, DroppedSegment):
            self.cells_dropped_policy += 1
            return None
        switched = SwitchedCell(
            out_port=out_port,
            cell=AtmCell(vpi=new_vpi, vci=new_vci, pid=cell.pid,
                         index=cell.index, last=cell.last,
                         payload_bytes=cell.payload_bytes))
        self._cell_meta[tag] = switched
        self.cells_switched += 1
        return switched

    def transmit(self, out_port: int) -> Optional[SwitchedCell]:
        """Dequeue one cell from an output port."""
        if not 0 <= out_port < self.num_ports:
            raise ValueError(
                f"port {out_port} out of range [0, {self.num_ports})"
            )
        if self.mms.pqm.queued_packets(out_port) == 0:
            return None
        info = self.mms.apply(Command(type=CommandType.DEQUEUE, flow=out_port))
        assert info.eop and info.length == ATM_CELL_BYTES
        return self._cell_meta.pop(info.pid, None)

    def queued_cells(self, out_port: int) -> int:
        return self.mms.pqm.queued_packets(out_port)

    def _on_pushout(self, flow: int, pids) -> None:
        """A push-out evicted a queued cell: release its metadata."""
        self.cells_pushed_out += release_pushed_out(self._cell_meta, pids)
