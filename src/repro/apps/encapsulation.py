"""Protocol encapsulation over the MMS (PPP and friends).

Encapsulation is where the *Append a segment at the head or tail of a
packet* commands earn their keep: a PPP (or IP-over-ATM LLC/SNAP) header
becomes a prepended segment, a trailer (FCS) an appended one, and
decapsulation is *Delete one segment* at the head -- no data copying, the
paper's argument for pointer-level packet surgery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps._admission import enqueue_packet, release_pushed_out
from repro.core import MMS, Command, CommandType, MmsConfig
from repro.net.packet import Packet
from repro.policies import DroppedSegment, PolicySpec

#: Default flow used for the encapsulation pipeline.
PIPELINE_FLOW = 0


@dataclass(frozen=True)
class EncapStats:
    encapsulated: int
    decapsulated: int


class PppEncapsulator:
    """PPP-style encapsulation pipeline on one MMS flow queue."""

    def __init__(self, mms: Optional[MMS] = None,
                 trailer_bytes: int = 4,
                 policy: Optional[PolicySpec] = None) -> None:
        if not 1 <= trailer_bytes <= 64:
            raise ValueError(
                f"trailer_bytes must be in [1, 64], got {trailer_bytes}"
            )
        self.mms = mms or MMS(MmsConfig(num_flows=2, num_segments=2048,
                                        num_descriptors=1024, policy=policy))
        self.trailer_bytes = trailer_bytes
        self._pkt_meta: Dict[int, Packet] = {}
        self.encapsulated = 0
        self.decapsulated = 0
        self.dropped_policy = 0
        self.pushed_out = 0
        self.mms.pqm.pushout_listeners.append(self._on_pushout)

    # ----------------------------------------------------------- pipeline

    def load(self, packet: Packet) -> bool:
        """Buffer a packet into the pipeline queue.

        Returns False when the buffer policy rejected it (the partial
        packet is discarded)."""
        if not enqueue_packet(self.mms, PIPELINE_FLOW, packet):
            self.dropped_policy += 1
            return False
        self._pkt_meta[packet.pid] = packet
        return True

    def encapsulate_head(self) -> int:
        """Prepend the PPP header segment to the head packet.

        Returns the number of segments the packet now has (unchanged
        when the buffer policy rejected the header buffer)."""
        info = self.mms.apply(Command(type=CommandType.READ,
                                      flow=PIPELINE_FLOW))
        result = self.mms.apply(Command(type=CommandType.APPEND_HEAD,
                                        flow=PIPELINE_FLOW, pid=info.pid))
        if isinstance(result, DroppedSegment):
            self.dropped_policy += 1
        else:
            self.encapsulated += 1
        return self._packet_segments()

    def add_trailer(self) -> int:
        """Append an FCS trailer segment to the head packet.

        The packet's last segment must be full (pad with
        *Overwrite_Segment_length* first when needed); returns the new
        segment count."""
        last_len = self._last_segment_length()
        if last_len != 64:
            if self._packet_segments() > 1:
                # overwrite-length addresses the packet's head segment;
                # padding a short tail of a multi-segment packet would
                # need a per-segment variant the model does not expose
                raise ValueError(
                    "cannot pad the short tail of a multi-segment packet"
                )
            # single-segment packet: head == tail, pad it to 64 bytes
            self.mms.apply(Command(type=CommandType.OVERWRITE_LENGTH,
                                   flow=PIPELINE_FLOW, length=64))
        result = self.mms.apply(Command(type=CommandType.APPEND_TAIL,
                                        flow=PIPELINE_FLOW,
                                        length=self.trailer_bytes))
        if isinstance(result, DroppedSegment):
            self.dropped_policy += 1
        return self._packet_segments()

    def decapsulate_head(self) -> int:
        """Drop the head packet's first segment (the header) -- *Delete
        one segment*, zero data movement."""
        self.mms.apply(Command(type=CommandType.DELETE, flow=PIPELINE_FLOW))
        self.decapsulated += 1
        return self._packet_segments()

    def unload(self) -> Optional[Packet]:
        """Dequeue the (possibly re-framed) head packet."""
        if self.mms.pqm.queued_packets(PIPELINE_FLOW) == 0:
            return None
        pid = None
        total = 0
        while True:
            info = self.mms.apply(Command(type=CommandType.DEQUEUE,
                                          flow=PIPELINE_FLOW))
            pid = info.pid if info.pid >= 0 else pid
            total += info.length
            if info.eop:
                break
        original = self._pkt_meta.pop(pid, None)
        if original is None:
            return None
        return Packet(length_bytes=total, flow_id=original.flow_id,
                      pid=original.pid, fields=dict(original.fields))

    def stats(self) -> EncapStats:
        return EncapStats(self.encapsulated, self.decapsulated)

    def _on_pushout(self, flow: int, pids) -> None:
        """A push-out evicted a buffered packet: release its metadata."""
        self.pushed_out += release_pushed_out(self._pkt_meta, pids)

    # --------------------------------------------------------- internals

    def _packet_segments(self) -> int:
        packets = self.mms.pqm.walk_packets(PIPELINE_FLOW)
        return len(packets[0]) if packets else 0

    def _last_segment_length(self) -> int:
        packets = self.mms.pqm.walk_packets(PIPELINE_FLOW)
        if not packets:
            raise RuntimeError("pipeline queue is empty")
        last_slot = packets[0][-1]
        return self.mms.pqm.segment_info(last_slot).length
