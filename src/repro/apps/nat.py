"""Network Address Translation over the MMS.

Outbound packets get their source rewritten to a public (ip, port) pair
-- a header modification (*Overwrite*) fused with the move from the
inside queue to the outside queue (*Overwrite_Segment&Move*).  Inbound
packets reverse-translate; packets with no binding are dropped with
*Delete a full packet*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps._admission import enqueue_packet, release_pushed_out
from repro.core import MMS, Command, CommandType, MmsConfig
from repro.net.packet import Packet
from repro.policies import PolicySpec

#: Flow-queue layout.
INSIDE_FLOW = 0
OUTSIDE_FLOW = 1

Endpoint = Tuple[str, int]


@dataclass(frozen=True)
class NatBinding:
    """One translation entry."""

    private: Endpoint
    public: Endpoint


class NatGateway:
    """Port-overloading NAT (NAPT) expressed in MMS commands."""

    def __init__(self, public_ip: str = "203.0.113.1",
                 first_public_port: int = 40_000,
                 mms: Optional[MMS] = None,
                 policy: Optional[PolicySpec] = None) -> None:
        self.public_ip = public_ip
        self._next_port = first_public_port
        self.mms = mms or MMS(MmsConfig(num_flows=2, num_segments=4096,
                                        num_descriptors=2048, policy=policy))
        self._out: Dict[Endpoint, NatBinding] = {}
        self._back: Dict[Endpoint, NatBinding] = {}
        self._pkt_meta: Dict[int, Packet] = {}
        self.translated_out = 0
        self.translated_in = 0
        self.dropped = 0
        self.dropped_policy = 0
        self.pushed_out = 0
        self.mms.pqm.pushout_listeners.append(self._on_pushout)

    # ----------------------------------------------------------- bindings

    def binding_for(self, private: Endpoint) -> NatBinding:
        """Existing or newly allocated binding for a private endpoint."""
        bind = self._out.get(private)
        if bind is None:
            public = (self.public_ip, self._next_port)
            self._next_port += 1
            bind = NatBinding(private=private, public=public)
            self._out[private] = bind
            self._back[public] = bind
        return bind

    @property
    def active_bindings(self) -> int:
        return len(self._out)

    # ----------------------------------------------------------- outbound

    def outbound(self, packet: Packet) -> Optional[Packet]:
        """Translate and forward one outbound packet.

        Required fields: ``src_ip``, ``src_port``.  Returns the rewritten
        packet (same pid -- the MMS overwrites the header in place), or
        None when the buffer policy rejected it.
        """
        if "src_ip" not in packet.fields or "src_port" not in packet.fields:
            raise ValueError("packet needs src_ip and src_port fields")
        if not self._enqueue(INSIDE_FLOW, packet):
            return None
        bind = self.binding_for((packet.fields["src_ip"],
                                 int(packet.fields["src_port"])))
        self.mms.apply(Command(type=CommandType.OVERWRITE_MOVE,
                               flow=INSIDE_FLOW, dst_flow=OUTSIDE_FLOW))
        rewritten = packet.with_fields(src_ip=bind.public[0],
                                       src_port=bind.public[1])
        self._pkt_meta[packet.pid] = rewritten
        self.translated_out += 1
        return rewritten

    # ------------------------------------------------------------ inbound

    def inbound(self, packet: Packet) -> Optional[Packet]:
        """Reverse-translate one inbound packet; None = dropped.

        Required fields: ``dst_ip``, ``dst_port``.
        """
        if "dst_ip" not in packet.fields or "dst_port" not in packet.fields:
            raise ValueError("packet needs dst_ip and dst_port fields")
        if not self._enqueue(OUTSIDE_FLOW, packet):
            return None
        bind = self._back.get((packet.fields["dst_ip"],
                               int(packet.fields["dst_port"])))
        if bind is None:
            self.mms.apply(Command(type=CommandType.DELETE_PACKET,
                                   flow=OUTSIDE_FLOW))
            self.dropped += 1
            return None
        self.mms.apply(Command(type=CommandType.OVERWRITE_MOVE,
                               flow=OUTSIDE_FLOW, dst_flow=INSIDE_FLOW))
        rewritten = packet.with_fields(dst_ip=bind.private[0],
                                       dst_port=bind.private[1])
        self._pkt_meta[packet.pid] = rewritten
        self.translated_in += 1
        return rewritten

    # -------------------------------------------------------------- drain

    def drain(self, outside: bool = True) -> Optional[Packet]:
        """Dequeue one translated packet from a side's queue."""
        flow = OUTSIDE_FLOW if outside else INSIDE_FLOW
        if self.mms.pqm.queued_packets(flow) == 0:
            return None
        pid = None
        while True:
            info = self.mms.apply(Command(type=CommandType.DEQUEUE, flow=flow))
            pid = info.pid
            if info.eop:
                break
        return self._pkt_meta.pop(pid, None)

    # --------------------------------------------------------- internals

    def _on_pushout(self, flow: int, pids) -> None:
        """A push-out evicted a buffered packet: release its metadata."""
        self.pushed_out += release_pushed_out(self._pkt_meta, pids)

    def _enqueue(self, flow: int, packet: Packet) -> bool:
        if not enqueue_packet(self.mms, flow, packet):
            self.dropped_policy += 1
            return False
        self._pkt_meta[packet.pid] = packet
        return True
