"""Shared policy-aware enqueue helper for the application models.

Every app feeds packets into MMS flow queues segment by segment.  With a
buffer policy installed (``MmsConfig.policy``), any segment may come
back as a :class:`~repro.policies.DroppedSegment`; the app must then
discard the partially assembled packet (partial-packet discard --
otherwise the already accepted segments of the aborted packet would leak
buffer space forever).  This helper centralizes that protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import Command, CommandType
from repro.policies import DroppedSegment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core import MMS
    from repro.net.packet import Packet


def release_pushed_out(meta: dict, pids) -> int:
    """Release per-packet metadata for pushed-out pids.

    The shared body of the apps' push-out listeners: pop each evicted
    pid from the app's pid->metadata dict and return how many were
    actually released (unknown pids -- e.g. prefill markers -- are
    ignored), which the caller adds to its pushed-out counter.
    """
    released = 0
    for pid in pids:
        if meta.pop(pid, None) is not None:
            released += 1
    return released


def enqueue_packet(mms: "MMS", flow: int, packet: "Packet") -> bool:
    """Enqueue all of ``packet``'s segments into ``flow``.

    Returns True when the whole packet was accepted.  On a policy drop
    the partial packet is aborted (its accepted segments freed) and
    False is returned -- the caller counts the loss; nothing of the
    packet remains buffered.
    """
    for i, seg_len in enumerate(packet.segment_lengths()):
        result = mms.apply(Command(
            type=CommandType.ENQUEUE, flow=flow,
            eop=(i == packet.num_segments - 1),
            length=seg_len, pid=packet.pid, seg_index=i))
        if isinstance(result, DroppedSegment):
            mms.pqm.abort_open_packet(flow)
            return False
    return True
