"""Application models over the MMS command API.

Section 6 claims the MMS command set "facilitate[s] the execution of the
basic packet forwarding operations; for instance segmentation &
reassembly, protocol encapsulation, header modification" and lists the
accelerated applications: Ethernet switching with QoS (802.1p/802.1q),
ATM switching, IP over ATM internetworking, IP routing, NAT and PPP
encapsulation.

Each module here implements one of those applications *as a client of
the MMS*: all buffering, queueing and header surgery is expressed in MMS
commands (enqueue / dequeue / move / overwrite / append / delete), so the
applications double as end-to-end exercises of the command set.
"""

from repro.apps.ethernet_switch import QosEthernetSwitch, SwitchConfig
from repro.apps.ip_router import IpRouter, RouteTable
from repro.apps.nat import NatGateway
from repro.apps.atm_switch import AtmSwitch, VcMap
from repro.apps.encapsulation import PppEncapsulator

__all__ = [
    "QosEthernetSwitch",
    "SwitchConfig",
    "IpRouter",
    "RouteTable",
    "NatGateway",
    "AtmSwitch",
    "VcMap",
    "PppEncapsulator",
]
