"""IP routing over the MMS: longest-prefix match + header surgery.

Packets land in an ingress queue; the routing step rewrites the header
(TTL decrement -> the MMS *Overwrite_Segment&Move* combination command
moves the packet to its next-hop queue in the same operation) or drops
expired packets with *Delete a full packet*.  The route table is a
binary trie doing genuine longest-prefix match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps._admission import enqueue_packet, release_pushed_out
from repro.core import MMS, Command, CommandType, MmsConfig
from repro.net.packet import Packet
from repro.policies import PolicySpec


def parse_ipv4(text: str) -> int:
    """Dotted-quad to 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet {p!r} in {text!r}")
        value = (value << 8) | octet
    return value


class _TrieNode:
    __slots__ = ("children", "next_hop")

    def __init__(self) -> None:
        self.children: List[Optional[_TrieNode]] = [None, None]
        self.next_hop: Optional[int] = None


class RouteTable:
    """Binary-trie longest-prefix-match table (IPv4)."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self.num_routes = 0

    def add(self, prefix: str, length: int, next_hop: int) -> None:
        """Install ``prefix/length -> next_hop`` (next_hop = egress id)."""
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length must be in [0, 32], got {length}")
        if next_hop < 0:
            raise ValueError(f"next_hop must be >= 0, got {next_hop}")
        addr = parse_ipv4(prefix)
        node = self._root
        for i in range(length):
            bit = (addr >> (31 - i)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.next_hop is None:
            self.num_routes += 1
        node.next_hop = next_hop

    def lookup(self, dst: str) -> Optional[int]:
        """Longest-prefix match; None when no route covers ``dst``."""
        addr = parse_ipv4(dst)
        node = self._root
        best = node.next_hop
        for i in range(32):
            bit = (addr >> (31 - i)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.next_hop is not None:
                best = node.next_hop
        return best


@dataclass(frozen=True)
class RouterStats:
    routed: int
    dropped_no_route: int
    dropped_ttl: int
    dropped_policy: int = 0
    pushed_out: int = 0


class IpRouter:
    """An MMS-backed IP forwarder.

    Flow layout: flow 0..N-1 are next-hop egress queues; flow N is the
    ingress queue.
    """

    def __init__(self, num_next_hops: int = 16,
                 mms: Optional[MMS] = None,
                 policy: Optional[PolicySpec] = None) -> None:
        if num_next_hops < 1:
            raise ValueError("num_next_hops must be >= 1")
        self.num_next_hops = num_next_hops
        self.table = RouteTable()
        self.mms = mms or MMS(MmsConfig(
            num_flows=num_next_hops + 1,
            num_segments=8192, num_descriptors=4096, policy=policy))
        self._ingress_flow = num_next_hops
        self._pkt_meta: Dict[int, Packet] = {}
        self.routed = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0
        self.dropped_policy = 0
        self.pushed_out = 0
        self.mms.pqm.pushout_listeners.append(self._on_pushout)

    # ------------------------------------------------------------ ingress

    def receive(self, packet: Packet) -> bool:
        """Buffer an arriving packet in the ingress queue.

        Required ``packet.fields``: ``dst_ip`` (dotted quad), ``ttl``.
        Returns False when the buffer policy rejected the packet (the
        partial packet is discarded; nothing remains buffered).
        """
        if "dst_ip" not in packet.fields or "ttl" not in packet.fields:
            raise ValueError("packet needs dst_ip and ttl fields")
        if not enqueue_packet(self.mms, self._ingress_flow, packet):
            self.dropped_policy += 1
            return False
        self._pkt_meta[packet.pid] = packet
        return True

    # -------------------------------------------------------------- route

    def route_one(self) -> Optional[Tuple[Packet, Optional[int]]]:
        """Route the head packet of the ingress queue.

        Returns ``(packet, next_hop)``; ``next_hop`` is None for drops.
        Returns None when the ingress queue is empty.
        """
        if self.mms.pqm.queued_packets(self._ingress_flow) == 0:
            return None
        info = self.mms.apply(Command(type=CommandType.READ,
                                      flow=self._ingress_flow))
        packet = self._pkt_meta[info.pid]
        ttl = int(packet.fields["ttl"])
        if ttl <= 1:
            # expired: drop the whole packet in one O(1) command
            self.mms.apply(Command(type=CommandType.DELETE_PACKET,
                                   flow=self._ingress_flow))
            self.dropped_ttl += 1
            return packet, None
        next_hop = self.table.lookup(packet.fields["dst_ip"])
        if next_hop is None or next_hop >= self.num_next_hops:
            self.mms.apply(Command(type=CommandType.DELETE_PACKET,
                                   flow=self._ingress_flow))
            self.dropped_no_route += 1
            return packet, None
        # TTL decrement + checksum fixup = header overwrite; the
        # combination command rewrites and moves in one operation
        self.mms.apply(Command(type=CommandType.OVERWRITE_MOVE,
                               flow=self._ingress_flow, dst_flow=next_hop))
        self._pkt_meta[packet.pid] = packet.with_fields(ttl=ttl - 1)
        self.routed += 1
        return self._pkt_meta[packet.pid], next_hop

    def route_all(self) -> int:
        """Route everything queued at ingress; returns packets processed."""
        n = 0
        while self.route_one() is not None:
            n += 1
        return n

    # ------------------------------------------------------------- egress

    def transmit(self, next_hop: int) -> Optional[Packet]:
        """Dequeue one packet from a next-hop queue."""
        if not 0 <= next_hop < self.num_next_hops:
            raise ValueError(
                f"next_hop {next_hop} out of range [0, {self.num_next_hops})"
            )
        if self.mms.pqm.queued_packets(next_hop) == 0:
            return None
        pid = None
        while True:
            info = self.mms.apply(Command(type=CommandType.DEQUEUE,
                                          flow=next_hop))
            pid = info.pid
            if info.eop:
                break
        return self._pkt_meta.pop(pid, None)

    def _on_pushout(self, flow: int, pids) -> None:
        """A push-out evicted a buffered packet: release its metadata."""
        self.pushed_out += release_pushed_out(self._pkt_meta, pids)

    def stats(self) -> RouterStats:
        return RouterStats(self.routed, self.dropped_no_route,
                           self.dropped_ttl, self.dropped_policy,
                           self.pushed_out)
