"""Render typed results to the paper's plain-text tables.

Rendering is a presentation concern over :class:`RunResult` /
:class:`Block` data -- executors never format anything, so the same
result can be rendered, serialized to JSON, or compared numerically.
The actual alignment code remains :mod:`repro.analysis.tables`, which
keeps the rendered output byte-identical to the historical
``run_tableN`` drivers (asserted by the golden tests).
"""

from __future__ import annotations

from repro.analysis.tables import format_comparison, format_table
from repro.scenarios.result import Block, RunResult


def render_block(block: Block) -> str:
    """Render one presentation block."""
    if block.kind == "text":
        return block.text
    if block.kind == "comparison":
        return format_comparison(block.headers, block.rows,
                                 paper_col=block.paper_col,
                                 model_col=block.model_col,
                                 title=block.title)
    return format_table(block.headers, block.rows, title=block.title)


def render(result: RunResult) -> str:
    """Render a full result (blocks joined by a blank line)."""
    return "\n\n".join(render_block(b) for b in result.blocks)
