"""The scenario registry: every published artifact, by name.

Executors register themselves against a :class:`ScenarioSpec` with the
:func:`register_scenario` decorator; the catalog
(:mod:`repro.scenarios.catalog`) does this for every table, figure,
sweep and ablation of the paper.  Consumers look scenarios up by name
(:func:`get_scenario`) or enumerate them (:func:`scenario_names`,
:func:`scenarios_of_kind`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.scenarios.result import Outcome
from repro.scenarios.spec import ScenarioSpec

#: An executor: pure function from resolved spec to outcome.
Executor = Callable[[ScenarioSpec], Outcome]


@dataclass(frozen=True)
class Scenario:
    """A spec bound to the function that can execute it."""

    spec: ScenarioSpec
    execute: Executor


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(spec: ScenarioSpec) -> Callable[[Executor], Executor]:
    """Class-level decorator: bind ``spec`` to the decorated executor.

    Registration is idempotent per name only in the sense that
    re-registering an existing name is an error -- two artifacts must
    not silently shadow each other.
    """

    def decorate(fn: Executor) -> Executor:
        if spec.name in _REGISTRY:
            raise ValueError(f"scenario {spec.name!r} already registered")
        _REGISTRY[spec.name] = Scenario(spec=spec, execute=fn)
        return fn

    return decorate


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (raises ``KeyError`` with the list of
    known names on a miss)."""
    _ensure_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> List[str]:
    """All registered names, sorted by (kind rank, name) so tables come
    first in listings."""
    _ensure_catalog()
    rank = {"table": 0, "figure": 1, "headline": 2, "sweep": 3,
            "ablation": 4, "overload": 5, "qos": 6, "latency": 7}
    return sorted(_REGISTRY,
                  key=lambda n: (rank[_REGISTRY[n].spec.kind], n))


def scenarios_of_kind(kind: str) -> List[Scenario]:
    _ensure_catalog()
    return [_REGISTRY[n] for n in scenario_names()
            if _REGISTRY[n].spec.kind == kind]


def all_scenarios() -> Dict[str, Scenario]:
    _ensure_catalog()
    return dict(_REGISTRY)


def _ensure_catalog() -> None:
    """Import the catalog on first lookup (deferred to avoid a circular
    import: the catalog imports this module to register itself)."""
    from repro.scenarios import catalog  # noqa: F401  (side-effect import)
