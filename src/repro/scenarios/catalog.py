"""The catalog: every published artifact as a registered scenario.

Tables 1-5, the architecture figures, the headline claims, the
parameter sweeps and the ablations are all declared here as
:class:`ScenarioSpec` values bound to executors.  Executors compute
*data* (metrics + presentation blocks + paper deltas); rendering is the
presenter's job, and the historical ``run_tableN`` drivers are now thin
shims over these scenarios (``repro.analysis.experiments``).

Engine semantics per workload:

* ``ddr`` scenarios: ``fast`` = batched bank model
  (:mod:`repro.mem.fastpath`), ``reference`` = per-access generator walk
  -- bit-identical.
* ``mms`` / ``ixp`` / ``npu`` scenarios: ``fast`` = calendar-queue DES
  kernel, ``reference`` = heapq ordering spec -- trace-identical.
* closed-form scenarios (Table 3/4, figures, clock sweeps) have no
  engine degree of freedom and report ``engine="n/a"``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.paper_data import (
    PAPER_IXP_MAX_MBPS_1K_QUEUES,
    PAPER_MMS_GBPS,
    PAPER_MMS_MOPS,
    PAPER_NPU_BASE_FULL_DUPLEX_MBPS,
    PAPER_NPU_LINE_FULL_DUPLEX_MBPS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.core import CommandType, MICROCODE
from repro.core.mms import MmsConfig, figure2_diagram, run_load, run_saturation
from repro.core.scheduler import PortConfig
from repro.ixp import simulate_ixp
from repro.ixp.program import build_queue_program
from repro.ixp.params import IxpParams
from repro.mem import simulate_throughput_loss
from repro.net import pps_to_gbps
from repro.npu import CopyStrategy, QueueSwModel
from repro.npu.system import figure1_diagram
from repro.policies import PolicySpec
from repro.policies.harness import OVERLOAD_MMS_CFG, SHAPES, run_overload
from repro.queueing.packet_queues import SEGMENT_BYTES
from repro.scenarios.registry import register_scenario
from repro.scenarios.result import Block, Outcome, paper_delta
from repro.scenarios.spec import (
    MemorySpec,
    ScenarioSpec,
    SchedulerSpec,
    TrafficSpec,
)
from repro.telemetry import (MmsTelemetry, ProbeChain, TelemetrySnapshot,
                             TelemetrySpec)
from repro.telemetry import publish
from repro.trace.spans import TraceCollector

#: Moderate MMS configuration: full results, minutes-not-hours runtime.
TABLE5_MMS_CFG = MmsConfig(num_flows=2048, num_segments=16384,
                           num_descriptors=8192)

#: Smaller MMS build used by the sweep/ablation scenarios (matches the
#: historical benchmark configuration).
SWEEP_MMS_CFG = MmsConfig(num_flows=1024, num_segments=8192,
                          num_descriptors=4096)


def _probes(spec: ScenarioSpec, default_telemetry=None):
    """``(combined probe, telemetry collector, trace collector)`` for a
    resolved spec.

    The execution paths take one probe; when a spec enables both the
    telemetry collector and the span tracer they ride one
    :class:`ProbeChain`.  All three are None when neither is enabled
    (structural absence)."""
    tele_spec = spec.telemetry or default_telemetry
    tele = MmsTelemetry(tele_spec) if tele_spec else None
    tracer = TraceCollector(spec.trace) if spec.trace else None
    children = [p for p in (tele, tracer) if p is not None]
    # A serving worker may have activated a frame publisher for this
    # process; it rides last so each frame sees the collector's
    # post-update state.  None (the overwhelmingly common case) keeps
    # plain runs' probe chains exactly as before.
    publisher_probe = publish.active_probe(tele)
    if publisher_probe is not None:
        children.append(publisher_probe)
    if not children:
        return None, None, None
    probe = children[0] if len(children) == 1 else ProbeChain(children)
    return probe, tele, tracer


def _telemetry_blocks(snap: TelemetrySnapshot, title: str) -> List[Block]:
    """Presentation blocks over one telemetry snapshot: the latency
    percentile table and the occupancy/drop counters."""
    # summary() emits keys in the spec's percentile order with "max"
    # last, and insertion order survives (de)serialization -- the first
    # histogram's keys are the column order
    percentile_headers: List[str] = []
    hist_rows = []
    for name in sorted(snap.histograms):
        h = snap.histograms[name]
        p = h.get("percentiles", {})
        if not percentile_headers:
            percentile_headers = list(p)
        hist_rows.append([name, h["count"]]
                         + [round(p[k], 2) for k in percentile_headers])
    latency_block = Block.table(
        ["histogram", "count"] + percentile_headers, hist_rows,
        title=f"{title}: latency distribution (cycles)")
    occ = snap.occupancy
    occ_rows = [
        ["commands dispatched", snap.counters["commands"]],
        ["policy drops", snap.counters["dropped_commands"]],
        ["occupancy peak (segments)", occ["peak_total"]],
        ["occupancy peak time (ps)", occ["peak_time_ps"]],
        ["occupancy final (segments)", occ["final_total"]],
        ["occupancy samples kept", len(occ["series"])],
    ]
    occ_block = Block.table(["telemetry counter", "value"], occ_rows,
                            title=f"{title}: occupancy and throughput")
    return [latency_block, occ_block]


# ====================================================== tables 1 through 5

@register_scenario(ScenarioSpec(
    name="table1", kind="table", workload="ddr",
    title="Table 1: DDR-DRAM throughput loss, 1-16 banks",
    description="DDR throughput loss vs banks and scheduler",
    traffic=TrafficSpec(num_accesses=(100_000, 20_000)),
    memory=MemorySpec(backend="ddr", banks=tuple(PAPER_TABLE1)),
    supports=frozenset({"engine", "seed", "budget"}),
    fastpath="bank",
))
def _table1(spec: ScenarioSpec) -> Outcome:
    accesses = spec.pick(spec.traffic.num_accesses)
    rows: List[List[object]] = []
    metrics: Dict[str, object] = {}
    deltas: Dict[str, float] = {}
    for banks in spec.memory.banks:
        p_ser, p_ser_rw, p_opt, p_opt_rw = PAPER_TABLE1[banks]
        ours = []
        for optimized, rw in ((False, False), (False, True),
                              (True, False), (True, True)):
            res = simulate_throughput_loss(
                banks, optimized=optimized, model_rw_turnaround=rw,
                num_accesses=accesses, seed=spec.seed,
                timing=spec.memory.timing, engine=spec.engine)
            ours.append(res.loss)
        metrics[f"banks{banks}"] = tuple(ours)
        deltas[f"banks{banks}.serializing"] = paper_delta(p_ser, ours[0])
        deltas[f"banks{banks}.optimized"] = paper_delta(p_opt, ours[2])
        rows.append([banks, p_ser, round(ours[0], 3), p_ser_rw,
                     round(ours[1], 3), p_opt, round(ours[2], 3),
                     p_opt_rw, round(ours[3], 3)])
    block = Block.table(
        ["banks",
         "ser/conf (paper)", "ser/conf (ours)",
         "ser/conf+rw (paper)", "ser/conf+rw (ours)",
         "opt/conf (paper)", "opt/conf (ours)",
         "opt/conf+rw (paper)", "opt/conf+rw (ours)"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,), paper_deltas=deltas)


@register_scenario(ScenarioSpec(
    name="table2", kind="table", workload="ixp",
    title="Table 2: IXP1200 queue management rate",
    description="IXP1200 maximum serviced rate vs queues and engines",
    traffic=TrafficSpec(queue_counts=((16, 128, 1024),) * 2,
                        engine_counts=(1, 6)),
    memory=MemorySpec(backend="sram"),
    supports=frozenset({"engine"}),
    fastpath="kernel",
))
def _table2(spec: ScenarioSpec) -> Outcome:
    rows: List[List[object]] = []
    metrics: Dict[str, object] = {}
    deltas: Dict[str, float] = {}
    for queues in spec.pick(spec.traffic.queue_counts):
        for engines in spec.traffic.engine_counts:
            want_kpps = PAPER_TABLE2.get((queues, engines))
            res = simulate_ixp(queues, engines, engine=spec.engine)
            metrics[f"q{queues}_e{engines}"] = res.kpps
            if want_kpps is not None:
                deltas[f"q{queues}_e{engines}"] = paper_delta(want_kpps,
                                                              res.kpps)
            rows.append([queues, engines,
                         want_kpps if want_kpps is not None else "",
                         round(res.kpps, 1)])
    block = Block.comparison(
        ["queues", "engines", "paper Kpps", "model Kpps"],
        rows, paper_col=2, model_col=3, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,), paper_deltas=deltas)


@register_scenario(ScenarioSpec(
    name="table3", kind="table", workload="npu-sw",
    title="Table 3: cycles per segment operation (PowerPC/PLB)",
    description="software queue-manager cycles + Section 5.3 variants",
    memory=MemorySpec(backend="none"),
    supports=frozenset(),
))
def _table3(spec: ScenarioSpec) -> Outcome:
    model = QueueSwModel()
    p = model.params
    word = CopyStrategy.WORD
    rows = [
        ["Dequeue Free List", PAPER_TABLE3["free_list"][0],
         model.free_pop.cpu_cycles(p), PAPER_TABLE3["free_list"][1],
         model.free_push.cpu_cycles(p)],
        ["Enqueue Segment (first)", PAPER_TABLE3["segment_first"][0],
         model.link_first.cpu_cycles(p), PAPER_TABLE3["segment_first"][1],
         model.unlink.cpu_cycles(p)],
        ["Enqueue Segment (rest)", PAPER_TABLE3["segment_rest"][0],
         model.link_rest.cpu_cycles(p), PAPER_TABLE3["segment_rest"][1],
         model.unlink.cpu_cycles(p)],
        ["Copy a segment", PAPER_TABLE3["copy"][0],
         model.copy_cost(word).cpu_cycles(p), PAPER_TABLE3["copy"][1],
         model.copy_cost(word).cpu_cycles(p)],
        ["Total (first)", PAPER_TABLE3["total_first"][0],
         model.enqueue_cycles(word, first_segment=True),
         PAPER_TABLE3["total_first"][1], model.dequeue_cycles(word)],
        ["Total (rest)", PAPER_TABLE3["total_rest"][0],
         model.enqueue_cycles(word, first_segment=False),
         PAPER_TABLE3["total_rest"][1], model.dequeue_cycles(word)],
    ]
    base = Block.table(
        ["function", "enq (paper)", "enq (ours)", "deq (paper)", "deq (ours)"],
        rows, title=spec.title)
    variants = Block.table(
        ["copy strategy", "enqueue", "dequeue", "full-duplex Mbps"],
        [[s.value,
          model.enqueue_cycles(s, first_segment=False),
          model.dequeue_cycles(s),
          round(model.full_duplex_gbps(s) * 1000, 1)]
         for s in CopyStrategy],
        title="Section 5.3 variants (paper: word ~100 Mbps, line ~200 Mbps)")
    metrics = {
        "enqueue_word": model.enqueue_cycles(word, first_segment=True),
        "dequeue_word": model.dequeue_cycles(word),
        "line_copy": model.copy_cost(CopyStrategy.LINE).cpu_cycles(p),
        "fd_word_mbps": model.full_duplex_gbps(word) * 1000,
        "fd_line_mbps": model.full_duplex_gbps(CopyStrategy.LINE) * 1000,
    }
    deltas = {
        "enqueue_word": paper_delta(PAPER_TABLE3["total_first"][0],
                                    metrics["enqueue_word"]),
        "dequeue_word": paper_delta(PAPER_TABLE3["total_first"][1],
                                    metrics["dequeue_word"]),
        "fd_word_mbps": paper_delta(PAPER_NPU_BASE_FULL_DUPLEX_MBPS,
                                    metrics["fd_word_mbps"]),
        "fd_line_mbps": paper_delta(PAPER_NPU_LINE_FULL_DUPLEX_MBPS,
                                    metrics["fd_line_mbps"]),
    }
    return Outcome(metrics=metrics, blocks=(base, variants),
                   paper_deltas=deltas)


@register_scenario(ScenarioSpec(
    name="table4", kind="table", workload="mms",
    title="Table 4: latency of the MMS commands (125 MHz)",
    description="latency of the MMS commands",
    memory=MemorySpec(backend="none"),
    supports=frozenset(),
))
def _table4(spec: ScenarioSpec) -> Outcome:
    rows: List[List[object]] = []
    metrics: Dict[str, object] = {}
    deltas: Dict[str, float] = {}
    for name, want in PAPER_TABLE4.items():
        ct = CommandType(name)
        got = MICROCODE[ct].latency_cycles
        metrics[name] = got
        deltas[name] = paper_delta(want, got)
        rows.append([name, want, got])
    block = Block.comparison(
        ["command", "paper cycles", "model cycles"],
        rows, paper_col=1, model_col=2, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,), paper_deltas=deltas)


@register_scenario(ScenarioSpec(
    name="table5", kind="table", workload="mms",
    title="Table 5: MMS delays vs offered load (cycles)",
    description="MMS delay decomposition vs offered load",
    traffic=TrafficSpec(
        loads_gbps=(tuple(sorted(PAPER_TABLE5, reverse=True)),) * 2,
        num_volleys=(2500, 800), warmup_volleys=(300, 100)),
    memory=MemorySpec(backend="ddr", banks=(8,)),
    mms=TABLE5_MMS_CFG,
    supports=frozenset({"engine", "seed", "budget", "mms", "telemetry",
                        "trace"}),
    fastpath="stream",
))
def _table5(spec: ScenarioSpec) -> Outcome:
    cfg = spec.mms or TABLE5_MMS_CFG
    volleys = spec.pick(spec.traffic.num_volleys)
    warmup = spec.pick(spec.traffic.warmup_volleys)
    rows: List[List[object]] = []
    metrics: Dict[str, object] = {}
    deltas: Dict[str, float] = {}
    telemetry: Dict[str, object] = {}
    traces: Dict[str, object] = {}
    for load in spec.pick(spec.traffic.loads_gbps):
        p_fifo, p_exec, p_data, p_total = PAPER_TABLE5[load]
        probe, tele, tracer = _probes(spec)
        res = run_load(load, num_volleys=volleys, config=cfg,
                       warmup_volleys=warmup, seed=spec.seed,
                       engine=spec.engine, probe=probe)
        metrics[f"load{load}"] = (res.fifo_cycles, res.execution_cycles,
                                  res.data_cycles, res.total_cycles)
        deltas[f"load{load}.total"] = paper_delta(p_total, res.total_cycles)
        if tele is not None:
            telemetry[f"load{load}"] = tele.snapshot().to_dict()
        if tracer is not None:
            traces[f"load{load}"] = tracer.snapshot().to_dict()
        rows.append([load,
                     p_fifo, round(res.fifo_cycles, 1),
                     p_exec, round(res.execution_cycles, 1),
                     p_data, round(res.data_cycles, 1),
                     p_total, round(res.total_cycles, 1)])
    if telemetry:
        metrics["telemetry"] = telemetry
    if traces:
        metrics["trace"] = traces
    block = Block.table(
        ["Gbps", "fifo (paper)", "fifo (ours)", "exec (paper)", "exec (ours)",
         "data (paper)", "data (ours)", "total (paper)", "total (ours)"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,), paper_deltas=deltas)


# ================================================= figures and headline

@register_scenario(ScenarioSpec(
    name="figure1", kind="figure", workload="structural",
    title="Figure 1: the reference NPU architecture",
    description="structural diagram of the Figure 1 platform",
    memory=MemorySpec(backend="none"),
    supports=frozenset(),
))
def _figure1(spec: ScenarioSpec) -> Outcome:
    return Outcome(metrics={}, blocks=(Block.raw_text(figure1_diagram()),))


@register_scenario(ScenarioSpec(
    name="figure2", kind="figure", workload="structural",
    title="Figure 2: the MMS architecture",
    description="structural diagram of the MMS block",
    memory=MemorySpec(backend="none"),
    supports=frozenset(),
))
def _figure2(spec: ScenarioSpec) -> Outcome:
    return Outcome(metrics={}, blocks=(Block.raw_text(figure2_diagram()),))


@register_scenario(ScenarioSpec(
    name="headline", kind="headline", workload="mixed",
    title="Headline claims",
    description="MMS saturation, IXP 1K-queue ceiling, PowerPC rule of thumb",
    traffic=TrafficSpec(num_commands=(8000, 2000)),
    mms=TABLE5_MMS_CFG,
    supports=frozenset({"engine", "budget", "mms"}),
    fastpath="mixed",
))
def _headline(spec: ScenarioSpec) -> Outcome:
    cfg = spec.mms or TABLE5_MMS_CFG
    sat = run_saturation(num_commands=spec.pick(spec.traffic.num_commands),
                         config=cfg, engine=spec.engine)
    ixp = simulate_ixp(1024, 6, engine=spec.engine)
    sw = QueueSwModel()
    ixp_1k_mbps = pps_to_gbps(ixp.pps, 64) * 1000
    rows = [
        ["MMS ops rate (Mops/s)", PAPER_MMS_MOPS,
         round(sat.achieved_mops, 2)],
        ["MMS bandwidth (Gbps)", PAPER_MMS_GBPS,
         round(sat.achieved_gbps, 3)],
        ["IXP 6-engine, 1K queues (Mbps)", PAPER_IXP_MAX_MBPS_1K_QUEUES,
         round(ixp_1k_mbps, 1)],
        ["PowerPC word-copy full duplex (Mbps)",
         PAPER_NPU_BASE_FULL_DUPLEX_MBPS,
         round(sw.full_duplex_gbps(CopyStrategy.WORD) * 1000, 1)],
        ["PowerPC line-copy full duplex (Mbps)",
         PAPER_NPU_LINE_FULL_DUPLEX_MBPS,
         round(sw.full_duplex_gbps(CopyStrategy.LINE) * 1000, 1)],
    ]
    block = Block.comparison(["claim", "paper", "model"], rows,
                             paper_col=1, model_col=2, title=spec.title)
    metrics = {
        "mms_mops": sat.achieved_mops,
        "mms_gbps": sat.achieved_gbps,
        "ixp_1k_mbps": ixp_1k_mbps,
    }
    deltas = {
        "mms_mops": paper_delta(PAPER_MMS_MOPS, sat.achieved_mops),
        "mms_gbps": paper_delta(PAPER_MMS_GBPS, sat.achieved_gbps),
        "ixp_1k_mbps": paper_delta(PAPER_IXP_MAX_MBPS_1K_QUEUES, ixp_1k_mbps),
    }
    return Outcome(metrics=metrics, blocks=(block,), paper_deltas=deltas)


# ============================================================== sweeps

@register_scenario(ScenarioSpec(
    name="sweep-ddr-loss-banks", kind="sweep", workload="ddr",
    title="Sweep: DDR throughput loss vs banks (conflicts only)",
    description="Table 1's bank axis, continuously, both schedulers",
    traffic=TrafficSpec(num_accesses=(20_000, 8_000)),
    memory=MemorySpec(backend="ddr",
                      banks=(1, 2, 4, 6, 8, 12, 16, 24, 32)),
    supports=frozenset({"engine", "seed", "budget"}),
    fastpath="bank",
))
def _sweep_ddr_loss(spec: ScenarioSpec) -> Outcome:
    from repro.analysis.sweeps import ddr_loss_vs_banks
    accesses = spec.pick(spec.traffic.num_accesses)
    ser = ddr_loss_vs_banks(
        banks=spec.memory.banks, optimized=False,
        model_rw_turnaround=spec.sched.model_rw_turnaround,
        num_accesses=accesses, seed=spec.seed, engine=spec.engine)
    opt = ddr_loss_vs_banks(
        banks=spec.memory.banks, optimized=True,
        model_rw_turnaround=spec.sched.model_rw_turnaround,
        num_accesses=accesses, seed=spec.seed, engine=spec.engine)
    rows = [[int(x), round(ys, 4), round(yo, 4)]
            for (x, ys), (_, yo) in zip(ser.points, opt.points)]
    block = Block.table(["banks", "serializing loss", "reordering loss"],
                        rows, title=spec.title)
    metrics = {
        "banks": [int(x) for x in ser.xs()],
        "serializing": ser.ys(),
        "reordering": opt.ys(),
    }
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="sweep-ixp-rate-queues", kind="sweep", workload="ixp",
    title="Sweep: IXP1200 serviced rate vs queue count",
    description="Table 2's queue axis, continuously, 1 and 6 engines",
    traffic=TrafficSpec(
        queue_counts=((8, 16, 32, 64, 128, 256, 512, 1024, 2048),
                      (16, 128, 1024)),
        engine_counts=(1, 6)),
    memory=MemorySpec(backend="sram"),
    supports=frozenset({"engine", "budget"}),
    fastpath="kernel",
))
def _sweep_ixp_rate(spec: ScenarioSpec) -> Outcome:
    from repro.analysis.sweeps import ixp_rate_vs_queues
    queues = spec.pick(spec.traffic.queue_counts)
    series = {e: ixp_rate_vs_queues(queue_counts=queues, engines=e,
                                    engine=spec.engine)
              for e in spec.traffic.engine_counts}
    headers = ["queues"] + [f"{e}-engine Kpps"
                            for e in spec.traffic.engine_counts]
    rows = []
    for i, q in enumerate(queues):
        rows.append([q] + [round(series[e].ys()[i], 1)
                           for e in spec.traffic.engine_counts])
    block = Block.table(headers, rows, title=spec.title)
    metrics = {"queues": list(queues)}
    for e in spec.traffic.engine_counts:
        metrics[f"kpps_{e}me"] = series[e].ys()
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="sweep-npu-rate-clock", kind="sweep", workload="npu-sw",
    title="Sweep: NPU sustainable rate vs CPU clock (Section 5.4)",
    description="the clock-frequency rule of thumb, per copy strategy",
    traffic=TrafficSpec(clocks_mhz=(50, 100, 200, 300, 400)),
    memory=MemorySpec(backend="none"),
    supports=frozenset(),
))
def _sweep_npu_clock(spec: ScenarioSpec) -> Outcome:
    from repro.analysis.sweeps import npu_rate_vs_clock
    series = {s: npu_rate_vs_clock(clocks_mhz=spec.traffic.clocks_mhz,
                                   strategy=s)
              for s in CopyStrategy}
    headers = ["clock MHz"] + [f"{s.value} Mbps" for s in CopyStrategy]
    rows = []
    for i, mhz in enumerate(spec.traffic.clocks_mhz):
        rows.append([mhz] + [round(series[s].ys()[i], 1)
                             for s in CopyStrategy])
    block = Block.table(headers, rows, title=spec.title)
    metrics = {"clocks_mhz": list(spec.traffic.clocks_mhz)}
    for s in CopyStrategy:
        metrics[f"mbps_{s.value}"] = series[s].ys()
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="sweep-mms-delay-load", kind="sweep", workload="mms",
    title="Sweep: MMS delay components vs offered load",
    description="Table 5's load axis, continuously",
    traffic=TrafficSpec(
        loads_gbps=((1.0, 2.0, 3.0, 4.0, 5.0, 5.5, 6.0), (1.6, 3.2, 5.8)),
        num_volleys=(800, 300)),
    memory=MemorySpec(backend="ddr", banks=(8,)),
    mms=SWEEP_MMS_CFG,
    supports=frozenset({"engine", "seed", "budget", "mms"}),
    fastpath="stream",
))
def _sweep_mms_delay(spec: ScenarioSpec) -> Outcome:
    from repro.analysis.sweeps import mms_delay_vs_load
    loads = spec.pick(spec.traffic.loads_gbps)
    series = mms_delay_vs_load(loads_gbps=loads,
                               config=spec.mms or SWEEP_MMS_CFG,
                               num_volleys=spec.pick(spec.traffic.num_volleys),
                               seed=spec.seed, engine=spec.engine)
    rows = []
    for i, load in enumerate(loads):
        rows.append([load,
                     round(series["fifo"].ys()[i], 1),
                     round(series["data"].ys()[i], 1),
                     round(series["total"].ys()[i], 1)])
    block = Block.table(["Gbps", "fifo cycles", "data cycles", "total cycles"],
                        rows, title=spec.title)
    metrics = {"loads_gbps": list(loads),
               "fifo": series["fifo"].ys(),
               "data": series["data"].ys(),
               "total": series["total"].ys()}
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="sweep-ixp-cycles-closed-form", kind="sweep", workload="ixp",
    title="Sweep: unloaded IXP cycles per packet vs queue count",
    description="closed-form cycles/packet (no simulation)",
    traffic=TrafficSpec(
        queue_counts=((8, 16, 32, 64, 128, 256, 512, 1024),
                      (8, 64, 1024))),
    memory=MemorySpec(backend="none"),
    supports=frozenset({"budget"}),
))
def _sweep_ixp_cycles(spec: ScenarioSpec) -> Outcome:
    params = IxpParams()
    queues = spec.pick(spec.traffic.queue_counts)
    cycles = [build_queue_program(q, params).unloaded_cycles(params)
              for q in queues]
    rows = [[q, c] for q, c in zip(queues, cycles)]
    block = Block.table(["queues", "cycles/packet"], rows, title=spec.title)
    return Outcome(metrics={"queues": list(queues), "cycles": cycles},
                   blocks=(block,))


# ============================================================ ablations

@register_scenario(ScenarioSpec(
    name="ablation-history-depth", kind="ablation", workload="ddr",
    title="Ablation A1: scheduler history depth (paper uses 3)",
    description="reordering-scheduler issue-history depth sweep",
    traffic=TrafficSpec(num_accesses=(15_000, 8_000)),
    memory=MemorySpec(backend="ddr", banks=(8,)),
    sched=SchedulerSpec(optimized=True, model_rw_turnaround=False,
                        history_depths=(0, 1, 2, 3, 4, 6, 8)),
    supports=frozenset({"engine", "seed", "budget"}),
    fastpath="bank",
))
def _ablation_history(spec: ScenarioSpec) -> Outcome:
    accesses = spec.pick(spec.traffic.num_accesses)
    banks = spec.memory.banks[0]
    metrics: Dict[str, object] = {}
    rows = []
    for depth in spec.sched.history_depths:
        loss = simulate_throughput_loss(
            banks, optimized=True,
            model_rw_turnaround=spec.sched.model_rw_turnaround,
            num_accesses=accesses, seed=spec.seed, history_depth=depth,
            engine=spec.engine).loss
        metrics[f"depth{depth}"] = loss
        rows.append([depth, round(loss, 4)])
    block = Block.table(
        ["history depth", f"loss ({banks} banks, conflicts only)"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="ablation-rw-grouping", kind="ablation", workload="ddr",
    title="Ablation A4: direction-aware selection on top of bank-aware",
    description="read/write grouping vs the paper's bank-only policy",
    traffic=TrafficSpec(num_accesses=(15_000, 8_000)),
    memory=MemorySpec(backend="ddr", banks=(4, 8, 16)),
    sched=SchedulerSpec(optimized=True, model_rw_turnaround=True),
    supports=frozenset({"engine", "seed", "budget"}),
    fastpath="bank",
))
def _ablation_rw_grouping(spec: ScenarioSpec) -> Outcome:
    accesses = spec.pick(spec.traffic.num_accesses)
    metrics: Dict[str, object] = {}
    rows = []
    for banks in spec.memory.banks:
        base = simulate_throughput_loss(
            banks, optimized=True, model_rw_turnaround=True,
            num_accesses=accesses, seed=spec.seed, engine=spec.engine)
        grouped = simulate_throughput_loss(
            banks, optimized=True, model_rw_turnaround=True,
            num_accesses=accesses, seed=spec.seed, prefer_same_type=True,
            engine=spec.engine)
        metrics[f"banks{banks}"] = (base.loss, grouped.loss,
                                    base.turnaround_stall_slots,
                                    grouped.turnaround_stall_slots)
        rows.append([banks, round(base.loss, 3), round(grouped.loss, 3),
                     base.turnaround_stall_slots,
                     grouped.turnaround_stall_slots])
    block = Block.table(
        ["banks", "loss (paper policy)", "loss (+rw grouping)",
         "turnaround stalls", "stalls w/ grouping"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="ablation-fifo-depth", kind="ablation", workload="mms",
    title="Ablation A2: per-port FIFO depth at 6.14 Gbps",
    description="MMS per-port command FIFO depth sweep",
    traffic=TrafficSpec(loads_gbps=((6.14,), (6.14,)),
                        num_volleys=(800, 300), warmup_volleys=(100, 60)),
    memory=MemorySpec(backend="ddr", banks=(8,)),
    sched=SchedulerSpec(fifo_depths=(1, 2, 4, 8)),
    mms=SWEEP_MMS_CFG,
    supports=frozenset({"engine", "seed", "budget", "mms"}),
    # per-port FIFO backpressure study: the stream machine declares
    # non-default port arrangements unsupported and the engine knob
    # falls through to the DES kernel
    fastpath="kernel",
))
def _ablation_fifo_depth(spec: ScenarioSpec) -> Outcome:
    import dataclasses as _dc
    base_cfg = spec.mms or SWEEP_MMS_CFG
    load = spec.pick(spec.traffic.loads_gbps)[0]
    volleys = spec.pick(spec.traffic.num_volleys)
    warmup = spec.pick(spec.traffic.warmup_volleys)
    metrics: Dict[str, object] = {}
    rows = []
    for depth in spec.sched.fifo_depths:
        ports = tuple(PortConfig(n, priority=0, fifo_depth=depth)
                      for n in ("in", "out", "cpu0", "cpu1"))
        cfg = _dc.replace(base_cfg, ports=ports)
        res = run_load(load, num_volleys=volleys, config=cfg,
                       warmup_volleys=warmup, seed=spec.seed,
                       engine=spec.engine)
        metrics[f"depth{depth}"] = (res.fifo_cycles, res.total_cycles)
        rows.append([depth, round(res.fifo_cycles, 1),
                     round(res.total_cycles, 1)])
    block = Block.table(
        ["fifo depth", "fifo delay (cycles)", "total delay (cycles)"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="ablation-overlap", kind="ablation", workload="mms",
    title="Ablation A5: data access overlapped with pointer work "
          "(4 Gbps load)",
    description="pointer/data parallelism in the MMS",
    traffic=TrafficSpec(loads_gbps=((4.0,), (4.0,)),
                        num_volleys=(800, 300), warmup_volleys=(100, 60)),
    memory=MemorySpec(backend="ddr", banks=(8,)),
    mms=SWEEP_MMS_CFG,
    supports=frozenset({"engine", "seed", "budget", "mms"}),
    fastpath="stream",
))
def _ablation_overlap(spec: ScenarioSpec) -> Outcome:
    import dataclasses as _dc
    base_cfg = spec.mms or SWEEP_MMS_CFG
    load = spec.pick(spec.traffic.loads_gbps)[0]
    volleys = spec.pick(spec.traffic.num_volleys)
    warmup = spec.pick(spec.traffic.warmup_volleys)
    results = {}
    for overlap in (True, False):
        cfg = _dc.replace(base_cfg, overlap_data=overlap)
        results[overlap] = run_load(load, num_volleys=volleys, config=cfg,
                                    warmup_volleys=warmup, seed=spec.seed,
                                    engine=spec.engine)
    rows = []
    metrics: Dict[str, object] = {}
    for overlap, label in ((True, "overlapped (MMS design)"),
                           (False, "serialized (ablation)")):
        res = results[overlap]
        key = "overlapped" if overlap else "serialized"
        metrics[key] = (res.fifo_cycles, res.execution_cycles,
                        res.data_cycles, res.total_cycles,
                        res.end_to_end_cycles)
        rows.append([label, round(res.fifo_cycles, 1),
                     round(res.execution_cycles, 1),
                     round(res.data_cycles, 1),
                     round(res.total_cycles, 1),
                     round(res.end_to_end_cycles, 1)])
    block = Block.table(
        ["configuration", "fifo", "exec", "data",
         "additive total", "true end-to-end (cycles)"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,))


# ========================================== overload scenario family
#
# The first beyond-the-paper family: loss behavior of the shared
# segment buffer under overload, per buffer-management policy
# (repro.policies) x traffic shape (repro.policies.harness.SHAPES).
# Every scenario runs the real MMS blocks through the DES kernel, so
# the engine knob applies and fast/reference report byte-identical
# drop/accept counters (tests/policies/test_harness.py).

#: Policy selections of the family, keyed by the scenario-name stem.
OVERLOAD_POLICIES: Dict[str, PolicySpec] = {
    "taildrop": PolicySpec(name="taildrop"),
    "red": PolicySpec(name="red"),
    "dt": PolicySpec(name="dynamic-threshold", alpha=1.0),
    "lqd": PolicySpec(name="lqd"),
}

_SHAPE_BLURB = {
    "burst": "synchronized volleys transiently overflow the buffer",
    "sustained": "steady 2x oversubscription pins occupancy at capacity",
    "incast": "many flows converge with short multi-segment packets",
}


def _overload(spec: ScenarioSpec) -> Outcome:
    probe, tele, tracer = _probes(spec)
    res = run_overload(
        spec.policy, spec.traffic.pattern,
        num_arrivals=spec.pick(spec.traffic.num_commands),
        active_flows=spec.traffic.active_flows,
        config=spec.mms or OVERLOAD_MMS_CFG,
        seed=spec.seed, engine=spec.engine, probe=probe)
    metrics: Dict[str, object] = {"policy": res.policy, "shape": res.shape,
                                  "capacity_segments": res.capacity_segments}
    metrics.update(res.counters())
    metrics["drop_rate"] = res.drop_rate
    rows = [
        ["offered", res.offered_segments, res.offered_bytes],
        ["accepted", res.accepted_segments, res.accepted_bytes],
        ["dropped", res.dropped_segments, res.dropped_bytes],
        ["pushed out", res.pushed_out_segments, res.pushed_out_bytes],
        ["dequeued", res.dequeued_segments,
         res.dequeued_segments * SEGMENT_BYTES],
        ["residual", res.residual_segments, ""],
    ]
    block = Block.table(["counter", "segments", "bytes"], rows,
                        title=f"{spec.title} "
                              f"(drop rate {res.drop_rate:.3f})")
    blocks = [block]
    if tele is not None:
        snap = tele.snapshot()
        metrics["telemetry"] = snap.to_dict()
        blocks += _telemetry_blocks(snap, spec.title)
    if tracer is not None:
        metrics["trace"] = tracer.snapshot().to_dict()
    return Outcome(metrics=metrics, blocks=tuple(blocks))


def _register_overload_family() -> None:
    for stem, policy in OVERLOAD_POLICIES.items():
        for shape in SHAPES:
            register_scenario(ScenarioSpec(
                name=f"overload-{stem}-{shape}", kind="overload",
                workload="mms",
                title=f"Overload: {policy.name} under {shape} traffic",
                description=f"{policy.name} loss behavior: "
                            f"{_SHAPE_BLURB[shape]}",
                traffic=TrafficSpec(num_commands=(1200, 360),
                                    active_flows=32, pattern=shape),
                memory=MemorySpec(backend="ddr", banks=(8,)),
                mms=OVERLOAD_MMS_CFG,
                policy=policy,
                supports=frozenset({"engine", "seed", "budget", "mms",
                                    "telemetry", "trace"}),
                fastpath="stream",
            ))(_overload)


_register_overload_family()


# ============================================ latency scenario family
#
# The telemetry flagship: the overload workloads re-examined through
# *distributions* instead of aggregate loss counters.  Each scenario
# runs one (policy x traffic shape) overload experiment with the
# standard probe always on and reports per-class enqueue/dequeue
# latency percentiles (p50/p90/p99/p99.9/max over the true
# submit-to-completion cycles) and the occupancy dynamics (peak,
# time-series) of the shared segment buffer.  Both engines produce
# byte-identical telemetry JSON -- the engine-identity acceptance
# criterion of ``repro.telemetry``.

def _latency(spec: ScenarioSpec) -> Outcome:
    probe, tele, tracer = _probes(spec, default_telemetry=TelemetrySpec())
    res = run_overload(
        spec.policy, spec.traffic.pattern,
        num_arrivals=spec.pick(spec.traffic.num_commands),
        active_flows=spec.traffic.active_flows,
        config=spec.mms or OVERLOAD_MMS_CFG,
        seed=spec.seed, engine=spec.engine, probe=probe)
    snap = tele.snapshot()
    metrics: Dict[str, object] = {
        "policy": res.policy,
        "shape": res.shape,
        "capacity_segments": res.capacity_segments,
        "occupancy_peak": snap.occupancy["peak_total"],
        "drop_rate": res.drop_rate,
        "telemetry": snap.to_dict(),
    }
    if tracer is not None:
        metrics["trace"] = tracer.snapshot().to_dict()
    for cls in ("enqueue", "dequeue"):
        hist = snap.histograms.get(f"{cls}.e2e")
        if hist is not None:
            for label, value in hist["percentiles"].items():
                metrics[f"{cls}_e2e_{label}"] = value
    return Outcome(metrics=metrics,
                   blocks=tuple(_telemetry_blocks(snap, spec.title)))


def _register_latency_family() -> None:
    for stem, policy in OVERLOAD_POLICIES.items():
        for shape in SHAPES:
            register_scenario(ScenarioSpec(
                name=f"latency-{stem}-{shape}", kind="latency",
                workload="mms",
                title=f"Latency: {policy.name} under {shape} overload",
                description=f"{policy.name} latency/occupancy "
                            f"distributions: {_SHAPE_BLURB[shape]}",
                traffic=TrafficSpec(num_commands=(1200, 360),
                                    active_flows=32, pattern=shape),
                memory=MemorySpec(backend="ddr", banks=(8,)),
                mms=OVERLOAD_MMS_CFG,
                policy=policy,
                telemetry=TelemetrySpec(),
                supports=frozenset({"engine", "seed", "budget", "mms",
                                    "telemetry", "trace"}),
                fastpath="stream",
            ))(_latency)


_register_latency_family()


# ================================================ qos scenario family
#
# Egress scheduling over MMS flow queues (repro.core.qos): the paper
# motivates per-flow queues with "advanced Quality of Service" but
# leaves the egress policy to the surrounding system.  These scenarios
# make the two standard policies registry-reachable artifacts: a seeded
# backlog is built functionally (MMS.apply -- no DES, so there is no
# engine degree of freedom) and drained through the scheduler under
# test.

#: MMS build of the QoS scenarios (functional path only).
QOS_MMS_CFG = MmsConfig(num_flows=16, num_segments=8192,
                        num_descriptors=4096)

#: The QoS class queues, highest priority first, and the DRR weights.
QOS_FLOWS = (0, 1, 2, 3)
QOS_DRR_WEIGHTS = (4.0, 2.0, 1.0, 1.0)


def _qos_backlog(mms, num_packets: int, seed: int):
    """Build a seeded multi-class backlog; returns per-flow byte totals."""
    import random as _random

    from repro.core.commands import Command as _Command

    rng = _random.Random(seed)
    enq_bytes = {f: 0 for f in QOS_FLOWS}
    for _i in range(num_packets):
        flow = QOS_FLOWS[rng.randrange(len(QOS_FLOWS))]
        nsegs = rng.randrange(1, 4)
        last_len = rng.randrange(1, 65)
        for s in range(nsegs):
            eop = s == nsegs - 1
            length = last_len if eop else 64
            mms.apply(_Command(type=CommandType.ENQUEUE, flow=flow,
                               eop=eop, length=length))
            enq_bytes[flow] += length
    return enq_bytes


@register_scenario(ScenarioSpec(
    name="qos-strict-priority", kind="qos", workload="mms",
    title="QoS: strict-priority egress over MMS flow queues",
    description="802.1p-style class scheduling; low classes drain last",
    traffic=TrafficSpec(num_commands=(600, 150)),
    memory=MemorySpec(backend="none"),
    mms=QOS_MMS_CFG,
    supports=frozenset({"seed", "budget", "mms"}),
))
def _qos_strict(spec: ScenarioSpec) -> Outcome:
    from repro.core.mms import MMS
    from repro.core.qos import StrictPriorityScheduler

    mms = MMS(spec.mms or QOS_MMS_CFG)
    enq_bytes = _qos_backlog(mms, spec.pick(spec.traffic.num_commands),
                             spec.seed)
    sched = StrictPriorityScheduler(mms, QOS_FLOWS)
    served_bytes = {f: 0 for f in QOS_FLOWS}
    order: List[int] = []
    while True:
        pkt = sched.next_packet()
        if pkt is None:
            break
        served_bytes[pkt.flow] += pkt.length_bytes
        order.append(pkt.flow)
    # arrivals complete before the drain starts, so strict priority must
    # serve the classes in one monotone block each
    inversions = sum(1 for a, b in zip(order, order[1:]) if a > b)
    rows = [[f, sched.served[f], enq_bytes[f], served_bytes[f]]
            for f in QOS_FLOWS]
    block = Block.table(
        ["class (0 = highest)", "packets served", "bytes offered",
         "bytes served"],
        rows, title=f"{spec.title} (priority inversions: {inversions})")
    metrics: Dict[str, object] = {
        "packets": [sched.served[f] for f in QOS_FLOWS],
        "bytes": [served_bytes[f] for f in QOS_FLOWS],
        "inversions": inversions,
        "service_order_classes": order[:32],
    }
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="qos-drr", kind="qos", workload="mms",
    title="QoS: deficit round robin egress over MMS flow queues",
    description="byte-fair weighted sharing while all classes backlog",
    traffic=TrafficSpec(num_commands=(600, 150)),
    memory=MemorySpec(backend="none"),
    mms=QOS_MMS_CFG,
    supports=frozenset({"seed", "budget", "mms"}),
))
def _qos_drr(spec: ScenarioSpec) -> Outcome:
    from repro.core.mms import MMS
    from repro.core.qos import DeficitRoundRobin

    num_packets = spec.pick(spec.traffic.num_commands)
    mms = MMS(spec.mms or QOS_MMS_CFG)
    enq_bytes = _qos_backlog(mms, num_packets, spec.seed)
    drr = DeficitRoundRobin(mms, QOS_FLOWS, weights=QOS_DRR_WEIGHTS,
                            quantum_bytes=512)
    # serve only part of the backlog so every class stays backlogged --
    # the regime in which DRR's weighted byte-fairness is defined
    shares = drr.drain_fair_shares(num_packets // 3)
    per_weight = {f: shares[f] / w
                  for f, w in zip(QOS_FLOWS, QOS_DRR_WEIGHTS)}
    base = per_weight[QOS_FLOWS[0]] or 1.0
    rows = [[f, w, enq_bytes[f], shares[f],
             round(per_weight[f] / base, 3)]
            for f, w in zip(QOS_FLOWS, QOS_DRR_WEIGHTS)]
    block = Block.table(
        ["class", "weight", "bytes offered", "bytes served",
         "share per weight (norm.)"],
        rows, title=spec.title)
    metrics = {
        "weights": list(QOS_DRR_WEIGHTS),
        "bytes": [shares[f] for f in QOS_FLOWS],
        "share_per_weight": [per_weight[f] for f in QOS_FLOWS],
    }
    return Outcome(metrics=metrics, blocks=(block,))


@register_scenario(ScenarioSpec(
    name="ablation-multithreading", kind="ablation", workload="ixp",
    title="Ablation: IXP1200 multithreading (6 engines)",
    description="hardware multithreading vs single-threaded engines",
    traffic=TrafficSpec(queue_counts=((16, 128, 1024), (16, 128)),
                        engine_counts=(6,)),
    memory=MemorySpec(backend="sram"),
    sched=SchedulerSpec(multithreading=True),
    supports=frozenset({"engine", "budget"}),
    fastpath="kernel",
))
def _ablation_multithreading(spec: ScenarioSpec) -> Outcome:
    engines = spec.traffic.engine_counts[0]
    metrics: Dict[str, object] = {}
    rows = []
    for q in spec.pick(spec.traffic.queue_counts):
        plain = simulate_ixp(q, engines, multithreading=False,
                             engine=spec.engine)
        threaded = simulate_ixp(q, engines, multithreading=True,
                                engine=spec.engine)
        metrics[f"q{q}"] = (plain.kpps, threaded.kpps)
        rows.append([q, round(plain.kpps), round(threaded.kpps),
                     round(threaded.kpps / plain.kpps, 2)])
    block = Block.table(
        ["queues", "single-thread Kpps", "4-thread Kpps", "speedup"],
        rows, title=spec.title)
    return Outcome(metrics=metrics, blocks=(block,))
