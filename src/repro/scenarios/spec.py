"""Declarative experiment specifications.

A :class:`ScenarioSpec` is a frozen, self-describing value object that
captures everything needed to regenerate one published artifact (a
table, figure, sweep or ablation): the traffic source, the workload, the
memory backend and its :class:`~repro.mem.timing.DdrTiming`, the
scheduler flags, the execution engine, the run-length budget and the
seed.  Execution is decoupled: the spec carries no code -- the registry
(:mod:`repro.scenarios.registry`) binds each spec to an executor, the
:class:`~repro.scenarios.runner.Runner` runs it, and the presenter
renders the typed result.

Run-length knobs are *budgeted pairs* ``(full, fast)``: the ``full``
element aims at repeatable 3-digit numbers, the ``fast`` element at
CI-style wall-clock.  ``spec.pick(pair)`` resolves a pair against the
spec's ``budget``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple, TypeVar

from repro.core.mms import MmsConfig
from repro.mem.timing import DdrTiming
from repro.policies import PolicySpec
from repro.policies.harness import SHAPES
from repro.telemetry import TelemetrySpec
# the probe-layer leaf directly, not the repro.trace package: the spec
# layer must not drag the export/diff tooling into its import graph
from repro.trace.spans import TraceSpec

#: Execution engines every scenario understands.  ``fast`` selects the
#: batched/calendar-queue implementations, ``reference`` the original
#: per-access / heapq executable specifications.  Simulated results are
#: identical either way (asserted by the equivalence tests).
ENGINES: Tuple[str, ...] = ("fast", "reference")

#: Run-length budgets.
BUDGETS: Tuple[str, ...] = ("full", "fast")

#: Artifact categories.  ``overload``, ``qos`` and ``latency`` are
#: beyond-the-paper families: buffer-policy loss behavior,
#: egress-scheduling fairness and latency/occupancy *distributions*
#: (telemetry) the paper's tables never measure.
KINDS: Tuple[str, ...] = ("table", "figure", "headline", "sweep", "ablation",
                          "overload", "qos", "latency")

#: What ``engine="fast"`` resolves to for a scenario -- the capability
#: matrix of README "Execution engines":
#:
#: * ``"none"``   -- closed-form / functional; no engine degree of freedom,
#: * ``"kernel"`` -- calendar-queue DES kernel (vs heapq reference),
#: * ``"bank"``   -- batched DDR bank model (:mod:`repro.mem.fastpath`),
#: * ``"stream"`` -- DES-free MMS command-stream machine
#:   (:mod:`repro.engines`),
#: * ``"mixed"``  -- several of the above behind one scenario (e.g. the
#:   headline runs the stream machine and the DES kernel side by side).
FASTPATHS: Tuple[str, ...] = ("none", "kernel", "bank", "stream", "mixed")

_T = TypeVar("_T")

#: A run-length knob: ``(full_value, fast_value)``.
Budgeted = Tuple[_T, _T]


def canonical_value(value: Any) -> Any:
    """Normalize a spec field value to a canonical JSON shape.

    Dataclasses become ``{"__type__": ClassName, <fields>}`` objects (so
    two structurally-equal payloads of *different* spec types can never
    alias), tuples become lists, frozensets become sorted lists, and
    enums collapse to their values.  Dict key order is irrelevant by
    construction: :meth:`ScenarioSpec.spec_hash` serializes with
    ``sort_keys=True``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        d: dict = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            d[f.name] = canonical_value(getattr(value, f.name))
        return d
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, (frozenset, set)):
        return sorted(str(v) for v in value)
    if hasattr(value, "value") and type(value).__module__ != "builtins":
        return canonical_value(value.value)  # enum member
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"spec field value {value!r} has no canonical JSON form")


@dataclass(frozen=True)
class TrafficSpec:
    """The offered traffic / command stream of a scenario.

    Only the fields relevant to a scenario's workload are consulted by
    its executor; the rest keep their neutral defaults.
    """

    #: DDR access-stream length (Table 1 style), as a (full, fast) pair.
    num_accesses: Budgeted[int] = (0, 0)
    #: MMS load-harness volleys and warm-up, as (full, fast) pairs.
    num_volleys: Budgeted[int] = (0, 0)
    warmup_volleys: Budgeted[int] = (0, 0)
    #: MMS saturation command count, as a (full, fast) pair.
    num_commands: Budgeted[int] = (0, 0)
    #: Offered loads in Gbps (Table 5 axis), as a (full, fast) pair of
    #: tuples.
    loads_gbps: Budgeted[Tuple[float, ...]] = ((), ())
    #: IXP queue-count axis, as a (full, fast) pair of tuples.
    queue_counts: Budgeted[Tuple[int, ...]] = ((), ())
    #: IXP microengine counts exercised (not budgeted).
    engine_counts: Tuple[int, ...] = ()
    #: NPU CPU-clock axis in MHz (Section 5.4 rule of thumb).
    clocks_mhz: Tuple[float, ...] = ()
    #: MMS load-harness flow fan-out and burstiness.
    active_flows: int = 512
    burst_len: int = 4
    burst_prob: float = 0.25
    #: Overload traffic shape (one of
    #: :data:`repro.policies.harness.SHAPES`); empty for scenarios
    #: without shaped overload traffic.
    pattern: str = ""

    def __post_init__(self) -> None:
        # A typo'd shape must fail at spec construction, like unknown
        # engines/budgets/scenarios do -- not at run time (or worse,
        # silently, in a hand-built spec that never reaches a harness).
        if self.pattern and self.pattern not in SHAPES:
            raise ValueError(
                f"unknown traffic pattern {self.pattern!r} "
                f"(choose from {SHAPES}, or \"\" for unshaped traffic)")


@dataclass(frozen=True)
class MemorySpec:
    """The memory backend under test."""

    #: Backend family: "ddr" (banked DRAM data memory), "sram"/"zbt"
    #: (pointer memory), "none" for closed-form scenarios.
    backend: str = "ddr"
    #: Bank counts exercised (Table 1 axis; single-element for most).
    banks: Tuple[int, ...] = (8,)
    #: DDR timing facts (paper footnotes 1-2).
    timing: DdrTiming = DdrTiming()


@dataclass(frozen=True)
class SchedulerSpec:
    """Scheduler/policy flags of the scenario."""

    #: DDR front-end: reordering (True) vs serializing (False).
    optimized: bool = True
    #: Model the write-after-read data-bus turnaround.
    model_rw_turnaround: bool = False
    #: Reordering-scheduler issue-history depth (paper uses 3).
    history_depth: int = 3
    #: Ablation A4: prefer same-direction accesses.
    prefer_same_type: bool = False
    #: IXP hardware multithreading ablation.
    multithreading: bool = False
    #: MMS ablation A5: overlap data transfers with pointer work.
    overlap_data: bool = True
    #: Ablation axes (history depths / per-port FIFO depths to sweep).
    history_depths: Tuple[int, ...] = ()
    fifo_depths: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: everything but the code.

    ``supports`` names the knobs the scenario honors (subset of
    ``{"engine", "seed", "budget", "mms"}``); :meth:`with_options`
    applies overrides for supported knobs and ignores the rest, so a
    uniform CLI invocation like ``run all --engine reference`` is valid
    across closed-form and simulation scenarios alike.
    """

    name: str
    kind: str
    title: str
    workload: str
    description: str = ""
    engine: str = "fast"
    seed: int = 2005
    budget: str = "full"
    traffic: TrafficSpec = TrafficSpec()
    memory: MemorySpec = MemorySpec()
    sched: SchedulerSpec = SchedulerSpec()
    #: Optional MMS build-time configuration (Table 5 style scenarios).
    mms: Optional[MmsConfig] = None
    #: Buffer-management policy (the ``overload-*`` and ``latency-*``
    #: families).
    policy: Optional[PolicySpec] = None
    #: Streaming telemetry (:mod:`repro.telemetry`): None = probes
    #: structurally absent; a :class:`TelemetrySpec` enables the
    #: standard probe and lands its snapshot in
    #: ``RunResult.metrics["telemetry"]``.  The ``latency-*`` family
    #: has it on by default; scenarios declaring ``"telemetry"`` in
    #: ``supports`` accept it as a knob (CLI ``--telemetry``).
    telemetry: Optional[TelemetrySpec] = None
    #: Span tracing (:mod:`repro.trace`): None = tracer structurally
    #: absent; a :class:`TraceSpec` enables the span collector and lands
    #: its snapshot in ``RunResult.metrics["trace"]``.  Off by default
    #: everywhere; scenarios declaring ``"trace"`` in ``supports``
    #: accept it as a knob (CLI ``--trace``).
    trace: Optional[TraceSpec] = None
    supports: FrozenSet[str] = frozenset()
    #: Capability flag: what ``engine="fast"`` resolves to (see
    #: :data:`FASTPATHS`).  Scenarios the stream machine cannot batch
    #: declare ``"kernel"`` and fall through to the DES kernel.
    fastpath: str = "none"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r} (choose from {KINDS})")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {ENGINES})")
        if self.budget not in BUDGETS:
            raise ValueError(
                f"unknown budget {self.budget!r} (choose from {BUDGETS})")
        unknown = self.supports - {"engine", "seed", "budget", "mms",
                                   "telemetry", "trace"}
        if unknown:
            raise ValueError(f"unknown supports entries: {sorted(unknown)}")
        if self.telemetry is not None and "telemetry" not in self.supports:
            raise ValueError(
                "a scenario carrying a TelemetrySpec must declare "
                "'telemetry' in supports")
        if self.trace is not None and "trace" not in self.supports:
            raise ValueError(
                "a scenario carrying a TraceSpec must declare "
                "'trace' in supports")
        if self.fastpath not in FASTPATHS:
            raise ValueError(
                f"unknown fastpath {self.fastpath!r} (choose from "
                f"{FASTPATHS})")
        if ("engine" in self.supports) == (self.fastpath == "none"):
            raise ValueError(
                "fastpath must be 'none' exactly when the scenario has no "
                f"engine knob (got {self.fastpath!r} with supports="
                f"{sorted(self.supports)})")

    # ------------------------------------------------------------ helpers

    def pick(self, pair: Budgeted[_T]) -> _T:
        """Resolve a ``(full, fast)`` run-length pair for this budget."""
        return pair[0] if self.budget == "full" else pair[1]

    def with_options(self, engine: Optional[str] = None,
                     seed: Optional[int] = None,
                     budget: Optional[str] = None,
                     mms: Optional[MmsConfig] = None,
                     telemetry: Optional[TelemetrySpec] = None,
                     trace: Optional[TraceSpec] = None
                     ) -> "ScenarioSpec":
        """A copy with the given knobs applied where supported.

        Knob *values* are always validated -- an unknown engine or
        budget is rejected even when the scenario would ignore the knob
        (a typo must not silently succeed).  Overrides for knobs the
        scenario does not declare in ``supports`` are then ignored --
        the scenario has no such degree of freedom (e.g. Table 4 is
        closed-form), and uniform ``run all`` invocations must stay
        valid.  ``telemetry`` turns probing *on* -- or re-tunes a
        scenario whose telemetry is already on (an explicit spec
        overrides, like every other supported knob).  There is
        deliberately no off-switch: omit the knob to keep the
        scenario's own setting.  ``trace`` follows the identical
        discipline.
        """
        if engine is not None and engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (choose from {ENGINES})")
        if budget is not None and budget not in BUDGETS:
            raise ValueError(
                f"unknown budget {budget!r} (choose from {BUDGETS})")
        if telemetry is not None and not isinstance(telemetry, TelemetrySpec):
            raise ValueError(
                f"telemetry must be a TelemetrySpec, got {telemetry!r}")
        if trace is not None and not isinstance(trace, TraceSpec):
            raise ValueError(
                f"trace must be a TraceSpec, got {trace!r}")
        changes = {}
        if engine is not None and "engine" in self.supports:
            changes["engine"] = engine
        if seed is not None and "seed" in self.supports:
            changes["seed"] = seed
        if budget is not None and "budget" in self.supports:
            changes["budget"] = budget
        if mms is not None and "mms" in self.supports:
            changes["mms"] = mms
        if telemetry is not None and "telemetry" in self.supports:
            changes["telemetry"] = telemetry
        if trace is not None and "trace" in self.supports:
            changes["trace"] = trace
        if not changes:
            return self
        return dataclasses.replace(self, **changes)

    @property
    def effective_engine(self) -> str:
        """The engine label results should carry: the selected engine
        for simulation scenarios, ``"n/a"`` for closed-form ones."""
        return self.engine if "engine" in self.supports else "n/a"

    def canonical_dict(self) -> dict:
        """The spec as a canonical JSON-ready object (every field,
        nested sub-specs included, via :func:`canonical_value`)."""
        return canonical_value(self)  # type: ignore[no-any-return]

    def spec_hash(self) -> str:
        """Stable content hash of this resolved spec (hex SHA-256).

        The cache-key primitive of :mod:`repro.serve`: two specs hash
        equal iff every field (engine, seed, budget, traffic, memory,
        scheduler, policy, telemetry, trace, ...) is equal, and the
        hash is insensitive to dict/set ordering (canonical JSON with
        sorted keys).  Any field change -- however deep -- changes the
        hash, so a cached result can never be served for a different
        experiment.
        """
        text = json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()
