"""Unified Scenario/Runner API: declarative experiment specifications.

Every published artifact of the paper -- Tables 1-5, the architecture
figures, the headline claims, the parameter sweeps and the ablations --
is a registered *scenario*: a frozen :class:`ScenarioSpec` (traffic,
workload, memory backend, scheduler flags, engine, run-length budget,
seed) bound to an executor.  The :class:`Runner` executes a spec into a
typed :class:`RunResult` (structured metrics, paper-comparison deltas,
wall-clock, engine used) that round-trips through JSON; rendering is a
separate presenter concern (:func:`render`).

Typical use::

    from repro.scenarios import Runner, render, scenario_names

    result = Runner().run("table1", engine="reference", seed=7, fast=True)
    print(render(result))            # the paper-vs-model table
    result.metrics["banks8"]         # structured values
    blob = result.to_json()          # round-trips via RunResult.from_json

The CLI front-end is ``repro-experiments list | run | sweep``
(:mod:`repro.analysis.cli`).
"""

from repro.scenarios.spec import (
    BUDGETS,
    ENGINES,
    KINDS,
    MemorySpec,
    ScenarioSpec,
    SchedulerSpec,
    TrafficSpec,
)
from repro.scenarios.result import (
    Block,
    Outcome,
    RESULT_SCHEMA,
    RunResult,
    paper_delta,
    validate_result_dict,
)
from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    scenarios_of_kind,
)
from repro.scenarios.runner import Runner
from repro.scenarios.presenter import render, render_block
from repro.telemetry import TelemetrySpec

__all__ = [
    "ENGINES",
    "BUDGETS",
    "KINDS",
    "TrafficSpec",
    "MemorySpec",
    "SchedulerSpec",
    "ScenarioSpec",
    "Block",
    "Outcome",
    "RunResult",
    "RESULT_SCHEMA",
    "paper_delta",
    "validate_result_dict",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenarios_of_kind",
    "all_scenarios",
    "Runner",
    "render",
    "render_block",
    "TelemetrySpec",
]
