"""The Runner: execute a scenario spec, return a typed result.

The Runner is the single execution path for every published artifact:
the CLI, the benchmarks, the deprecated ``run_tableN`` shims and the
examples all funnel through :meth:`Runner.run`.  Knob overrides
(``engine``, ``seed``, ``budget``/``fast``, ``mms``) are applied through
:meth:`ScenarioSpec.with_options`, so each scenario honors exactly the
knobs it declares.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

from repro.core.mms import MmsConfig
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.result import RunResult, jsonify
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry import TelemetrySpec
from repro.trace.spans import TraceSpec


class Runner:
    """Executes registered scenarios (or ad-hoc resolved specs).

    ``events`` is an optional :class:`repro.monitor.events.EventSink`:
    when present, every run emits ``run.start`` / ``run.finish`` /
    ``run.fail`` lifecycle events to it.  Like every monitoring knob it
    defaults to off, and the plain path never imports
    :mod:`repro.monitor` at all (the ``bench_monitor`` gate asserts
    this structurally).
    """

    def __init__(self, events=None) -> None:
        self.events = events

    def run(self, name: str, *,
            engine: Optional[str] = None,
            seed: Optional[int] = None,
            budget: Optional[str] = None,
            fast: Optional[bool] = None,
            mms: Optional[MmsConfig] = None,
            telemetry=None, trace=None,
            resources: bool = False) -> RunResult:
        """Run one scenario by name with optional knob overrides.

        ``fast`` is sugar for ``budget="fast"`` / ``"full"`` and must
        not be combined with an explicit ``budget``.  ``telemetry``
        enables the streaming probe for scenarios that support it:
        ``True`` for the default :class:`TelemetrySpec`, or an explicit
        spec; the snapshot lands in ``result.metrics["telemetry"]``.
        There is no off-switch (the ``latency-*`` family is always
        probed); passing ``False`` is rejected rather than silently
        ignored.  ``trace`` follows the same discipline with
        :class:`TraceSpec`, landing in ``result.metrics["trace"]``.
        ``resources=True`` profiles the run's rusage delta (CPU
        seconds, max RSS, wall) into ``result.metrics["resources"]``.
        """
        if fast is not None:
            if budget is not None:
                raise ValueError("pass either fast= or budget=, not both")
            budget = "fast" if fast else "full"
        if telemetry is True:
            telemetry = TelemetrySpec()
        if trace is True:
            trace = TraceSpec()
        scenario = get_scenario(name)
        spec = scenario.spec.with_options(engine=engine, seed=seed,
                                          budget=budget, mms=mms,
                                          telemetry=telemetry, trace=trace)
        return self.run_spec(spec, resources=resources)

    def run_spec(self, spec: ScenarioSpec, *,
                 resources: bool = False) -> RunResult:
        """Run an already-resolved spec (must be a registered name)."""
        scenario = get_scenario(spec.name)
        profiler = None
        if resources:
            from repro.monitor.resources import ResourceProfiler
            profiler = ResourceProfiler()
        if self.events is not None:
            self.events.emit("run", "start", spec.name,
                             scenario=spec.name,
                             engine=spec.effective_engine,
                             seed=spec.seed,
                             extra={"budget": spec.budget})
        t0 = time.perf_counter()
        try:
            outcome = scenario.execute(spec)
        except BaseException as exc:
            if self.events is not None:
                self.events.emit(
                    "run", "fail", spec.name, scenario=spec.name,
                    engine=spec.effective_engine, seed=spec.seed,
                    extra={"reason": f"{type(exc).__name__}: {exc}"})
            raise
        wall = time.perf_counter() - t0
        metrics = jsonify(outcome.metrics)
        if profiler is not None:
            metrics["resources"] = profiler.profile()
        result = RunResult(
            scenario=spec.name,
            kind=spec.kind,
            engine=spec.effective_engine,
            seed=spec.seed,
            budget=spec.budget,
            wall_clock_s=wall,
            metrics=metrics,
            paper_deltas=jsonify(outcome.paper_deltas),
            blocks=outcome.blocks,
        )
        if self.events is not None:
            extra = {"wall_clock_s": round(wall, 6)}
            if profiler is not None:
                extra["resources"] = metrics["resources"]
            self.events.emit("run", "finish", spec.name,
                             scenario=spec.name,
                             engine=spec.effective_engine,
                             seed=spec.seed, extra=extra)
        return result

    def run_many(self, names: Optional[Iterable[str]] = None, *,
                 engine: Optional[str] = None,
                 seed: Optional[int] = None,
                 budget: Optional[str] = None,
                 fast: Optional[bool] = None,
                 telemetry=None, trace=None,
                 resources: bool = False) -> List[RunResult]:
        """Run several scenarios (default: every registered one)."""
        if names is None:
            names = scenario_names()
        return [self.run(n, engine=engine, seed=seed, budget=budget,
                         fast=fast, telemetry=telemetry, trace=trace,
                         resources=resources)
                for n in names]
