"""Typed experiment results with JSON round-tripping.

A scenario executor returns an :class:`Outcome` (metrics + presentation
blocks + paper deltas); the :class:`~repro.scenarios.runner.Runner`
stamps it with the resolved spec knobs and wall-clock into a
:class:`RunResult`.  Results are plain data: rendering lives in
:mod:`repro.scenarios.presenter`, serialization here
(:meth:`RunResult.to_json` / :meth:`RunResult.from_json` round-trip
exactly, floats included).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Schema version of the serialized form.
RESULT_SCHEMA = 1

from repro.scenarios.spec import BUDGETS, ENGINES

_BLOCK_KINDS = ("table", "comparison", "text")

#: Engines a serialized result may carry ("n/a" = closed-form scenario).
_RESULT_ENGINES = ENGINES + ("n/a",)


@dataclass(frozen=True)
class Block:
    """One presentation unit: an aligned table, a paper-vs-model
    comparison table (rendered with a delta column), or raw text."""

    kind: str
    title: Optional[str] = None
    headers: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Any, ...], ...] = ()
    paper_col: int = -1
    model_col: int = -1
    text: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _BLOCK_KINDS:
            raise ValueError(
                f"unknown block kind {self.kind!r} (choose from {_BLOCK_KINDS})")

    # ------------------------------------------------------- constructors

    @classmethod
    def table(cls, headers: Sequence[str], rows: Sequence[Sequence[Any]],
              title: Optional[str] = None) -> "Block":
        return cls(kind="table", title=title, headers=tuple(headers),
                   rows=tuple(tuple(r) for r in rows))

    @classmethod
    def comparison(cls, headers: Sequence[str], rows: Sequence[Sequence[Any]],
                   paper_col: int, model_col: int,
                   title: Optional[str] = None) -> "Block":
        return cls(kind="comparison", title=title, headers=tuple(headers),
                   rows=tuple(tuple(r) for r in rows),
                   paper_col=paper_col, model_col=model_col)

    @classmethod
    def raw_text(cls, text: str, title: Optional[str] = None) -> "Block":
        return cls(kind="text", title=title, text=text)

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind, "title": self.title}
        if self.kind == "text":
            d["text"] = self.text
        else:
            d["headers"] = list(self.headers)
            d["rows"] = [list(r) for r in self.rows]
            if self.kind == "comparison":
                d["paper_col"] = self.paper_col
                d["model_col"] = self.model_col
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Block":
        kind = d["kind"]
        if kind == "text":
            return cls(kind="text", title=d.get("title"), text=d["text"])
        return cls(kind=kind, title=d.get("title"),
                   headers=tuple(d["headers"]),
                   rows=tuple(tuple(r) for r in d["rows"]),
                   paper_col=d.get("paper_col", -1),
                   model_col=d.get("model_col", -1))


@dataclass
class Outcome:
    """What an executor computes: values, presentation, paper deltas."""

    metrics: Dict[str, Any]
    blocks: Tuple[Block, ...]
    paper_deltas: Dict[str, float] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of one scenario run, stamped with how it was produced."""

    scenario: str
    kind: str
    engine: str
    seed: int
    budget: str
    wall_clock_s: float
    metrics: Dict[str, Any]
    paper_deltas: Dict[str, float]
    blocks: Tuple[Block, ...]
    schema: int = RESULT_SCHEMA

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "scenario": self.scenario,
            "kind": self.kind,
            "engine": self.engine,
            "seed": self.seed,
            "budget": self.budget,
            "wall_clock_s": self.wall_clock_s,
            "metrics": jsonify(self.metrics),
            "paper_deltas": jsonify(self.paper_deltas),
            "blocks": [b.to_dict() for b in self.blocks],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunResult":
        schema = d.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(f"unsupported result schema {schema!r}")
        # Reject unknown names instead of deserializing garbage: a typo
        # in a hand-edited document must fail loudly, not round-trip.
        engine = d["engine"]
        if engine not in _RESULT_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (choose from {_RESULT_ENGINES})")
        budget = d["budget"]
        if budget not in BUDGETS:
            raise ValueError(
                f"unknown budget {budget!r} (choose from {BUDGETS})")
        from repro.scenarios.registry import scenario_names
        known = scenario_names()
        if d["scenario"] not in known:
            raise ValueError(
                f"unknown scenario {d['scenario']!r}; known: "
                f"{', '.join(known)}")
        return cls(
            scenario=d["scenario"],
            kind=d["kind"],
            engine=d["engine"],
            seed=d["seed"],
            budget=d["budget"],
            wall_clock_s=d["wall_clock_s"],
            metrics=dict(d["metrics"]),
            paper_deltas=dict(d["paper_deltas"]),
            blocks=tuple(Block.from_dict(b) for b in d["blocks"]),
            schema=schema,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))


def jsonify(value: Any) -> Any:
    """Normalize a metrics value to plain JSON types (tuples -> lists),
    so ``RunResult`` equality survives a JSON round-trip."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"metrics value {value!r} is not JSON-serializable")


def paper_delta(paper: float, model: float) -> float:
    """Relative model-vs-paper delta (absolute when the paper value is
    zero), mirroring the presenter's delta column."""
    if paper == 0:
        return model - paper
    return (model - paper) / paper


def validate_result_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of one serialized :class:`RunResult`.

    Returns a list of human-readable problems (empty = valid).  Kept
    dependency-free on purpose -- no jsonschema in the container.
    """
    problems: List[str] = []

    def expect(key: str, types) -> None:
        if key not in d:
            problems.append(f"missing key {key!r}")
        elif not isinstance(d[key], types):
            problems.append(f"{key!r} has type {type(d[key]).__name__}")

    def ok(key: str, types) -> bool:
        return key in d and isinstance(d[key], types)

    expect("schema", int)
    expect("scenario", str)
    expect("kind", str)
    expect("engine", str)
    expect("seed", int)
    expect("budget", str)
    expect("wall_clock_s", (int, float))
    expect("metrics", dict)
    expect("paper_deltas", dict)
    expect("blocks", list)
    if ok("metrics", dict) and "telemetry" in d["metrics"]:
        # Telemetry payloads are schema'd too (one snapshot, or one per
        # load for multi-load scenarios like table5).
        from repro.telemetry import validate_telemetry_dict
        payload = d["metrics"]["telemetry"]
        if not isinstance(payload, dict):
            problems.append("metrics.telemetry not an object")
        elif "schema" in payload:
            problems.extend(f"metrics.telemetry: {p}"
                            for p in validate_telemetry_dict(payload))
        else:
            for key, snap in payload.items():
                if not isinstance(snap, dict):
                    problems.append(
                        f"metrics.telemetry[{key!r}] not an object")
                    continue
                problems.extend(f"metrics.telemetry[{key!r}]: {p}"
                                for p in validate_telemetry_dict(snap))
    if ok("metrics", dict) and "trace" in d["metrics"]:
        # Trace payloads follow the same shape discipline (one snapshot,
        # or one per load for multi-load scenarios like table5).
        from repro.trace.spans import validate_trace_dict
        payload = d["metrics"]["trace"]
        if not isinstance(payload, dict):
            problems.append("metrics.trace not an object")
        elif "schema" in payload:
            problems.extend(f"metrics.trace: {p}"
                            for p in validate_trace_dict(payload))
        else:
            for key, snap in payload.items():
                if not isinstance(snap, dict):
                    problems.append(f"metrics.trace[{key!r}] not an object")
                    continue
                problems.extend(f"metrics.trace[{key!r}]: {p}"
                                for p in validate_trace_dict(snap))
    if ok("schema", int) and d["schema"] != RESULT_SCHEMA:
        problems.append(f"schema {d['schema']} != {RESULT_SCHEMA}")
    if ok("engine", str) and d["engine"] not in _RESULT_ENGINES:
        problems.append(f"engine {d['engine']!r} invalid")
    if ok("budget", str) and d["budget"] not in BUDGETS:
        problems.append(f"budget {d['budget']!r} invalid")
    if ok("paper_deltas", dict):
        for k, v in d["paper_deltas"].items():
            if not isinstance(v, (int, float)):
                problems.append(f"paper_deltas[{k!r}] not numeric")
    if ok("blocks", list):
        for i, b in enumerate(d["blocks"]):
            if not isinstance(b, dict) or b.get("kind") not in _BLOCK_KINDS:
                problems.append(f"blocks[{i}] malformed")
                continue
            if b["kind"] == "text" and not isinstance(b.get("text"), str):
                problems.append(f"blocks[{i}] text missing")
            if b["kind"] != "text":
                if not isinstance(b.get("headers"), list) \
                        or not isinstance(b.get("rows"), list):
                    problems.append(f"blocks[{i}] table malformed")
                else:
                    width = len(b["headers"])
                    for j, row in enumerate(b["rows"]):
                        if not isinstance(row, list) or len(row) != width:
                            problems.append(
                                f"blocks[{i}].rows[{j}] width != {width}")
    return problems
