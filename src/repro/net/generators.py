"""Synthetic traffic generators.

Each generator yields an infinite stream of :class:`TimedPacket` --
``(arrival_ps, Packet)`` -- deterministically from an explicit RNG.  The
paper's evaluations need:

* worst-case back-to-back 64-byte frames (:func:`cbr_stream`),
* randomized per-flow traffic across many queues (flow choosers),
* bursty arrivals that stress the MMS per-port command FIFOs
  (:func:`onoff_stream`; Table 5's "bursts of commands that may arrive
  simultaneously"),
* a realistic size mix (:func:`imix_stream`) for the application demos.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.net.ethernet import wire_time_ps
from repro.net.flows import FlowChooser
from repro.net.packet import Packet
from repro.sim.clock import SEC


@dataclass(frozen=True)
class TimedPacket:
    """A packet with its arrival timestamp."""

    arrival_ps: int
    packet: Packet

#: Standard IMIX (simple): 7 x 64 B : 4 x 594 B : 1 x 1518 B.
IMIX_MIX: Sequence[tuple[int, int]] = ((64, 7), (594, 4), (1518, 1))


def cbr_stream(rate_gbps: float, length_bytes: int = 64,
               flow_chooser: Optional[FlowChooser] = None,
               rng: Optional[random.Random] = None,
               include_overhead: bool = False,
               start_ps: int = 0) -> Iterator[TimedPacket]:
    """Constant-bit-rate stream of fixed-size packets.

    At ``rate_gbps`` equal to the line rate this is the worst-case
    back-to-back minimum-frame stream of Sections 4-5.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate_gbps must be positive, got {rate_gbps}")
    rng = rng or random.Random(0)
    chooser = flow_chooser or (lambda _rng: 0)
    gap = wire_time_ps(length_bytes, rate_gbps) if include_overhead else \
        _raw_gap_ps(length_bytes, rate_gbps)
    t = start_ps
    while True:
        yield TimedPacket(t, Packet(length_bytes, flow_id=chooser(rng)))
        t += gap


def poisson_stream(rate_pps: float, length_bytes: int = 64,
                   flow_chooser: Optional[FlowChooser] = None,
                   rng: Optional[random.Random] = None,
                   start_ps: int = 0) -> Iterator[TimedPacket]:
    """Poisson arrivals at ``rate_pps`` packets per second."""
    if rate_pps <= 0:
        raise ValueError(f"rate_pps must be positive, got {rate_pps}")
    rng = rng or random.Random(0)
    chooser = flow_chooser or (lambda _rng: 0)
    mean_gap = SEC / rate_pps
    t = float(start_ps)
    while True:
        t += rng.expovariate(1.0) * mean_gap
        yield TimedPacket(round(t), Packet(length_bytes, flow_id=chooser(rng)))


def onoff_stream(rate_gbps: float, burst_len: int = 8, idle_factor: float = 1.0,
                 length_bytes: int = 64,
                 flow_chooser: Optional[FlowChooser] = None,
                 rng: Optional[random.Random] = None,
                 start_ps: int = 0) -> Iterator[TimedPacket]:
    """On/off bursty stream with long-run average rate ``rate_gbps``.

    During ON periods, ``burst_len`` packets arrive back-to-back at an
    instantaneous rate ``(1 + idle_factor)`` times the average; the OFF
    period then restores the average.  This is the arrival process that
    fills the MMS per-port FIFOs and produces Table 5's FIFO delay.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate_gbps must be positive, got {rate_gbps}")
    if burst_len < 1:
        raise ValueError(f"burst_len must be >= 1, got {burst_len}")
    if idle_factor < 0:
        raise ValueError(f"idle_factor must be >= 0, got {idle_factor}")
    rng = rng or random.Random(0)
    chooser = flow_chooser or (lambda _rng: 0)
    avg_gap = _raw_gap_ps(length_bytes, rate_gbps)
    on_gap = max(1, round(avg_gap / (1.0 + idle_factor)))
    t = start_ps
    while True:
        # geometric burst length around burst_len
        n = 1 + int(rng.expovariate(1.0 / max(burst_len - 1, 1e-9))) \
            if burst_len > 1 else 1
        for _ in range(n):
            yield TimedPacket(t, Packet(length_bytes, flow_id=chooser(rng)))
            t += on_gap
        # idle long enough to restore the average rate
        t += (avg_gap - on_gap) * n


def imix_stream(rate_gbps: float,
                mix: Sequence[tuple[int, int]] = IMIX_MIX,
                flow_chooser: Optional[FlowChooser] = None,
                rng: Optional[random.Random] = None,
                start_ps: int = 0) -> Iterator[TimedPacket]:
    """Random packet-size mix at an average bit rate.

    ``mix`` is a sequence of ``(length_bytes, weight)``; the default is
    the classic 7:4:1 simple IMIX.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate_gbps must be positive, got {rate_gbps}")
    if not mix:
        raise ValueError("mix must be non-empty")
    rng = rng or random.Random(0)
    chooser = flow_chooser or (lambda _rng: 0)
    lengths = [l for l, _w in mix]
    weights = [w for _l, w in mix]
    t = float(start_ps)
    while True:
        length = rng.choices(lengths, weights=weights)[0]
        yield TimedPacket(round(t), Packet(length, flow_id=chooser(rng)))
        t += _raw_gap_ps(length, rate_gbps)


def merge_streams(*streams: Iterator[TimedPacket]) -> Iterator[TimedPacket]:
    """Merge timed streams into one, ordered by arrival time.

    Models several physical ports feeding one queue manager (the MMS
    In/Out/CPU interfaces).
    """
    if not streams:
        raise ValueError("at least one stream required")
    return heapq.merge(*streams, key=lambda tp: tp.arrival_ps)


def _raw_gap_ps(length_bytes: int, rate_gbps: float) -> int:
    """Inter-arrival gap using the paper's raw-frame-bits convention."""
    return max(1, round(length_bytes * 8 / rate_gbps * 1000))
