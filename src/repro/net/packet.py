"""Packet abstraction shared by every model in the repo.

A :class:`Packet` is deliberately minimal: identity, flow, length and a
free-form ``fields`` mapping for application state (MAC addresses, VLAN
tags, IP 5-tuples...).  The models never inspect payload bytes -- the
paper's systems move segments, not semantics -- so no payload is stored.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

#: The fixed segment size every system in the paper uses: "the incoming
#: data items are partitioned into fixed size segments of 64 bytes each".
SEGMENT_BYTES = 64

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One network packet.

    Attributes
    ----------
    length_bytes:
        Frame length (Ethernet: 64-1518 for the standard range).
    flow_id:
        The flow/queue this packet belongs to.  "Most modern networking
        technologies share the notion of connections or flows"; queue
        managers map each packet to a flow queue.
    pid:
        Unique packet id (auto-assigned).
    fields:
        Application-level header fields (used by :mod:`repro.apps`).
    """

    length_bytes: int
    flow_id: int = 0
    pid: int = field(default_factory=lambda: next(_packet_ids))
    fields: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError(f"length_bytes must be positive, got {self.length_bytes}")
        if self.flow_id < 0:
            raise ValueError(f"flow_id must be >= 0, got {self.flow_id}")

    @property
    def num_segments(self) -> int:
        """Number of 64-byte segments this packet occupies."""
        return -(-self.length_bytes // SEGMENT_BYTES)

    def segment_lengths(self) -> list[int]:
        """Byte length of each segment; only the last may be short."""
        full, rem = divmod(self.length_bytes, SEGMENT_BYTES)
        lengths = [SEGMENT_BYTES] * full
        if rem:
            lengths.append(rem)
        return lengths

    def with_fields(self, **updates: Any) -> "Packet":
        """Copy of this packet with ``fields`` updated (headers rewritten).

        Used by the application models for NAT, encapsulation and header
        modification; identity (pid) is preserved because the MMS
        overwrite command modifies segments in place.
        """
        merged = dict(self.fields)
        merged.update(updates)
        return Packet(length_bytes=self.length_bytes, flow_id=self.flow_id,
                      pid=self.pid, fields=merged)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Packet(pid={self.pid}, flow={self.flow_id}, len={self.length_bytes})"
