"""Network traffic substrate.

The paper's evaluations are driven by network traffic: worst-case 64-byte
Ethernet packets (Sections 4-5), per-flow queued traffic over up to 32 K
flows (Section 6), and ATM cells for the application list.  This package
provides the packet/flow abstractions and synthetic generators that stand
in for the authors' physical traffic sources (see DESIGN.md,
substitutions table).
"""

from repro.net.packet import Packet, SEGMENT_BYTES
from repro.net.ethernet import (
    ETHERNET_IFG_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERNET_PREAMBLE_BYTES,
    line_rate_pps,
    packet_service_time_ps,
    pps_to_gbps,
    wire_time_ps,
)
from repro.net.atm import ATM_CELL_BYTES, ATM_PAYLOAD_BYTES, AtmCell, segment_into_cells
from repro.net.flows import FlowTable, uniform_flow_chooser, zipf_flow_chooser
from repro.net.generators import (
    TimedPacket,
    cbr_stream,
    imix_stream,
    merge_streams,
    onoff_stream,
    poisson_stream,
)
from repro.net.trace import PacketTrace

__all__ = [
    "Packet",
    "SEGMENT_BYTES",
    "ETHERNET_MIN_FRAME_BYTES",
    "ETHERNET_PREAMBLE_BYTES",
    "ETHERNET_IFG_BYTES",
    "wire_time_ps",
    "packet_service_time_ps",
    "line_rate_pps",
    "pps_to_gbps",
    "ATM_CELL_BYTES",
    "ATM_PAYLOAD_BYTES",
    "AtmCell",
    "segment_into_cells",
    "FlowTable",
    "uniform_flow_chooser",
    "zipf_flow_chooser",
    "TimedPacket",
    "cbr_stream",
    "poisson_stream",
    "onoff_stream",
    "imix_stream",
    "merge_streams",
    "PacketTrace",
]
