"""Packet trace recording and inspection.

A :class:`PacketTrace` accumulates the packets seen at an observation
point (a MAC, a queue output, an MMS port) with their timestamps and
answers rate/flow questions.  Experiments use traces to verify
conservation (everything enqueued is eventually dequeued, in order per
flow) and to compute achieved throughput.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.net.packet import Packet
from repro.sim.clock import SEC


class PacketTrace:
    """Timestamped record of packets at an observation point."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.times_ps: List[int] = []
        self.packets: List[Packet] = []

    def record(self, time_ps: int, packet: Packet) -> None:
        if self.times_ps and time_ps < self.times_ps[-1]:
            raise ValueError(
                f"{self.name}: non-monotone record at {time_ps} "
                f"(last {self.times_ps[-1]})"
            )
        self.times_ps.append(time_ps)
        self.packets.append(packet)

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def total_bytes(self) -> int:
        return sum(p.length_bytes for p in self.packets)

    @property
    def duration_ps(self) -> int:
        if len(self.times_ps) < 2:
            return 0
        return self.times_ps[-1] - self.times_ps[0]

    def rate_pps(self) -> float:
        """Mean packet rate over the trace span."""
        if self.duration_ps == 0:
            return 0.0
        return (len(self) - 1) * SEC / self.duration_ps

    def rate_gbps(self) -> float:
        """Mean bit rate (raw frame bits) over the trace span."""
        if self.duration_ps == 0:
            return 0.0
        bits = sum(p.length_bytes for p in self.packets[1:]) * 8
        return bits * 1000 / self.duration_ps  # bits/ns = Gbps

    def per_flow_pids(self) -> Dict[int, List[int]]:
        """Packet ids grouped by flow, in observation order."""
        flows: Dict[int, List[int]] = defaultdict(list)
        for p in self.packets:
            flows[p.flow_id].append(p.pid)
        return dict(flows)

    def is_per_flow_order_preserved(self, reference: "PacketTrace") -> bool:
        """True when every flow's pid order matches ``reference``'s.

        Queue managers must never reorder packets within a flow; this is
        the conservation invariant used by the integration tests.
        """
        mine = self.per_flow_pids()
        theirs = reference.per_flow_pids()
        for flow, pids in mine.items():
            ref = [pid for pid in theirs.get(flow, []) if pid in set(pids)]
            if pids != ref:
                return False
        return True
