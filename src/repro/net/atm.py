"""ATM cell handling.

The MMS ancestry is ATM queue management ([2], [3] in the paper) and the
application list includes "ATM switching" and "IP over ATM
internetworking".  ATM moves fixed 53-byte cells with a 48-byte payload;
:func:`segment_into_cells` performs the AAL5-style chop of a packet into
cells (padding the last one), which the ATM switching example app drives
through the MMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet

#: Total ATM cell size on the wire.
ATM_CELL_BYTES = 53
#: Cell payload capacity.
ATM_PAYLOAD_BYTES = 48
#: Cell header size.
ATM_HEADER_BYTES = 5


@dataclass(frozen=True)
class AtmCell:
    """One ATM cell of a segmented packet.

    Attributes
    ----------
    vpi, vci:
        Virtual path / channel identifiers (the flow identity in ATM).
    pid:
        Originating packet id.
    index:
        Cell index within the packet.
    last:
        AAL5 end-of-frame marker (PTI bit).
    payload_bytes:
        Valid payload bytes (< 48 only possible before padding).
    """

    vpi: int
    vci: int
    pid: int
    index: int
    last: bool
    payload_bytes: int

    def __post_init__(self) -> None:
        if not 0 <= self.vpi < 4096:
            raise ValueError(f"vpi {self.vpi} out of range [0, 4096)")
        if not 0 <= self.vci < 65536:
            raise ValueError(f"vci {self.vci} out of range [0, 65536)")
        if not 0 < self.payload_bytes <= ATM_PAYLOAD_BYTES:
            raise ValueError(
                f"payload_bytes must be in (0, {ATM_PAYLOAD_BYTES}], "
                f"got {self.payload_bytes}"
            )


def segment_into_cells(packet: Packet, vpi: int, vci: int,
                       pad_last: bool = True) -> list[AtmCell]:
    """Chop ``packet`` into ATM cells (AAL5-style, padded last cell).

    With ``pad_last`` the final cell always carries a full 48-byte
    payload (zero padding), as AAL5 transmits; without it the final cell
    reports only the valid bytes.
    """
    cells = []
    remaining = packet.length_bytes
    index = 0
    while remaining > 0:
        chunk = min(remaining, ATM_PAYLOAD_BYTES)
        remaining -= chunk
        last = remaining == 0
        payload = ATM_PAYLOAD_BYTES if (pad_last and last) else chunk
        cells.append(
            AtmCell(vpi=vpi, vci=vci, pid=packet.pid, index=index,
                    last=last, payload_bytes=payload)
        )
        index += 1
    return cells


def cells_needed(length_bytes: int) -> int:
    """Number of cells a payload of ``length_bytes`` occupies."""
    if length_bytes <= 0:
        raise ValueError(f"length_bytes must be positive, got {length_bytes}")
    return -(-length_bytes // ATM_PAYLOAD_BYTES)
