"""Ethernet line-rate arithmetic.

The paper's throughput statements use *raw frame bits*: "for a 100 Mbps
network and a minimum packet length of 64 bytes the available time to
serve this packet is 5.12 usec" (64 x 8 / 100 Mbps, no preamble/IFG), and
the IXP1200 claim "300 Kpps ... cannot support more than 150 Mbps"
(300 K x 512 bits = 153.6 Mbps).  :func:`packet_service_time_ps` and
:func:`pps_to_gbps` reproduce that convention; :func:`wire_time_ps` adds
the physical preamble + inter-frame gap for the generators that model a
real wire.
"""

from __future__ import annotations

from repro.sim.clock import SEC

#: Minimum Ethernet frame (the paper's worst case everywhere).
ETHERNET_MIN_FRAME_BYTES = 64
#: Maximum standard frame.
ETHERNET_MAX_FRAME_BYTES = 1518
#: Preamble + SFD.
ETHERNET_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap (96 bit times).
ETHERNET_IFG_BYTES = 12


def packet_service_time_ps(length_bytes: int, rate_gbps: float) -> int:
    """Time budget to serve one packet at a line rate, raw-frame-bits
    convention (the paper's).

    >>> packet_service_time_ps(64, 0.1)   # 5.12 us at 100 Mbps
    5120000
    """
    if length_bytes <= 0:
        raise ValueError(f"length_bytes must be positive, got {length_bytes}")
    if rate_gbps <= 0:
        raise ValueError(f"rate_gbps must be positive, got {rate_gbps}")
    bits = length_bytes * 8
    return round(bits / rate_gbps * 1000)  # Gbps = bits/ns


def wire_time_ps(length_bytes: int, rate_gbps: float) -> int:
    """Occupancy of the physical wire for one frame, including preamble
    and inter-frame gap."""
    total = length_bytes + ETHERNET_PREAMBLE_BYTES + ETHERNET_IFG_BYTES
    return packet_service_time_ps(total, rate_gbps)


def line_rate_pps(rate_gbps: float, length_bytes: int = ETHERNET_MIN_FRAME_BYTES,
                  include_overhead: bool = False) -> float:
    """Packets per second at a line rate for a fixed frame size."""
    per_packet = (wire_time_ps if include_overhead else packet_service_time_ps)(
        length_bytes, rate_gbps
    )
    return SEC / per_packet


def pps_to_gbps(pps: float, length_bytes: int = ETHERNET_MIN_FRAME_BYTES) -> float:
    """Raw-frame-bits throughput of a packet rate.

    >>> round(pps_to_gbps(300_000, 64), 4)   # the paper's IXP claim
    0.1536
    """
    if pps < 0:
        raise ValueError(f"pps must be >= 0, got {pps}")
    return pps * length_bytes * 8 / 1e9
