"""Flow tables and flow-selection distributions.

The number of *simultaneously active* flows is the paper's key workload
parameter: Table 2 sweeps 16 / 128 / 1024 queues, the MMS supports 32 K.
A :class:`FlowTable` names the flow population; the chooser functions
model how traffic spreads over it -- uniformly (the paper's random-bank
assumption) or Zipf-skewed (the hotspot ablations).
"""

from __future__ import annotations

import bisect
import random
from typing import Callable, List

#: A chooser returns a flow id given an RNG.
FlowChooser = Callable[[random.Random], int]


class FlowTable:
    """A population of flows with optional per-flow attributes.

    Attributes such as QoS priority (802.1p class) or output port are
    stored per flow and read by the application models.
    """

    def __init__(self, num_flows: int) -> None:
        if num_flows < 1:
            raise ValueError(f"num_flows must be >= 1, got {num_flows}")
        self.num_flows = num_flows
        self._attrs: dict[int, dict] = {}

    def set_attr(self, flow_id: int, **attrs) -> None:
        self._check(flow_id)
        self._attrs.setdefault(flow_id, {}).update(attrs)

    def get_attr(self, flow_id: int, key: str, default=None):
        self._check(flow_id)
        return self._attrs.get(flow_id, {}).get(key, default)

    def flows(self) -> range:
        return range(self.num_flows)

    def _check(self, flow_id: int) -> None:
        if not 0 <= flow_id < self.num_flows:
            raise ValueError(
                f"flow {flow_id} out of range [0, {self.num_flows})"
            )

    def __len__(self) -> int:
        return self.num_flows


def uniform_flow_chooser(num_flows: int) -> FlowChooser:
    """Every flow equally likely -- the paper's common-case assumption."""
    if num_flows < 1:
        raise ValueError(f"num_flows must be >= 1, got {num_flows}")

    def choose(rng: random.Random) -> int:
        return rng.randrange(num_flows)

    return choose


def zipf_flow_chooser(num_flows: int, s: float = 1.0) -> FlowChooser:
    """Zipf-distributed flow popularity (rank-``i`` weight ``1/i^s``).

    Real traffic concentrates on few flows; the hotspot ablations use
    this to stress bank conflicts and queue-table caching.
    """
    if num_flows < 1:
        raise ValueError(f"num_flows must be >= 1, got {num_flows}")
    if s < 0:
        raise ValueError(f"zipf exponent must be >= 0, got {s}")
    weights = [1.0 / (i + 1) ** s for i in range(num_flows)]
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    total = cumulative[-1]

    def choose(rng: random.Random) -> int:
        x = rng.random() * total
        return bisect.bisect_left(cumulative, x)

    return choose
