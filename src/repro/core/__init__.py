"""The paper's contribution: the FPGA Memory Management System (MMS).

Section 6 describes a hardware queue manager of five parallel blocks --
Internal Scheduler, Data Queue Manager (DQM), Data Memory Controller
(DMC), Segmentation and Reassembly -- managing up to 32 K flow queues of
64-byte segments, with pointers in ZBT SRAM manipulated *in parallel*
with DDR data transfers.  At a conservative 125 MHz it executes one
command per 84 ns (~12 Mops/s), i.e. ~6.1 Gbps of 64-byte segment
operations (Tables 4 and 5).

Model structure:

* :mod:`repro.core.commands`   -- the command set (Section 6 list),
* :mod:`repro.core.microcode`  -- per-command pointer-access schedules;
  their lengths are Table 4 and their pointer ops are cross-checked
  against the real data-structure traces,
* :mod:`repro.core.dqm`        -- command execution over
  :class:`repro.queueing.PacketQueueManager`,
* :mod:`repro.core.dmc`        -- bank-aware data memory controller,
* :mod:`repro.core.scheduler`  -- per-port command FIFOs + priorities,
* :mod:`repro.core.segmentation` / :mod:`repro.core.reassembly`,
* :mod:`repro.core.mms`        -- the assembled block + load harness.
"""

from repro.core.commands import Command, CommandType
from repro.core.microcode import (
    MICROCODE,
    Microcode,
    TABLE4_CYCLES,
    table4_command_types,
)
from repro.core.latency import CommandLatency, LatencyBreakdown
from repro.core.dmc import DataMemoryController
from repro.core.dqm import DataQueueManager
from repro.core.scheduler import InternalScheduler, PortConfig
from repro.core.segmentation import SegmentationBlock
from repro.core.reassembly import ReassemblyBlock
from repro.core.mms import MMS, MmsConfig, MmsLoadResult, figure2_diagram, run_load
from repro.core.qos import DeficitRoundRobin, DequeuedPacket, StrictPriorityScheduler

__all__ = [
    "Command",
    "CommandType",
    "Microcode",
    "MICROCODE",
    "TABLE4_CYCLES",
    "table4_command_types",
    "CommandLatency",
    "LatencyBreakdown",
    "DataMemoryController",
    "DataQueueManager",
    "InternalScheduler",
    "PortConfig",
    "SegmentationBlock",
    "ReassemblyBlock",
    "MMS",
    "MmsConfig",
    "MmsLoadResult",
    "run_load",
    "figure2_diagram",
    "StrictPriorityScheduler",
    "DeficitRoundRobin",
    "DequeuedPacket",
]
