"""Data Queue Manager: the pointer-manipulation engine of the MMS.

"The DQM organizes the incoming packets into queues.  It handles and
updates the data structures kept in the Pointer memory."  One command
executes at a time; its microcode schedule (:mod:`repro.core.microcode`)
defines the execution latency, which "defines the time interval between
two successive commands; in other words it states the MMS processing
rate".

Data accesses overlap execution: the first pointer access of every
schedule yields the data-memory address, and the DMC is handed the
transfer one cycle later -- "the actual data accesses at the Data Memory
can be done, almost, in parallel with the pointer handling".
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from repro.core.commands import Command, CommandType
from repro.core.dmc import DataMemoryController
from repro.core.latency import LatencyBreakdown
from repro.core.microcode import SCHEDULE_COSTS
from repro.policies.base import DroppedSegment
from repro.queueing import PacketQueueManager
from repro.sim import Clock, Simulator

#: Per-command timing tuple used on the execute hot path:
#: (handoff_ps, tail_ps, latency_cycles, execution_cycles_f, ptr_accesses)
_CmdTiming = Tuple[int, int, int, float, int]


@lru_cache(maxsize=None)
def _timing_table(period_ps: int, overlap_data: bool) -> Dict[CommandType, _CmdTiming]:
    """Memoized per-clock expansion of every command schedule.

    The schedule is a pure function of ``(CommandType, overlap flag)``
    and the clock period, so the picosecond conversions are done once
    per configuration instead of once per executed command.
    """
    table: Dict[CommandType, _CmdTiming] = {}
    for cmd, costs in SCHEDULE_COSTS.items():
        handoff_cycles = (costs.overlap_handoff_cycles if overlap_data
                          else costs.latency_cycles)
        handoff_ps = handoff_cycles * period_ps
        tail_ps = (costs.latency_cycles - handoff_cycles) * period_ps
        table[cmd] = (handoff_ps, tail_ps, costs.latency_cycles,
                      costs.execution_cycles_f, costs.ptr_accesses)
    return table


#: Public name of the memoized per-clock schedule expansion.  The DQM
#: uses it per command; the batched command-stream engine
#: (:mod:`repro.engines`) folds the same rows into its cumulative-sum
#: accounting, so both paths price commands from one table.
command_timing_table = _timing_table


class MicrocodeMismatchError(AssertionError):
    """Strict mode: a functional trace disagreed with the schedule."""


class DataQueueManager:
    """Executes MMS commands over the two-level queue structure."""

    def __init__(self, sim: Simulator, clock: Clock,
                 pqm: PacketQueueManager, dmc: Optional[DataMemoryController],
                 breakdown: LatencyBreakdown,
                 strict_microcode: bool = False,
                 overlap_data: bool = True,
                 probe: Optional[Any] = None) -> None:
        self.sim = sim
        self.clock = clock
        self.pqm = pqm
        self.dmc = dmc
        self.breakdown = breakdown
        self.strict_microcode = strict_microcode
        #: Ablation A5: when False, the data access is issued only after
        #: the pointer work completes (what the MMS design avoids --
        #: Section 6.1 credits the overlap for the 10.5-cycle overhead).
        self.overlap_data = overlap_data
        self.commands_executed = 0
        # Memoized per-command timing for this clock domain; both overlap
        # variants are kept so flipping the ablation flag stays valid.
        self._timing_overlap = _timing_table(clock.period_ps, True)
        self._timing_serial = _timing_table(clock.period_ps, False)
        #: Optional telemetry probe (:mod:`repro.telemetry`).  The
        #: probed dispatch/finalize variants are swapped in as instance
        #: attributes *only* when a probe exists, so the probes-off hot
        #: path carries no telemetry call sites at all (structural
        #: absence, not an inert per-command branch).
        self.probe = probe
        if probe is not None:
            if getattr(probe, "wants_stages", False):
                self._dispatch = self._dispatch_traced  # type: ignore[assignment]
                self._finalize = self._finalize_traced  # type: ignore[assignment]
            else:
                self._dispatch = self._dispatch_probed  # type: ignore[assignment]
                self._finalize = self._finalize_probed  # type: ignore[assignment]

    # ----------------------------------------------------------- execute

    def execute(self, cmd: Command):
        """Generator: run one command to completion (DQM-side).

        The DQM is busy for the schedule length; the data transfer (if
        any) is issued to the DMC after the first pointer access and
        completes asynchronously.  The latency record is finalized when
        both execution and data transfer are done.
        """
        timing = (self._timing_overlap if self.overlap_data
                  else self._timing_serial)
        handoff_ps, tail_ps, latency_cycles, exec_cycles_f, ptr_accesses = \
            timing[cmd.type]
        cmd.start_exec_ps = self.sim.now
        result, trace_len, data_slot = self._dispatch(cmd)
        # A policy-dropped enqueue generates no pointer traffic at all
        # (the schedule assumes an accepted segment), so the strict
        # cross-check only applies to commands that actually executed.
        # Accepted enqueues -- including accept-after-push-out, whose
        # returned trace is the enqueue's own -- are still checked.
        dropped = isinstance(result, DroppedSegment)
        if self.strict_microcode and not dropped \
                and trace_len != ptr_accesses:
            raise MicrocodeMismatchError(
                f"{cmd.type.value}: functional trace has {trace_len} pointer "
                f"accesses, schedule has {ptr_accesses}"
            )
        cmd.result = result  # type: ignore[attr-defined]

        yield handoff_ps

        data_event = None
        if cmd.touches_data_memory and self.dmc is not None \
                and data_slot is not None:
            data_event = self.dmc.submit(cmd.is_data_write, data_slot,
                                         tag=cmd.cid)
        yield tail_ps
        cmd.end_exec_ps = self.sim.now
        self.commands_executed += 1
        if cmd.completion is not None:
            cmd.completion.trigger(result)
        self.sim.spawn(self._finalize(cmd, exec_cycles_f, data_event),
                       name=f"fin{cmd.cid}")

    def _finalize(self, cmd: Command, exec_cycles_f: float, data_event):
        period = self.clock.period_ps
        data_cycles = 0.0
        data_submit_ps = -1
        if data_event is not None:
            req = yield data_event
            cmd.data_done_ps = self.sim.now
            data_cycles = (req.total_ps) / period
            data_submit_ps = req.submit_ps
        else:
            cmd.data_done_ps = cmd.end_exec_ps
            yield 0
        fifo_cycles = (cmd.start_exec_ps - cmd.submit_ps) / period \
            if cmd.submit_ps >= 0 else 0.0
        submit = cmd.submit_ps if cmd.submit_ps >= 0 else cmd.start_exec_ps
        completion = max(cmd.end_exec_ps, cmd.data_done_ps)
        end_to_end_cycles = (completion - submit) / period
        self.breakdown.record_parts(
            fifo_cycles=fifo_cycles,
            execution_cycles=exec_cycles_f,
            data_cycles=data_cycles,
            end_to_end_cycles=end_to_end_cycles,
        )
        return fifo_cycles, data_cycles, end_to_end_cycles, data_submit_ps

    def _finalize_probed(self, cmd: Command, exec_cycles_f: float,
                         data_event):
        """Telemetry variant of :meth:`_finalize`: the same record (by
        delegation), then the probe's ``on_record`` at the delivery
        instant."""
        fifo_cycles, data_cycles, end_to_end_cycles, _ = \
            yield from DataQueueManager._finalize(self, cmd, exec_cycles_f,
                                                  data_event)
        self.probe.on_record(self.sim.now, cmd.type, fifo_cycles,
                             exec_cycles_f, data_cycles, end_to_end_cycles)

    def _finalize_traced(self, cmd: Command, exec_cycles_f: float,
                         data_event):
        """Tracing variant of :meth:`_finalize`: the telemetry record,
        then the stage bounds, both at the record-delivery instant (the
        stream engine replays the identical calls in the identical
        order)."""
        fifo_cycles, data_cycles, end_to_end_cycles, data_submit_ps = \
            yield from DataQueueManager._finalize(self, cmd, exec_cycles_f,
                                                  data_event)
        probe = self.probe
        probe.on_record(self.sim.now, cmd.type, fifo_cycles,
                        exec_cycles_f, data_cycles, end_to_end_cycles)
        data_done_ps = cmd.data_done_ps if data_submit_ps >= 0 else -1
        probe.on_stages(self.sim.now, cmd.trace_seq, cmd.type, cmd.flow,
                        cmd.submit_ps, cmd.start_exec_ps, cmd.end_exec_ps,
                        data_submit_ps, data_done_ps)

    # ---------------------------------------------------------- dispatch

    def _dispatch(self, cmd: Command):
        """Run the functional operation; returns (result, ptr-accesses,
        data slot for the DMC)."""
        t = cmd.type
        pqm = self.pqm
        if t is CommandType.ENQUEUE:
            slot, trace = pqm.admit_enqueue(cmd.flow, eop=cmd.eop,
                                            length=cmd.length, pid=cmd.pid,
                                            index=cmd.seg_index)
            if isinstance(slot, DroppedSegment):
                # policy drop: the command still executes (and is timed),
                # but no buffer was written -- no DMC transfer
                return slot, len(trace), None
            return slot, len(trace), slot
        if t is CommandType.DEQUEUE:
            info, trace = pqm.dequeue_segment(cmd.flow)
            return info, len(trace), info.slot
        if t is CommandType.READ:
            info, trace = pqm.read_segment(cmd.flow)
            return info, len(trace), info.slot
        if t is CommandType.OVERWRITE:
            info, trace = pqm.overwrite_segment(cmd.flow)
            return info, len(trace), info.slot
        if t is CommandType.DELETE:
            info, trace = pqm.delete_segment(cmd.flow)
            return info, len(trace), None
        if t is CommandType.DELETE_PACKET:
            trace = pqm.delete_packet(cmd.flow)
            return None, len(trace), None
        if t is CommandType.MOVE:
            trace = pqm.move_packet(cmd.flow, cmd.dst_flow)
            return None, len(trace), None
        if t is CommandType.OVERWRITE_LENGTH:
            info, trace = pqm.overwrite_segment_length(cmd.flow, cmd.length)
            return info, len(trace), None
        if t is CommandType.OVERWRITE_LENGTH_MOVE:
            trace = pqm.overwrite_length_and_move(cmd.flow, cmd.dst_flow,
                                                  cmd.length)
            return None, len(trace), None
        if t is CommandType.OVERWRITE_MOVE:
            info, trace = pqm.overwrite_and_move(cmd.flow, cmd.dst_flow)
            return info, len(trace), info.slot
        if t is CommandType.APPEND_HEAD:
            slot, trace = pqm.append_head(cmd.flow, pid=cmd.pid)
            if isinstance(slot, DroppedSegment):
                return slot, len(trace), None
            return slot, len(trace), slot
        if t is CommandType.APPEND_TAIL:
            slot, trace = pqm.append_tail(cmd.flow, length=cmd.length,
                                          pid=cmd.pid)
            if isinstance(slot, DroppedSegment):
                return slot, len(trace), None
            return slot, len(trace), slot
        raise ValueError(f"unknown command type {t}")

    def _dispatch_probed(self, cmd: Command):
        """Telemetry variant of :meth:`_dispatch`: the functional
        operation, then the probe's ``on_command`` with the
        post-dispatch occupancy (the stream engine emits the identical
        call at the identical pop instant)."""
        out = DataQueueManager._dispatch(self, cmd)
        pqm = self.pqm
        self.probe.on_command(self.sim.now, cmd.type, cmd.flow, out[0],
                              pqm.queued_segments(cmd.flow),
                              pqm.num_segments - pqm.free_segments)
        return out

    def _dispatch_traced(self, cmd: Command):
        """Tracing variant of :meth:`_dispatch_probed`: stamps the
        dispatch index first (the DQM is serial, so
        ``commands_executed`` at the pop instant *is* the dispatch
        order both engines share), then delegates."""
        cmd.trace_seq = self.commands_executed
        return DataQueueManager._dispatch_probed(self, cmd)
