"""Shared feeder definitions for the MMS load experiments.

The Table 5 load harness, the saturation headline and the overload
family each drive the MMS through port feeders.  Those feeders used to
be written against the DES kernel directly (``yield delay`` / ``yield
from mms.submit``); with the batched command-stream engine
(:mod:`repro.engines`) executing the same workloads kernel-free, the
feeder *behavior* must have exactly one definition or the two paths
would drift apart.

A feeder here is a plain generator of **micro-ops**:

* a positive ``int`` -- sleep that many picoseconds,
* a tuple ``(CommandType, flow, dst_flow, eop, length)`` -- submit that
  command to the feeder's port (blocking on port backpressure).

:func:`drive_port` adapts a micro-op generator onto the DES kernel (it
yields exactly what the historical inline feeders yielded, so the
reference event sequence is unchanged); the stream engine consumes the
same generators natively.  Time-dependent pacing reads the current
simulated time through ``now_fn``, which each execution path binds to
its own clock.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from repro.core.commands import Command, CommandType

#: Micro-op vocabulary (see module docstring).
FeederOp = Union[int, Tuple[CommandType, int, Optional[int], bool, int]]

#: The dequeue stream of the Table 5 harness lags the enqueue stream by
#: this many volleys, so a small per-flow backlog suffices.
LOAD_LAG_VOLLEYS = 16


def to_command(op: Tuple[CommandType, int, Optional[int], bool, int]
               ) -> Command:
    """Materialize a submit micro-op as a kernel :class:`Command`."""
    kind, flow, dst, eop, length = op
    return Command(type=kind, flow=flow, dst_flow=dst, eop=eop,
                   length=length)


def drive_port(mms, port: int, ops: Iterator[FeederOp]):
    """Kernel adapter: run a micro-op generator as a port process.

    Yields exactly the delays and ``submit`` handshakes the inline
    feeders used to, so swapping them for shared micro-op generators
    leaves the reference kernel's event sequence untouched.
    """
    for op in ops:
        if type(op) is int:
            yield op
        else:
            yield from mms.submit(port, to_command(op))


# ==================================================== Table 5 load feed

def load_feed_ops(now_fn: Callable[[], int], port: int, enqueue: bool,
                  phase: int, num_volleys: int, volley_period_ps: int,
                  active_flows: int, burst_len: int, burst_prob: float,
                  seed: int) -> Iterator[FeederOp]:
    """One Table 5 port: synchronized volleys with geometric bursts.

    With probability ``burst_prob`` a port emits ``burst_len``
    back-to-back commands and skips the corresponding later volleys
    (same average rate, burstier arrivals).  Enqueue ports walk even or
    odd flows by ``phase``; dequeue ports follow ``LOAD_LAG_VOLLEYS``
    behind so the prefilled backlog never underflows.
    """
    rng = random.Random(seed + port)
    enq = CommandType.ENQUEUE
    deq = CommandType.DEQUEUE
    i = 0       # command index (determines flow and rate accounting)
    volley = 0  # wall-clock volley slot
    while i < num_volleys:
        target = volley * volley_period_ps
        now = now_fn()
        if target > now:
            yield target - now
        emit = burst_len if rng.random() < burst_prob else 1
        if emit > num_volleys - i:
            emit = num_volleys - i
        for k in range(emit):
            if enqueue:
                yield (enq, (2 * (i + k) + phase) % active_flows,
                       None, True, 64)
            else:
                yield (deq,
                       (2 * (i + k - LOAD_LAG_VOLLEYS) + phase)
                       % active_flows,
                       None, True, 64)
        i += emit
        volley += emit  # a burst consumes its later volley slots


# ================================================== saturation feed

def saturation_feed_ops(enqueue: bool, phase: int, per_port: int,
                        active_flows: int) -> Iterator[FeederOp]:
    """One headline-saturation port: back-to-back commands, maximum
    rate (the port FIFO's backpressure is the only pacing)."""
    kind = CommandType.ENQUEUE if enqueue else CommandType.DEQUEUE
    for i in range(per_port):
        yield (kind, (2 * i + phase) % active_flows, None, True, 64)


# ==================================================== overload feeds

def overload_feed_ops(shape: str, port: int, per_port: int,
                      active_flows: int, enq_period_ps: int,
                      counters: Dict[str, int]) -> Iterator[FeederOp]:
    """One overload ingress port, shaped per the scenario family.

    See :mod:`repro.policies.harness` for the shape semantics; the
    feeder marks itself done in ``counters`` so the drain knows when the
    backlog can only shrink.
    """
    enq = CommandType.ENQUEUE
    for i in range(per_port):
        if shape == "burst":
            # volleys of 12 back-to-back arrivals, long idle gaps: the
            # aggregate burst overflows the buffer against the backlog,
            # then the drain catches up
            if i % 12 == 0 and i > 0:
                yield 14 * enq_period_ps
            yield (enq, (3 * i + port) % active_flows, None, True, 64)
        elif shape == "sustained":
            yield enq_period_ps
            yield (enq, (3 * i + port) % active_flows, None, True, 64)
        else:  # incast: flows converge with 3-segment packets, then a
            # short gap lets the drain work -- many short queues rather
            # than burst's few long ones
            seg = i % 3
            if seg == 0 and i > 0 and (i // 3) % 4 == 0:
                yield 10 * enq_period_ps
            yield (enq, (3 * (i // 3) + port) % active_flows,
                   None, seg == 2, 64)
    counters["feeders_done"] = counters.get("feeders_done", 0) + 1


def overload_drain_ops(queued_packets: Callable[[int], int],
                       active_flows: int, drain_period_ps: int,
                       counters: Dict[str, int]) -> Iterator[FeederOp]:
    """The overload egress port: slow round-robin over backlogged
    flows; terminates once the feeders finished and the backlog is
    gone."""
    deq = CommandType.DEQUEUE
    flow = 0
    while True:
        yield drain_period_ps
        for probe in range(active_flows):
            f = (flow + probe) % active_flows
            if queued_packets(f) > 0:
                flow = (f + 1) % active_flows
                yield (deq, f, None, True, 64)
                counters["dequeued"] += 1
                break
        else:
            if counters.get("feeders_done", 0) == 3:
                return
