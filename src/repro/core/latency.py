"""Latency decomposition records (Table 5 instrumentation).

"The total latency of a command consists of three parts: the FIFO delay,
the execution latency and the data latency" (Section 6.1).  The MMS
fills a :class:`CommandLatency` per command; :class:`LatencyBreakdown`
aggregates them into the means Table 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Clock, LatencyRecorder


@dataclass(frozen=True)
class CommandLatency:
    """One command's delay decomposition, in MMS clock cycles."""

    cid: int
    fifo_cycles: float
    execution_cycles: float
    data_cycles: float
    #: True submit-to-completion latency (completion = the later of
    #: execution end and data-transfer end).  Differs from the additive
    #: total when pointer and data work overlap -- which is exactly what
    #: the A5 ablation measures.
    end_to_end_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """The paper's 'Total delay per command' (FIFO + exec + data;
        the data access overlaps execution in time but the paper reports
        the additive decomposition)."""
        return self.fifo_cycles + self.execution_cycles + self.data_cycles


class LatencyBreakdown:
    """Aggregates command latencies into Table 5's row format."""

    def __init__(self, clock: Clock, keep_samples: bool = False) -> None:
        self.clock = clock
        self.fifo = LatencyRecorder("fifo", keep_samples=keep_samples)
        self.execution = LatencyRecorder("execution", keep_samples=keep_samples)
        self.data = LatencyRecorder("data", keep_samples=keep_samples)
        self.total = LatencyRecorder("total", keep_samples=keep_samples)
        self.end_to_end = LatencyRecorder("end_to_end",
                                          keep_samples=keep_samples)

    def record(self, lat: CommandLatency) -> None:
        self.record_parts(lat.fifo_cycles, lat.execution_cycles,
                          lat.data_cycles, lat.end_to_end_cycles)

    def record_parts(self, fifo_cycles: float, execution_cycles: float,
                     data_cycles: float, end_to_end_cycles: float = 0.0) -> None:
        """Record one command's decomposition without materializing a
        :class:`CommandLatency` -- the per-command fast path of the load
        experiments (``total`` is the paper's additive decomposition)."""
        if not self.fifo.keep_samples:
            # this runs once per executed command; skip the per-recorder
            # sample-retention indirection when nothing retains samples
            self.fifo.stats.add(fifo_cycles)
            self.execution.stats.add(execution_cycles)
            self.data.stats.add(data_cycles)
            self.total.stats.add(fifo_cycles + execution_cycles + data_cycles)
            self.end_to_end.stats.add(end_to_end_cycles)
            return
        self.fifo.record(fifo_cycles)
        self.execution.record(execution_cycles)
        self.data.record(data_cycles)
        self.total.record(fifo_cycles + execution_cycles + data_cycles)
        self.end_to_end.record(end_to_end_cycles)

    @property
    def count(self) -> int:
        return self.total.count

    def row(self) -> dict:
        """Mean decomposition in cycles (the Table 5 columns)."""
        return {
            "fifo": self.fifo.mean,
            "execution": self.execution.mean,
            "data": self.data.mean,
            "total": self.total.mean,
        }
