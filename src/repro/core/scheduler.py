"""Internal Scheduler: per-port command FIFOs with service priorities.

"The internal scheduler forwards the incoming commands from the various
ports to the DQM giving different service priorities to each port" and
"MMS keeps incoming commands in FIFOs (one per port) so as to smooth the
bursts of commands that may arrive simultaneously at this module"
(Section 6/6.1).  Full FIFOs exert backpressure on the port (the
BACKPRESSURE arrows of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.commands import Command
from repro.sim import Fifo, Simulator
from repro.sim.kernel import Event


@dataclass(frozen=True)
class PortConfig:
    """One MMS command port.

    Lower ``priority`` value = served first (the network ports typically
    outrank the CPU ports so wire-speed traffic is never starved by
    control operations).
    """

    name: str
    priority: int = 0
    fifo_depth: int = 2

    def __post_init__(self) -> None:
        if self.fifo_depth < 1:
            raise ValueError(f"fifo_depth must be >= 1, got {self.fifo_depth}")


#: The default 4-port arrangement of Figure 2: In, Out, and two CPU ports.
DEFAULT_PORTS = (
    PortConfig("in", priority=0),
    PortConfig("out", priority=0),
    PortConfig("cpu0", priority=1),
    PortConfig("cpu1", priority=1),
)


class InternalScheduler:
    """Priority + round-robin selection across per-port command FIFOs."""

    def __init__(self, sim: Simulator,
                 ports: tuple[PortConfig, ...] = DEFAULT_PORTS) -> None:
        if not ports:
            raise ValueError("at least one port required")
        self.sim = sim
        self.ports = ports
        self.fifos: List[Fifo] = [
            Fifo(sim, capacity=p.fifo_depth, name=f"cmdfifo.{p.name}")
            for p in ports
        ]
        self._rr_next = 0
        self._kick: Optional[Event] = None
        self.submitted = 0

    # ------------------------------------------------------------- ports

    def port_index(self, name: str) -> int:
        for i, p in enumerate(self.ports):
            if p.name == name:
                return i
        raise ValueError(f"unknown port {name!r}")

    def submit(self, port: int, cmd: Command):
        """Blocking submit (generator): waits while the port FIFO is full
        -- this is the backpressure a real port would see."""
        self._check_port(port)
        cmd.port = port
        cmd.submit_ps = self.sim.now
        yield from self.fifos[port].put(cmd)
        # Stamp after admission: the FIFO delay starts when the command
        # occupies a FIFO slot (a backpressured port holds the command).
        cmd.submit_ps = self.sim.now
        self.submitted += 1
        self._wake()

    def try_submit(self, port: int, cmd: Command) -> bool:
        """Non-blocking submit; returns False when the FIFO is full."""
        self._check_port(port)
        if self.fifos[port].is_full:
            return False
        cmd.port = port
        cmd.submit_ps = self.sim.now
        self.fifos[port].try_put(cmd)
        self.submitted += 1
        self._wake()
        return True

    # --------------------------------------------------------- selection

    @property
    def has_pending(self) -> bool:
        return any(not f.is_empty for f in self.fifos)

    def pop_next(self) -> Command:
        """Select the next command: strict priority between classes,
        round-robin within a class."""
        best: Optional[int] = None
        n = len(self.ports)
        for offset in range(n):
            i = (self._rr_next + offset) % n
            if self.fifos[i].is_empty:
                continue
            if best is None or self.ports[i].priority < self.ports[best].priority:
                best = i
        if best is None:
            raise RuntimeError("pop_next on empty scheduler")
        self._rr_next = (best + 1) % n
        return self.fifos[best].try_get()

    def wait_for_command(self) -> Event:
        """Event the DQM can wait on when all FIFOs are empty."""
        if self._kick is None or self._kick.triggered:
            self._kick = self.sim.event(name="sched.kick")
        return self._kick

    # --------------------------------------------------------- internals

    def _wake(self) -> None:
        if self._kick is not None and not self._kick.triggered:
            self._kick.trigger()

    def _check_port(self, port: int) -> None:
        if not 0 <= port < len(self.ports):
            raise ValueError(f"port {port} out of range [0, {len(self.ports)})")
