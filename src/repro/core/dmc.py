"""Data Memory Controller: the MMS block facing the DDR packet buffer.

"The DMC performs the low level read and write segment commands to the
data memory; it issues interleaved commands so as to minimize bank
conflicts" (Section 6).  The model wraps the Section 3 DDR machinery
(:class:`repro.mem.controller.DdrController`) with a bank-aware reorder
window, maps segment slots onto banks, and reports per-access data delay
-- the third component of Table 5.

Calibration: ``pipeline_overhead_ns`` covers command CDC, burst framing
and controller pipeline; 135 ns yields the paper's ~28-cycle data delay
at 125 MHz under light load (device delay + pipeline + the write-after-
read turnarounds of the mixed command stream), and the load-dependent
rise to ~31 cycles then emerges from bank conflicts (see EXPERIMENTS.md).
"""

from __future__ import annotations


from repro.mem import DdrController, DdrTiming, MemOp
from repro.sim import Clock, Simulator
from repro.sim.kernel import Event

#: Default DMC pipeline latency (calibrated; see module docstring).
DEFAULT_PIPELINE_NS = 135


class DataMemoryController:
    """Bank-aware front end of the MMS data memory."""

    def __init__(self, sim: Simulator, clock: Clock, num_banks: int = 8,
                 reorder_window: int = 4,
                 pipeline_overhead_ns: int = DEFAULT_PIPELINE_NS,
                 timing: DdrTiming = DdrTiming()) -> None:
        self.sim = sim
        self.clock = clock
        self.num_banks = num_banks
        self.ddr = DdrController(sim, num_banks=num_banks, timing=timing,
                                 reorder_window=reorder_window,
                                 pipeline_overhead_ns=pipeline_overhead_ns,
                                 name="dmc-ddr")

    def bank_of_slot(self, slot: int) -> int:
        """Segment slots stripe across banks (segment-aligned buffer)."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return slot % self.num_banks

    def submit(self, is_write: bool, slot: int, tag: int = 0) -> Event:
        """Queue one 64-byte segment transfer; returns the completion
        event (triggered with the finished ``MemRequest``)."""
        op = MemOp.WRITE if is_write else MemOp.READ
        return self.ddr.submit(op, self.bank_of_slot(slot), tag=tag)

    @property
    def completed(self) -> int:
        return self.ddr.completed

    def mean_data_delay_cycles(self) -> float:
        """Mean submit-to-complete delay in MMS cycles."""
        if self.ddr.service.count == 0:
            return 0.0
        total_ps = (self.ddr.queue_wait.mean + self.ddr.service.mean)
        return total_ps / self.clock.period_ps
