"""Per-command microcode schedules of the Data Queue Manager.

Each command executes a fixed pipeline schedule of one-cycle steps:

* ``decode`` -- command decode / flow-id validation,
* ``ptr``    -- one pointer-SRAM access (the ZBT sustains one per cycle;
  the hand-scheduled order hides the read latency, and the *first* ptr
  access yields the data-memory address so the DMC can start early:
  "a data access can start right after the first pointer memory access
  of each command"),
* ``alu``    -- field merge / address calculation,
* ``dmc``    -- hand-off of the data access descriptor to the DMC,
* ``resp``   -- response header to the requesting port,
* ``sync``   -- wait slots coupling the response to the first data beats
  (read-type commands ack the port only when data is known good),
* ``ack``    -- final acknowledge / commit.

The schedule lengths ARE Table 4 -- asserted in the test suite -- and
each schedule's ``ptr`` step count equals the access-trace length of the
corresponding :class:`repro.queueing.PacketQueueManager` operation on its
typical path (also asserted), so the published latencies are tied to the
real data-structure work rather than free-floating constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Tuple

from repro.core.commands import CommandType

#: Step kinds a schedule may contain.
STEP_KINDS = ("decode", "ptr", "alu", "dmc", "resp", "sync", "ack")


@dataclass(frozen=True)
class Microcode:
    """One command's pipeline schedule.

    The derived quantities (``latency_cycles``, ``ptr_accesses``, ...)
    are pure functions of the step tuple; they are computed once per
    schedule and cached -- the MMS load experiments evaluate them per
    executed command, millions of times per run.
    """

    command: CommandType
    steps: Tuple[str, ...]

    def __post_init__(self) -> None:
        for s in self.steps:
            if s not in STEP_KINDS:
                raise ValueError(f"unknown microcode step {s!r}")
        if not self.steps or self.steps[0] != "decode":
            raise ValueError("schedules must begin with a decode step")

    @cached_property
    def latency_cycles(self) -> int:
        """Execution latency of the command (one cycle per step)."""
        return len(self.steps)

    @cached_property
    def ptr_accesses(self) -> int:
        """Pointer-SRAM accesses in the schedule."""
        return sum(1 for s in self.steps if s == "ptr")

    @cached_property
    def first_ptr_cycle(self) -> int:
        """Cycle (0-based) of the first pointer access -- the data-memory
        address is available one cycle later."""
        return self.steps.index("ptr")

    @cached_property
    def has_dmc_handoff(self) -> bool:
        return "dmc" in self.steps


def _mc(cmd: CommandType, *steps: str) -> Microcode:
    return Microcode(command=cmd, steps=tuple(steps))


#: The DQM microcode store.  Schedule lengths reproduce Table 4; ``ptr``
#: counts match the typical-path access traces (see tests).
MICROCODE: Dict[CommandType, Microcode] = {
    # Enqueue (10): pop, read open-desc, read desc, link write, meta
    # write, desc update; data write handed to the DMC after the pop.
    CommandType.ENQUEUE: _mc(
        CommandType.ENQUEUE,
        "decode", "ptr", "dmc", "ptr", "ptr", "alu", "ptr", "ptr", "ptr", "ack",
    ),
    # Dequeue (11): head lookup (3 reads), desc update, two free-list
    # writes; data read handed off after the head lookup; response
    # carries the segment descriptor.
    CommandType.DEQUEUE: _mc(
        CommandType.DEQUEUE,
        "decode", "ptr", "ptr", "ptr", "alu", "dmc", "ptr", "ptr", "ptr", "resp",
        "ack",
    ),
    # Read (10): non-destructive head lookup (3 reads); the port is acked
    # in step with the first data beats (4 sync slots at 125 MHz).
    CommandType.READ: _mc(
        CommandType.READ,
        "decode", "ptr", "ptr", "ptr", "alu", "dmc", "sync", "sync", "sync",
        "sync",
    ),
    # Overwrite (10): same lookup, data flows inward.
    CommandType.OVERWRITE: _mc(
        CommandType.OVERWRITE,
        "decode", "ptr", "ptr", "ptr", "alu", "dmc", "sync", "sync", "sync",
        "sync",
    ),
    # Move (11): unlink head packet (2R+2W), append to destination
    # (1R+2W RMW of the old tail, 1W queue update) = 8 ptr accesses.
    CommandType.MOVE: _mc(
        CommandType.MOVE,
        "decode", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr",
        "alu", "ack",
    ),
    # Delete one segment (7): dequeue-shaped unlinking, no data access,
    # no response payload.
    CommandType.DELETE: _mc(
        CommandType.DELETE,
        "decode", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr",
    ),
    # Delete a full packet (8): descriptor unlink + O(1) chain splice.
    CommandType.DELETE_PACKET: _mc(
        CommandType.DELETE_PACKET,
        "decode", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr",
    ),
    # Overwrite_Segment_length (7): head lookup + meta rewrite.
    CommandType.OVERWRITE_LENGTH: _mc(
        CommandType.OVERWRITE_LENGTH,
        "decode", "ptr", "ptr", "ptr", "ptr", "alu", "ack",
    ),
    # Overwrite_Segment_length&Move (12): fused lookup+rewrite+move;
    # shares the source queue read between the two halves (10 ptr).
    CommandType.OVERWRITE_LENGTH_MOVE: _mc(
        CommandType.OVERWRITE_LENGTH_MOVE,
        "decode", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr",
        "ptr", "ptr", "alu",
    ),
    # Overwrite_Segment&Move (12): fused lookup+move with a data
    # overwrite handed to the DMC (9 ptr).
    CommandType.OVERWRITE_MOVE: _mc(
        CommandType.OVERWRITE_MOVE,
        "decode", "ptr", "ptr", "ptr", "dmc", "ptr", "ptr", "ptr", "ptr",
        "ptr", "ptr", "ack",
    ),
    # Append at head (8): pop + desc relink, data write of the new
    # header segment.
    CommandType.APPEND_HEAD: _mc(
        CommandType.APPEND_HEAD,
        "decode", "ptr", "dmc", "ptr", "ptr", "ptr", "ptr", "ack",
    ),
    # Append at tail (10): pop + old-tail RMW + desc update.
    CommandType.APPEND_TAIL: _mc(
        CommandType.APPEND_TAIL,
        "decode", "ptr", "dmc", "ptr", "ptr", "ptr", "ptr", "ptr", "ptr",
        "ack",
    ),
}

@dataclass(frozen=True)
class ScheduleCosts:
    """Fully expanded, precomputed costs of one command schedule.

    Everything the DQM needs per executed command, collapsed into one
    flat record so the execute path does a single dict lookup instead of
    re-walking the step tuple: the WRITE/READ/ENQ/DEQ commands of a load
    run reuse the same expansion millions of times.
    """

    latency_cycles: int
    ptr_accesses: int
    first_ptr_cycle: int
    has_dmc_handoff: bool
    #: cycles until the DMC hand-off when data/pointer work overlaps
    #: (one cycle after the first pointer access)
    overlap_handoff_cycles: int
    #: execution latency as a float, pre-converted for latency records
    execution_cycles_f: float


def _expand(micro: Microcode) -> ScheduleCosts:
    return ScheduleCosts(
        latency_cycles=micro.latency_cycles,
        ptr_accesses=micro.ptr_accesses,
        first_ptr_cycle=micro.first_ptr_cycle,
        has_dmc_handoff=micro.has_dmc_handoff,
        overlap_handoff_cycles=micro.first_ptr_cycle + 1,
        execution_cycles_f=float(micro.latency_cycles),
    )


#: Memoized schedule expansion, one entry per command type.
SCHEDULE_COSTS: Dict[CommandType, ScheduleCosts] = {
    cmd: _expand(micro) for cmd, micro in MICROCODE.items()
}


def schedule_costs(command: CommandType) -> ScheduleCosts:
    """Precomputed costs for ``command`` (pure function of the type)."""
    return SCHEDULE_COSTS[command]


#: Table 4 of the paper: command -> published latency in cycles.
TABLE4_CYCLES: Dict[CommandType, int] = {
    CommandType.ENQUEUE: 10,
    CommandType.READ: 10,
    CommandType.OVERWRITE: 10,
    CommandType.MOVE: 11,
    CommandType.DELETE: 7,
    CommandType.OVERWRITE_LENGTH: 7,
    CommandType.DEQUEUE: 11,
    CommandType.OVERWRITE_LENGTH_MOVE: 12,
    CommandType.OVERWRITE_MOVE: 12,
}


def table4_command_types() -> Tuple[CommandType, ...]:
    """The nine command types Table 4 publishes, in paper order."""
    return tuple(TABLE4_CYCLES.keys())
