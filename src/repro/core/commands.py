"""The MMS command set.

Section 6 lists the operations: enqueue one segment; delete one segment
or a full packet; overwrite a segment; append a segment at the head or
tail of a packet; move a packet to a new queue.  Table 4 additionally
prices read, dequeue, overwrite-segment-length and the two combination
commands.  Each command addresses one flow queue (and a destination
queue for moves).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class CommandType(Enum):
    """Every operation the MMS executes (Section 6 + Table 4)."""

    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"
    READ = "read"
    OVERWRITE = "overwrite"
    DELETE = "delete"
    DELETE_PACKET = "delete_packet"
    MOVE = "move"
    OVERWRITE_LENGTH = "overwrite_segment_length"
    OVERWRITE_LENGTH_MOVE = "overwrite_segment_length_and_move"
    OVERWRITE_MOVE = "overwrite_segment_and_move"
    APPEND_HEAD = "append_head"
    APPEND_TAIL = "append_tail"


#: Commands that transfer a 64-byte segment to/from the data memory.
DATA_WRITE_COMMANDS = frozenset({
    CommandType.ENQUEUE,
    CommandType.OVERWRITE,
    CommandType.OVERWRITE_MOVE,
    CommandType.APPEND_HEAD,
    CommandType.APPEND_TAIL,
})
DATA_READ_COMMANDS = frozenset({
    CommandType.DEQUEUE,
    CommandType.READ,
})
#: Pointer-only commands: no data-memory access at all.
POINTER_ONLY_COMMANDS = frozenset({
    CommandType.DELETE,
    CommandType.DELETE_PACKET,
    CommandType.MOVE,
    CommandType.OVERWRITE_LENGTH,
    CommandType.OVERWRITE_LENGTH_MOVE,
})

_cmd_ids = itertools.count()


@dataclass
class Command:
    """One command submitted to an MMS port.

    Life-cycle timestamps (picoseconds) are filled in by the blocks:
    ``submit_ps`` by the port, ``start_exec_ps``/``end_exec_ps`` by the
    DQM, ``data_done_ps`` by the DMC.
    """

    type: CommandType
    flow: int
    dst_flow: Optional[int] = None
    eop: bool = True
    length: int = 64
    pid: int = -1
    seg_index: int = 0
    port: int = 0
    cid: int = field(default_factory=lambda: next(_cmd_ids))
    submit_ps: int = -1
    start_exec_ps: int = -1
    end_exec_ps: int = -1
    data_done_ps: int = -1
    #: Dispatch index stamped by the traced DQM variants (span tracing);
    #: -1 when tracing is off.
    trace_seq: int = -1
    #: Optional simulation event; when set, the DQM triggers it with the
    #: command's functional result at end of execution (see
    #: :meth:`repro.core.mms.MMS.submit_and_wait`).
    completion: object = None

    def __post_init__(self) -> None:
        if self.flow < 0:
            raise ValueError(f"flow must be >= 0, got {self.flow}")
        if not 1 <= self.length <= 64:
            raise ValueError(f"length must be in [1, 64], got {self.length}")
        needs_dst = self.type in (
            CommandType.MOVE,
            CommandType.OVERWRITE_LENGTH_MOVE,
            CommandType.OVERWRITE_MOVE,
        )
        if needs_dst and self.dst_flow is None:
            raise ValueError(f"{self.type.value} requires dst_flow")
        if not needs_dst and self.dst_flow is not None:
            raise ValueError(f"{self.type.value} does not take dst_flow")

    @property
    def touches_data_memory(self) -> bool:
        return self.type in DATA_WRITE_COMMANDS or self.type in DATA_READ_COMMANDS

    @property
    def is_data_write(self) -> bool:
        return self.type in DATA_WRITE_COMMANDS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dst = f"->{self.dst_flow}" if self.dst_flow is not None else ""
        return f"Command({self.type.value}, flow={self.flow}{dst}, cid={self.cid})"
