"""QoS egress scheduling over MMS flow queues (extension).

The paper motivates per-flow queuing with "advanced Quality of Service"
but leaves the egress scheduling policy to the system around the MMS.
This module supplies the two standard policies such a system would bolt
onto the Out port:

* :class:`StrictPriorityScheduler` -- classes served in fixed order
  (what the 802.1p switch app uses),
* :class:`DeficitRoundRobin` -- byte-fair weighted sharing across flows,
  charging each flow the actual bytes its dequeued segments carried.

Both are pure *selection* policies: the dequeuing itself is ordinary MMS
dequeue commands, so these compose with either the functional
(:meth:`MMS.apply`) or the timed (:meth:`MMS.submit`) path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.commands import Command, CommandType
from repro.core.mms import MMS
from repro.queueing.packet_queues import SegmentInfo


@dataclass
class DequeuedPacket:
    """One packet pulled by a scheduler."""

    flow: int
    segments: List[SegmentInfo]

    @property
    def length_bytes(self) -> int:
        return sum(s.length for s in self.segments)


def _dequeue_packet(mms: MMS, flow: int) -> DequeuedPacket:
    """Dequeue one whole packet from ``flow`` (functional path)."""
    segments: List[SegmentInfo] = []
    while True:
        info = mms.apply(Command(type=CommandType.DEQUEUE, flow=flow))
        segments.append(info)
        if info.eop:
            return DequeuedPacket(flow=flow, segments=segments)


class StrictPriorityScheduler:
    """Serve the highest-priority non-empty flow, always.

    ``flows`` are given from highest to lowest priority.
    """

    def __init__(self, mms: MMS, flows: Sequence[int]) -> None:
        if not flows:
            raise ValueError("flows must be non-empty")
        if len(set(flows)) != len(flows):
            raise ValueError("flows must be distinct")
        self.mms = mms
        self.flows = list(flows)
        self.served: Dict[int, int] = {f: 0 for f in flows}

    def next_packet(self) -> Optional[DequeuedPacket]:
        for flow in self.flows:
            if self.mms.pqm.queued_packets(flow) > 0:
                pkt = _dequeue_packet(self.mms, flow)
                self.served[flow] += 1
                return pkt
        return None


class DeficitRoundRobin:
    """Byte-accurate DRR (Shreedhar & Varghese) over MMS flow queues.

    Each round a flow's deficit grows by ``quantum * weight``; it may
    dequeue head packets while its deficit covers their byte size.
    Unused deficit carries over only while the flow stays backlogged.
    """

    def __init__(self, mms: MMS, flows: Sequence[int],
                 weights: Optional[Sequence[float]] = None,
                 quantum_bytes: int = 512) -> None:
        if not flows:
            raise ValueError("flows must be non-empty")
        if len(set(flows)) != len(flows):
            raise ValueError("flows must be distinct")
        if quantum_bytes < 64:
            raise ValueError("quantum_bytes must be >= one segment (64)")
        weights = list(weights) if weights is not None else [1.0] * len(flows)
        if len(weights) != len(flows):
            raise ValueError("weights must match flows")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.mms = mms
        self.flows = list(flows)
        self.weights = dict(zip(self.flows, weights))
        self.quantum_bytes = quantum_bytes
        self._deficit: Dict[int, float] = {f: 0.0 for f in flows}
        self._cursor = 0
        #: True when the cursor has just arrived at the current flow and
        #: its per-round quantum has not been granted yet.  Classic DRR
        #: grants the quantum once per round-robin *arrival*, not once
        #: per serve -- otherwise a flow could be refilled while parked.
        self._fresh_arrival = True
        self.bytes_served: Dict[int, int] = {f: 0 for f in flows}

    # -------------------------------------------------------------- serve

    def next_packet(self) -> Optional[DequeuedPacket]:
        """Dequeue the next packet per DRR; None when all queues empty."""
        n = len(self.flows)
        # a flow needing k quanta is served after k arrivals; bound the
        # scan generously (largest packet / smallest per-round credit)
        min_credit = self.quantum_bytes * min(self.weights.values())
        max_packet = self.mms.config.num_segments * 64
        max_scans = n * (int(max_packet / min_credit) + 2)
        for _ in range(max_scans):
            flow = self.flows[self._cursor]
            if self.mms.pqm.queued_packets(flow) == 0:
                self._deficit[flow] = 0.0  # no carryover while idle
                self._advance()
                if not any(self.mms.pqm.queued_packets(f) for f in self.flows):
                    return None
                continue
            if self._fresh_arrival:
                self._deficit[flow] += self.quantum_bytes * self.weights[flow]
                self._fresh_arrival = False
            head_bytes = self._head_packet_bytes(flow)
            if self._deficit[flow] >= head_bytes:
                pkt = _dequeue_packet(self.mms, flow)
                self._deficit[flow] -= pkt.length_bytes
                self.bytes_served[flow] += pkt.length_bytes
                if self.mms.pqm.queued_packets(flow) == 0:
                    self._deficit[flow] = 0.0
                    self._advance()
                return pkt
            # head does not fit this round: deficit carries over
            self._advance()
        return None

    def drain_fair_shares(self, packets: int) -> Dict[int, int]:
        """Serve ``packets`` packets and report bytes per flow."""
        start = dict(self.bytes_served)
        for _ in range(packets):
            if self.next_packet() is None:
                break
        return {f: self.bytes_served[f] - start[f] for f in self.flows}

    # --------------------------------------------------------- internals

    def _head_packet_bytes(self, flow: int) -> int:
        """Byte size of the flow's head packet (hardware keeps this in
        the packet descriptor; the model reads the segment chain)."""
        packets = self.mms.pqm.walk_packets(flow)
        return sum(self.mms.pqm.segment_info(s).length for s in packets[0])

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self.flows)
        self._fresh_arrival = True
