"""Segmentation block: packets in, per-segment enqueue commands out.

"In order to achieve efficient memory management, in hardware, the
incoming packets are partitioned into fixed size segments of 64 bytes
each.  The segmented packets are stored in the data memory, which is
segment aligned.  The MMS performs per flow queuing ...; each packet is
assigned to a certain flow."
"""

from __future__ import annotations

from typing import List

from repro.core.commands import Command, CommandType
from repro.net.packet import Packet


class SegmentationBlock:
    """Stateless packet -> enqueue-command segmentation."""

    def __init__(self, num_flows: int) -> None:
        if num_flows < 1:
            raise ValueError(f"num_flows must be >= 1, got {num_flows}")
        self.num_flows = num_flows
        self.packets_segmented = 0
        self.segments_produced = 0

    def segment(self, packet: Packet) -> List[Command]:
        """Enqueue commands for every 64-byte segment of ``packet``."""
        if not 0 <= packet.flow_id < self.num_flows:
            raise ValueError(
                f"flow {packet.flow_id} out of range [0, {self.num_flows})"
            )
        lengths = packet.segment_lengths()
        commands = [
            Command(
                type=CommandType.ENQUEUE,
                flow=packet.flow_id,
                eop=(i == len(lengths) - 1),
                length=seg_len,
                pid=packet.pid,
                seg_index=i,
            )
            for i, seg_len in enumerate(lengths)
        ]
        self.packets_segmented += 1
        self.segments_produced += len(commands)
        return commands
