"""The assembled Memory Management System (Figure 2) and load harness.

The MMS couples the Internal Scheduler (per-port command FIFOs), the DQM
(one command in execution at a time -- the execution latency *is* the
processing rate) and the DMC (data transfers overlapped with pointer
work).  The load harness reproduces the Table 5 experiment: four ports
submit synchronized command volleys at a configured aggregate Gbps, and
every command's delay is decomposed into FIFO + execution + data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.commands import Command
from repro.core.dmc import DataMemoryController
from repro.core.dqm import DataQueueManager
from repro.core.latency import LatencyBreakdown
from repro.core.reassembly import ReassemblyBlock
from repro.core.scheduler import DEFAULT_PORTS, InternalScheduler, PortConfig
from repro.core.segmentation import SegmentationBlock
from repro.policies import BufferPolicy, PolicySpec, make_policy
from repro.queueing import PacketQueueManager
from repro.sim import Clock, Simulator
from repro.sim.clock import SEC
from repro.sim.kernel import make_simulator

#: Bits moved per MMS operation (one 64-byte segment).
BITS_PER_OP = 512


@dataclass(frozen=True)
class MmsConfig:
    """MMS build-time configuration.

    Defaults are the paper's: 125 MHz conservative FPGA clock, 32 K
    flows, 8-bank DDR data memory, small per-port command FIFOs.
    """

    clock_mhz: int = 125
    num_flows: int = 32 * 1024
    num_segments: int = 64 * 1024
    num_descriptors: int = 32 * 1024
    num_banks: int = 8
    reorder_window: int = 4
    dmc_pipeline_ns: int = 135
    ports: tuple[PortConfig, ...] = DEFAULT_PORTS
    strict_microcode: bool = False
    keep_samples: bool = False
    #: Ablation A5: overlap data transfers with pointer work (the MMS
    #: design point); False serializes them.
    overlap_data: bool = True
    #: Buffer-management policy (None = legacy: enqueue-on-full raises
    #: OutOfBuffersError).  Sized to ``num_segments`` at build time.
    policy: Optional[PolicySpec] = None
    #: Seed for stochastic policies (RED's private RNG).
    policy_seed: int = 2005
    #: Retain the full DropRecord stream, not just counters.
    policy_records: bool = False

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.num_flows < 1 or self.num_segments < 1:
            raise ValueError("num_flows and num_segments must be >= 1")


class MMS:
    """The Memory Management System block."""

    def __init__(self, config: MmsConfig = MmsConfig(),
                 sim: Optional[Simulator] = None,
                 policy: Optional[BufferPolicy] = None,
                 probe=None) -> None:
        self.config = config
        self.sim = sim or Simulator()
        self.clock = Clock(config.clock_mhz)
        #: Buffer-management policy: an explicit instance wins, else one
        #: is built from ``config.policy`` sized to the segment buffer.
        if policy is None and config.policy is not None:
            policy = make_policy(config.policy, capacity=config.num_segments,
                                 seed=config.policy_seed,
                                 keep_records=config.policy_records)
        self.policy = policy
        if self.policy is not None:
            self.policy.now_fn = lambda: self.sim.now
        self.pqm = PacketQueueManager(num_flows=config.num_flows,
                                      num_segments=config.num_segments,
                                      num_descriptors=config.num_descriptors,
                                      policy=self.policy)
        self.breakdown = LatencyBreakdown(self.clock,
                                          keep_samples=config.keep_samples)
        self.dmc = DataMemoryController(self.sim, self.clock,
                                        num_banks=config.num_banks,
                                        reorder_window=config.reorder_window,
                                        pipeline_overhead_ns=config.dmc_pipeline_ns)
        #: Optional telemetry probe (:mod:`repro.telemetry`); forwarded
        #: to the DQM, which swaps in its probed dispatch/finalize
        #: variants only when one is present.
        self.probe = probe
        self.dqm = DataQueueManager(self.sim, self.clock, self.pqm, self.dmc,
                                    self.breakdown,
                                    strict_microcode=config.strict_microcode,
                                    overlap_data=config.overlap_data,
                                    probe=probe)
        self.scheduler = InternalScheduler(self.sim, config.ports)
        self.segmentation = SegmentationBlock(config.num_flows)
        self.reassembly = ReassemblyBlock()
        self._serve_proc = self.sim.spawn(self._serve(), name="mms.dqm")

    # ----------------------------------------------------------- serving

    def _serve(self):
        while True:
            if not self.scheduler.has_pending:
                yield self.scheduler.wait_for_command()
                continue
            cmd = self.scheduler.pop_next()
            yield from self.dqm.execute(cmd)

    # -------------------------------------------------------------- API

    def submit(self, port: int, cmd: Command):
        """Blocking command submit (generator; backpressure-aware)."""
        yield from self.scheduler.submit(port, cmd)

    def try_submit(self, port: int, cmd: Command) -> bool:
        """Non-blocking command submit."""
        return self.scheduler.try_submit(port, cmd)

    def submit_and_wait(self, port: int, cmd: Command):
        """Blocking submit that also waits for execution (generator).

        ``result = yield from mms.submit_and_wait(port, cmd)`` returns
        the command's functional result (e.g. the dequeued
        :class:`~repro.queueing.packet_queues.SegmentInfo`) once the DQM
        has executed it.
        """
        cmd.completion = self.sim.event(name=f"cmd{cmd.cid}.done")
        yield from self.scheduler.submit(port, cmd)
        result = yield cmd.completion
        return result

    def apply(self, cmd: Command):
        """Zero-time functional application of a command (no simulated
        clock, no FIFO/DMC).  The application models use this to express
        their logic against the MMS command set; throughput questions go
        through :meth:`submit` instead."""
        result, _trace_len, _slot = self.dqm._dispatch(cmd)
        return result

    def prefill(self, flows: Iterator[int], packets_per_flow: int,
                segments_per_packet: int = 1) -> int:
        """Functionally preload queues (no simulated time): the steady
        state backlog the Table 5 experiment dequeues from.  Delegates
        to :meth:`PacketQueueManager.bulk_prefill`, whose closed form
        is state-identical to the historical per-segment loop."""
        return self.pqm.bulk_prefill(flows, packets_per_flow,
                                     segments_per_packet)

    @property
    def commands_executed(self) -> int:
        return self.dqm.commands_executed

    @property
    def drop_stats(self):
        """The policy's accept/drop/push-out counters (None without a
        policy)."""
        return self.policy.stats if self.policy is not None else None

    def ops_per_second(self, elapsed_ps: int) -> float:
        if elapsed_ps <= 0:
            return 0.0
        return self.commands_executed * SEC / elapsed_ps

    def achieved_gbps(self, elapsed_ps: int) -> float:
        return self.ops_per_second(elapsed_ps) * BITS_PER_OP / 1e9


# ======================================================== load experiment

@dataclass
class MmsLoadResult:
    """One Table 5 row: delay decomposition at an offered load."""

    offered_gbps: float
    completed_ops: int
    elapsed_ps: int
    fifo_cycles: float
    execution_cycles: float
    data_cycles: float
    #: True mean submit-to-completion latency (see LatencyBreakdown);
    #: equals the additive total only when pointer/data work serializes.
    end_to_end_cycles: float = 0.0
    #: Execution engine the run used ("fast" = calendar-queue kernel,
    #: "reference" = heapq ordering spec); results are identical.
    engine: str = "fast"

    @property
    def total_cycles(self) -> float:
        return self.fifo_cycles + self.execution_cycles + self.data_cycles

    @property
    def achieved_gbps(self) -> float:
        if self.elapsed_ps <= 0:
            return 0.0
        return self.completed_ops * SEC / self.elapsed_ps * BITS_PER_OP / 1e9

    @property
    def achieved_mops(self) -> float:
        if self.elapsed_ps <= 0:
            return 0.0
        return self.completed_ops * SEC / self.elapsed_ps / 1e6

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MmsLoadResult({self.offered_gbps} Gbps: fifo={self.fifo_cycles:.1f} "
            f"exec={self.execution_cycles:.1f} data={self.data_cycles:.1f} "
            f"total={self.total_cycles:.1f})"
        )


def run_load(offered_gbps: float, num_volleys: int = 2500,
             config: MmsConfig = MmsConfig(),
             active_flows: int = 512,
             warmup_volleys: int = 200,
             burst_len: int = 4,
             burst_prob: float = 0.25,
             seed: int = 2005,
             engine: str = "fast",
             probe=None) -> MmsLoadResult:
    """The Table 5 experiment at one offered load.

    Four ports submit synchronized volleys -- one command per port per
    volley period, the arrival pattern that motivates the per-port FIFOs
    ("bursts of commands that may arrive simultaneously").  With
    probability ``burst_prob`` a port emits ``burst_len`` back-to-back
    commands and skips the corresponding later volleys (same average
    rate, burstier arrivals -- real interfaces deliver segments in
    clumps).  The In and CPU0 ports enqueue, the Out and CPU1 ports
    dequeue, so the command mix is half 10-cycle enqueues, half 11-cycle
    dequeues: the paper's 10.5-cycle average execution latency.  Queues
    are prefilled so dequeues always find data.  Burst parameters and the
    DMC pipeline constant are calibrated per EXPERIMENTS.md.

    ``engine`` selects the execution path: ``"fast"`` (default) runs the
    batched command-stream engine (:mod:`repro.engines`) when it claims
    ``config`` -- falling back to the calendar-queue kernel otherwise --
    and ``"reference"`` the heapq ordering spec; the paths are
    trace-identical, only wall-clock differs.  The kernel names
    ``"calendar"``/``"heapq"`` select a DES kernel explicitly.
    """
    if offered_gbps <= 0:
        raise ValueError(f"offered_gbps must be positive, got {offered_gbps}")
    if active_flows < 4:
        raise ValueError("active_flows must be >= 4")
    if not 0.0 <= burst_prob <= 1.0:
        raise ValueError(f"burst_prob must be in [0,1], got {burst_prob}")
    if burst_len < 1:
        raise ValueError(f"burst_len must be >= 1, got {burst_len}")
    from repro.core.workloads import (LOAD_LAG_VOLLEYS, drive_port,
                                      load_feed_ops)

    if engine == "fast":
        from repro.engines import stream_run_load, stream_supports
        if stream_supports(config) is None:
            return stream_run_load(
                offered_gbps, num_volleys=num_volleys, config=config,
                active_flows=active_flows, warmup_volleys=warmup_volleys,
                burst_len=burst_len, burst_prob=burst_prob, seed=seed,
                probe=probe)

    mms = MMS(config, sim=make_simulator(engine), probe=probe)
    sim = mms.sim
    # each flow is enqueued once per active_flows/2 volleys; the dequeue
    # stream lags by LOAD_LAG_VOLLEYS, so a small per-flow backlog
    # suffices
    mms.prefill(range(active_flows),
                packets_per_flow=(2 * LOAD_LAG_VOLLEYS) // active_flows + 4)

    volley_period_ps = round(4 * BITS_PER_OP / offered_gbps * 1000)

    def feed(port: int, enqueue: bool, phase: int):
        ops = load_feed_ops(lambda: sim.now, port, enqueue, phase,
                            num_volleys, volley_period_ps, active_flows,
                            burst_len, burst_prob, seed)
        return drive_port(mms, port, ops)

    sim.spawn(feed(0, True, 0), name="in")
    sim.spawn(feed(1, False, 0), name="out")
    sim.spawn(feed(2, True, 1), name="cpu0")
    sim.spawn(feed(3, False, 1), name="cpu1")

    # fresh recorders after warm-up for clean steady-state means
    horizon = (num_volleys + 64) * volley_period_ps + 10 * SEC // 1000
    warm_breakdown = LatencyBreakdown(mms.clock, keep_samples=config.keep_samples)
    original_record_parts = mms.breakdown.record_parts
    state = {"t0": None, "t_last": 0}

    # Hook the parts-level recorder: both LatencyBreakdown.record and the
    # DQM's allocation-free record_parts fast path funnel through it.
    def recording_with_warmup(fifo_cycles, execution_cycles, data_cycles,
                              end_to_end_cycles=0.0):
        original_record_parts(fifo_cycles, execution_cycles, data_cycles,
                              end_to_end_cycles)
        state["t_last"] = sim.now
        if mms.breakdown.count == warmup_volleys * 4:
            state["t0"] = sim.now
        if state["t0"] is not None and mms.breakdown.count > warmup_volleys * 4:
            warm_breakdown.record_parts(fifo_cycles, execution_cycles,
                                        data_cycles, end_to_end_cycles)

    mms.breakdown.record_parts = recording_with_warmup  # type: ignore[assignment]
    sim.run(until_ps=horizon)

    elapsed = state["t_last"] - (state["t0"] or 0)
    use = warm_breakdown if warm_breakdown.count else mms.breakdown
    row = use.row()
    return MmsLoadResult(
        offered_gbps=offered_gbps,
        completed_ops=use.count,
        elapsed_ps=elapsed,
        fifo_cycles=row["fifo"],
        execution_cycles=row["execution"],
        data_cycles=row["data"],
        end_to_end_cycles=use.end_to_end.mean,
        engine=engine,
    )


def run_saturation(num_commands: int = 8000,
                   config: MmsConfig = MmsConfig(),
                   active_flows: int = 512,
                   engine: str = "fast",
                   probe=None) -> MmsLoadResult:
    """Headline experiment: backlogged ports, maximum command rate.

    Reproduces "The MMS can handle one operation per 84 ns or 12 Mops/sec
    operating at 125MHz ... the overall bandwidth the MMS supports is
    6.145 Gbps" (our model: 1/10.5 cycles = 11.9 Mops ~ 6.1 Gbps).
    """
    from repro.core.workloads import drive_port, saturation_feed_ops

    if engine == "fast":
        from repro.engines import stream_run_saturation, stream_supports
        if stream_supports(config) is None:
            return stream_run_saturation(num_commands=num_commands,
                                         config=config,
                                         active_flows=active_flows,
                                         probe=probe)

    mms = MMS(config, sim=make_simulator(engine), probe=probe)
    sim = mms.sim
    per_port = num_commands // 4
    mms.prefill(range(active_flows), packets_per_flow=per_port * 2 // active_flows + 2)

    def feed(port: int, enqueue: bool, phase: int):
        return drive_port(mms, port,
                          saturation_feed_ops(enqueue, phase, per_port,
                                              active_flows))

    sim.spawn(feed(0, True, 0), name="in")
    sim.spawn(feed(1, False, 0), name="out")
    sim.spawn(feed(2, True, 1), name="cpu0")
    sim.spawn(feed(3, False, 1), name="cpu1")
    sim.run(until_ps=60 * SEC)
    row = mms.breakdown.row()
    return MmsLoadResult(
        offered_gbps=float("inf"),
        completed_ops=mms.breakdown.count,
        elapsed_ps=_last_execution_ps(mms),
        fifo_cycles=row["fifo"],
        execution_cycles=row["execution"],
        data_cycles=row["data"],
        end_to_end_cycles=mms.breakdown.end_to_end.mean,
        engine=engine,
    )


def _last_execution_ps(mms: MMS) -> int:
    """Time span of command execution (saturation rate denominator)."""
    # the DQM runs back-to-back under saturation; its executed count and
    # the average latency bound the span tightly
    return round(mms.commands_executed
                 * mms.breakdown.execution.mean
                 * mms.clock.period_ps)


def figure2_diagram() -> str:
    """ASCII rendering of Figure 2 (the MMS architecture)."""
    return """\
               Figure 2: MMS Architecture

            +--------+        +--------+
            |  DRAM  |        |  SRAM  |
            | (data) |        | (ptrs) |
            +---+----+        +----+---+
                |                  |
          +-----+-----+      +-----+------+
          |    DMC    |<---->|    Data    |
          | (data mem |      |   Queue    |
          |  control) |      |  Manager   |
          +-----+-----+      +-----+------+
                |                  ^
   =============|==================|==== MMS ====
      |         |            +-----+------+     |
 +----+------+  |            |  Internal  |     |
 | Segmenta- |  |            | Scheduler  |     |
 |   tion    |  |            +-+--+--+--+-+     |
 +----+------+  |              |1 |2 |3 |4      |
      |    +----+-----+        |  |  |  |       |
      |    | Reassem- |     [command FIFOs]     |
      |    |   bly    |        |  |  |  |       |
      |    +----+-----+        |  |  |  |       |
 -----+---------+--------------+--+--+--+-------
     IN        OUT            IN OUT CPU CPU
              DATA ===        COMMANDS ---  BACKPRESSURE <-->
"""
