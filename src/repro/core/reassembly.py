"""Reassembly block: dequeued segments in, packets out.

The inverse of :class:`repro.core.segmentation.SegmentationBlock`: as the
DQM dequeues segments of a flow, the reassembly block accumulates them
and emits the packet when the end-of-packet segment arrives.  Segments
of one flow arrive strictly in order (the queue structure guarantees it),
so reassembly is a per-flow accumulator, not a reorder buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.queueing.packet_queues import SegmentInfo


@dataclass
class ReassembledPacket:
    """A packet rebuilt from its dequeued segments."""

    flow: int
    pid: int
    segments: List[SegmentInfo] = field(default_factory=list)

    @property
    def length_bytes(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def num_segments(self) -> int:
        return len(self.segments)


class ReassemblyBlock:
    """Per-flow segment accumulator."""

    def __init__(self) -> None:
        self._partial: Dict[int, ReassembledPacket] = {}
        self.packets_reassembled = 0
        self.segments_consumed = 0

    def feed(self, flow: int, info: SegmentInfo) -> Optional[ReassembledPacket]:
        """Add one dequeued segment; returns the packet on EOP."""
        self.segments_consumed += 1
        partial = self._partial.get(flow)
        if partial is None:
            partial = ReassembledPacket(flow=flow, pid=info.pid)
            self._partial[flow] = partial
        partial.segments.append(info)
        if not info.eop:
            return None
        del self._partial[flow]
        self.packets_reassembled += 1
        return partial

    def open_flows(self) -> List[int]:
        """Flows with a partially reassembled packet."""
        return sorted(self._partial)

    def in_flight_segments(self) -> int:
        return sum(p.num_segments for p in self._partial.values())
