"""repro: behavioral reproduction of "Queue Management in Network
Processors" (Papaefstathiou et al., DATE 2005).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (picosecond events, processes,
    clock domains, FIFOs, resources, statistics).
``repro.mem``
    Memory substrate: DDR bank-timing model, ZBT SRAM, the Table 1
    access schedulers, DES-integrated controllers.
``repro.net``
    Packets, flows, Ethernet/ATM framing arithmetic, traffic generators.
``repro.queueing``
    The paper's queue data structures over traced pointer memory.
``repro.ixp``
    IXP1200 software-queue-management model (Table 2).
``repro.npu``
    The Figure 1 reference NPU and its Table 3 cost model.
``repro.core``
    The contribution: the MMS hardware queue manager (Figure 2,
    Tables 4 and 5).
``repro.apps``
    Section 6 applications expressed against the MMS command API.
``repro.analysis``
    Experiment drivers regenerating every published table and figure.

Quick start::

    from repro.core import MMS, MmsConfig, Command, CommandType
    mms = MMS(MmsConfig(num_flows=64, num_segments=1024,
                        num_descriptors=512))
    mms.apply(Command(type=CommandType.ENQUEUE, flow=3, eop=True))
    info = mms.apply(Command(type=CommandType.DEQUEUE, flow=3))
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "mem",
    "net",
    "queueing",
    "ixp",
    "npu",
    "core",
    "apps",
    "analysis",
]
