"""First-divergence localization between two trace payloads.

Engine-identity and resume-identity failures used to be a wall of
bytes: two multi-megabyte JSON documents that differ *somewhere*.
:func:`first_divergence` walks two span lists in lockstep and names the
first span (and the first field within it) where the runs part ways,
with the surrounding spans as context -- one actionable line instead of
a manual bisect.  Spans are compared in snapshot order (dispatch
sequence, then stage), which both engines share by construction.

The comparison is exact -- the byte-identity contract means *any*
difference is a finding, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Divergence:
    """Where two traces first part ways.

    ``kind`` names the channel: ``"spans"`` (index + differing fields +
    context), ``"span-count"`` (one list is a prefix of the other),
    ``"counters"`` / ``"attribution"`` / ``"schema"`` (span lists are
    identical but the aggregates differ).
    """

    kind: str
    index: int = -1
    fields: Tuple[Tuple[str, Any, Any], ...] = ()
    context_a: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    context_b: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    context_start: int = 0


def _map_diff(a: Mapping[str, Any],
              b: Mapping[str, Any]) -> List[Tuple[str, Any, Any]]:
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append((key, va, vb))
    return out


def first_divergence(a: Mapping[str, Any], b: Mapping[str, Any],
                     context: int = 3) -> Optional[Divergence]:
    """The first divergent span between traces ``a`` and ``b``
    (None = byte-identical payloads)."""
    if a.get("schema") != b.get("schema"):
        return Divergence(kind="schema", fields=(
            ("schema", a.get("schema"), b.get("schema")),))
    spans_a = a.get("spans", [])
    spans_b = b.get("spans", [])
    for i, (sa, sb) in enumerate(zip(spans_a, spans_b)):
        if sa == sb:
            continue
        start = max(0, i - context)
        stop = i + context + 1
        return Divergence(
            kind="spans", index=i,
            fields=tuple(_map_diff(sa, sb)),
            context_a=tuple(spans_a[start:stop]),
            context_b=tuple(spans_b[start:stop]),
            context_start=start)
    if len(spans_a) != len(spans_b):
        i = min(len(spans_a), len(spans_b))
        start = max(0, i - context)
        return Divergence(
            kind="span-count", index=i,
            fields=(("len(spans)", len(spans_a), len(spans_b)),),
            context_a=tuple(spans_a[start:i + context + 1]),
            context_b=tuple(spans_b[start:i + context + 1]),
            context_start=start)
    for key in ("counters", "attribution"):
        diffs = _map_diff(a.get(key, {}), b.get(key, {}))
        if diffs:
            return Divergence(kind=key, fields=tuple(diffs))
    if dict(a) != dict(b):  # unreachable for schema-valid payloads
        return Divergence(kind="schema",
                          fields=(("payload", "differs", "differs"),))
    return None


def _span_line(span: Mapping[str, Any]) -> str:
    return (f"{span['id']:>14}  {span['op']:<24} flow={span['flow']:<4} "
            f"[{span['begin_ps']:>12} .. {span['end_ps']:>12}] ps  "
            f"verdict={span['verdict']}")


def render(div: Optional[Divergence], label_a: str, label_b: str) -> str:
    """Human-readable divergence report (also used by ``trace-diff``)."""
    if div is None:
        return f"traces identical: {label_a} == {label_b}"
    lines = [f"trace A: {label_a}", f"trace B: {label_b}"]
    if div.kind in ("spans", "span-count"):
        what = ("first divergent span" if div.kind == "spans"
                else "span lists diverge in length; first unmatched span")
        lines.append(f"{what}: index {div.index}")
        for key, va, vb in div.fields:
            lines.append(f"  {key}: A={va!r}  B={vb!r}")
        for name, spans in (("A", div.context_a), ("B", div.context_b)):
            lines.append(f"context ({name}):")
            if not spans:
                lines.append("  (no spans)")
            for off, span in enumerate(spans):
                marker = ">" if div.context_start + off == div.index else " "
                lines.append(f" {marker}{div.context_start + off:>6}  "
                             + _span_line(span))
    else:
        lines.append(f"span lists identical; {div.kind} differ:")
        for key, va, vb in div.fields:
            lines.append(f"  {key}: A={va!r}  B={vb!r}")
    return "\n".join(lines)
