"""Human-readable run reports from result/trace documents.

:func:`render_report` turns any document the CLI produces -- a
``run``/``sweep`` document, a single serialized
:class:`~repro.scenarios.RunResult`, a ``checkpoint-run`` envelope or a
raw trace snapshot -- into a terminal summary: the run header, the
telemetry percentiles (PR 5's distributions), the trace attribution
(where the time went, per component) and the drop provenance.  It is
the triage entry point: one ``repro-experiments report results.json``
instead of spelunking nested JSON.
"""

from __future__ import annotations

from typing import Any, List, Mapping

#: Histogram keys worth a summary line, in display order.
_REPORT_HISTOGRAMS = ("all.e2e", "all.fifo", "enqueue.e2e", "dequeue.e2e")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def _telemetry_lines(t: Mapping[str, Any], indent: str) -> List[str]:
    counters = t.get("counters", {})
    lines = [f"{indent}telemetry: {counters.get('commands', 0)} commands, "
             f"{counters.get('dropped_commands', 0)} dropped"]
    hists = t.get("histograms", {})
    for name in _REPORT_HISTOGRAMS:
        h = hists.get(name)
        if not isinstance(h, Mapping) or not h.get("count"):
            continue
        summary = h.get("percentiles", {})
        cells = "  ".join(f"{k}={_fmt(v)}" for k, v in summary.items())
        lines.append(f"{indent}  {name:<14} {cells}  (cycles, "
                     f"n={h['count']})")
    occ = t.get("occupancy", {})
    if occ:
        lines.append(
            f"{indent}  occupancy: peak {occ.get('peak_total', 0)} segments "
            f"@ {occ.get('peak_time_ps', -1)} ps, "
            f"final {occ.get('final_total', 0)}")
    return lines


def _trace_lines(t: Mapping[str, Any], indent: str) -> List[str]:
    counters = t.get("counters", {})
    lines = [f"{indent}trace: {counters.get('dispatched', 0)} dispatched, "
             f"{counters.get('completed', 0)} completed, "
             f"{counters.get('spans', 0)} spans"]
    attribution = t.get("attribution", {})
    shares = attribution.get("shares", {})
    if attribution.get("total_ps"):
        lines.append(
            f"{indent}  attribution: "
            f"fifo {shares.get('fifo', 0.0) * 100:.1f}%  "
            f"dqm {shares.get('dqm', 0.0) * 100:.1f}%  "
            f"dmc+ddr {shares.get('dmc_ddr', 0.0) * 100:.1f}%  "
            f"(total {attribution['total_ps']} ps)")
    drops = counters.get("drops_by_reason", {})
    if drops:
        cells = "  ".join(f"{k}={v}" for k, v in sorted(drops.items()))
        lines.append(f"{indent}  drops: {cells}")
    truncated = (counters.get("truncated_commands", 0)
                 + counters.get("truncated_spans", 0))
    if truncated:
        lines.append(f"{indent}  (span retention capped: {truncated} "
                     f"rows beyond max_spans not retained)")
    return lines


def _per_load(payload: Mapping[str, Any]) -> bool:
    """A multi-load block (table5 style) vs a single snapshot."""
    return isinstance(payload, Mapping) and "schema" not in payload


def _result_lines(result: Mapping[str, Any]) -> List[str]:
    wall = result.get("wall_clock_s")
    header = (f"== {result.get('scenario', '?')} "
              f"({result.get('kind', '?')})  "
              f"engine={result.get('engine', '?')} "
              f"seed={result.get('seed', '?')} "
              f"budget={result.get('budget', '?')}")
    if isinstance(wall, (int, float)):
        header += f"  wall={wall:.2f}s"
    lines = [header]
    metrics = result.get("metrics", {})
    if not isinstance(metrics, Mapping):
        return lines
    scalars = {k: v for k, v in metrics.items()
               if isinstance(v, (int, float, str, bool))}
    if scalars:
        cells = "  ".join(f"{k}={_fmt(v)}" for k, v in sorted(
            scalars.items()))
        lines.append(f"  metrics: {cells}")
    for key, renderer in (("telemetry", _telemetry_lines),
                          ("trace", _trace_lines)):
        payload = metrics.get(key)
        if not isinstance(payload, Mapping):
            continue
        if _per_load(payload):
            for load in sorted(payload):
                lines.append(f"  [{load}]")
                lines.extend(renderer(payload[load], "    "))
        else:
            lines.extend(renderer(payload, "  "))
    return lines


def render_report(doc: Mapping[str, Any], source: str = "") -> str:
    """The report text for one loaded JSON document (see module
    docstring for the accepted shapes)."""
    if not isinstance(doc, Mapping):
        raise ValueError("document is not a JSON object")
    lines: List[str] = []
    if source:
        lines.append(f"report: {source}")
    if "spans" in doc and "attribution" in doc:
        lines.extend(_trace_lines(doc, ""))
        return "\n".join(lines)
    if "runs" in doc and isinstance(doc["runs"], list):
        results = [r for r in doc["runs"] if isinstance(r, Mapping)]
        failures = doc.get("failures", [])
    elif "result" in doc and isinstance(doc["result"], Mapping) \
            and "metrics" not in doc["result"]:
        # checkpoint-run envelope: the result is a flat counters dict
        lines.append(f"== {doc.get('scenario', '?')}  "
                     f"engine={doc.get('engine', '?')}  "
                     f"checkpoints={len(doc.get('checkpoints', []))}")
        cells = "  ".join(f"{k}={_fmt(v)}"
                          for k, v in sorted(doc["result"].items()))
        if cells:
            lines.append(f"  counters: {cells}")
        return "\n".join(lines)
    elif "result" in doc and isinstance(doc["result"], Mapping):
        results = [doc["result"]]
        failures = []
    elif "metrics" in doc:
        results = [doc]
        failures = []
    else:
        raise ValueError(
            "document is neither a result, a run document, nor a trace")
    for result in results:
        lines.extend(_result_lines(result))
    if failures:
        lines.append(f"failures: {len(failures)}")
        for f in failures:
            if isinstance(f, Mapping):
                lines.append(f"  {f.get('name', '?')}: "
                             f"{f.get('reason', '?')}")
    if not results and not failures:
        raise ValueError("document carries no runs")
    return "\n".join(lines)
