"""The span tracer: per-packet lifecycle stages as a deterministic fold.

:class:`TraceCollector` consumes the probe protocol's stage channel
(:meth:`~repro.telemetry.probe.Probe.on_stages`) plus the dispatch
channel and records one span per lifecycle stage of every command:

* ``fifo``    -- port submit to DQM pop (the reassembly/staging wait),
* ``execute`` -- the DQM's serial pointer-manipulation schedule,
* ``data``    -- DMC submit to DDR completion (absent for pointer-only
  and policy-dropped commands).

Spans carry the dispatch sequence number, the ``(time_ps, seq)`` bounds,
opcode, flow, post-dispatch queue occupancy and the policy verdict --
everything needed to localize where two runs first diverge
(:mod:`repro.trace.diff`) and where the time went
(:mod:`repro.trace.report`).  Alongside the spans the collector folds
per-component cycle attribution (FIFO vs DQM vs DMC+DDR share of total
time) as exact integer picosecond sums, independent of span retention.

Everything is a deterministic fold over the probe streams, so the
snapshot of a ``fast``-engine run is byte-identical to the
``reference`` run's -- the same identity contract as
:mod:`repro.telemetry`, extended to stage bounds by ``tests/trace``.

This module is a probe-layer leaf (see ``repro-lint.toml`` R2): it may
import only the probe protocol and the shared command vocabulary, never
policies or engines -- drop verdicts are read structurally off the
functional result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from repro.core.commands import CommandType
from repro.telemetry.probe import Probe

#: Schema version of the serialized trace payload.
TRACE_SCHEMA = 1

#: Stage names in within-command order (span sort key).
STAGES = ("fifo", "execute", "data")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative tracing configuration (scenario-spec payload).

    Carried by :class:`~repro.scenarios.ScenarioSpec.trace`; its
    presence enables the span tracer for a run.
    """

    #: Retain spans for at most this many dispatched commands
    #: (0 = unlimited).  Attribution and counters keep folding past the
    #: cap; only the retained span list is bounded.
    max_spans: int = 0

    def __post_init__(self) -> None:
        if self.max_spans < 0:
            raise ValueError(
                f"max_spans must be >= 0, got {self.max_spans}")


class TraceCollector(Probe):
    """The standard span tracer (see module docstring)."""

    wants_stages = True

    def __init__(self, spec: TraceSpec = TraceSpec()) -> None:
        self.spec = spec
        # dispatch channel: row per on_command call, indexed by dispatch
        # seq (the DQM is serial: the n-th dispatch is seq n)
        self._commands: List[list] = []
        self.dispatched = 0
        self.by_op: Dict[str, int] = {}
        self.dropped_commands = 0
        self.drops_by_reason: Dict[str, int] = {}
        # stage channel: row per on_stages delivery, in delivery order
        self._stages: List[list] = []
        self.completed = 0
        self.truncated_commands = 0
        self.truncated_spans = 0
        # exact integer attribution sums (ps); never truncated
        self.fifo_ps = 0
        self.dqm_ps = 0
        self.dmc_ddr_ps = 0
        self.total_ps = 0

    # ------------------------------------------------------ probe channel

    def on_command(self, time_ps: int, op: CommandType, flow: int,
                   result: object, queue_depth: int,
                   total_segments: int) -> None:
        self.dispatched += 1
        key = op.value
        self.by_op[key] = self.by_op.get(key, 0) + 1
        # structural drop detection: only a rejected enqueue's
        # DroppedSegment result carries a `reason` (this module must not
        # import the policy layer)
        reason = getattr(result, "reason", None)
        if reason is not None:
            self.dropped_commands += 1
            self.drops_by_reason[reason] = \
                self.drops_by_reason.get(reason, 0) + 1
        cap = self.spec.max_spans
        if cap and len(self._commands) >= cap:
            self.truncated_commands += 1
            return
        verdict = "accept" if reason is None else f"drop:{reason}"
        self._commands.append([verdict, queue_depth, total_segments])

    def on_stages(self, time_ps: int, seq: int, op: CommandType, flow: int,
                  submit_ps: int, start_ps: int, end_ps: int,
                  data_submit_ps: int, data_done_ps: int) -> None:
        self.completed += 1
        if submit_ps >= 0:
            self.fifo_ps += start_ps - submit_ps
        self.dqm_ps += end_ps - start_ps
        completion = end_ps
        if data_submit_ps >= 0:
            self.dmc_ddr_ps += data_done_ps - data_submit_ps
            if data_done_ps > completion:
                completion = data_done_ps
        base = submit_ps if submit_ps >= 0 else start_ps
        self.total_ps += completion - base
        cap = self.spec.max_spans
        if cap and seq >= cap:
            self.truncated_spans += 1
            return
        self._stages.append([time_ps, seq, op.value, flow, submit_ps,
                             start_ps, end_ps, data_submit_ps,
                             data_done_ps])

    # ------------------------------------------------- snapshot/restore

    def state_dict(self) -> Dict[str, Any]:
        """Exact JSON-serializable snapshot of the fold state.

        Restoring it into a fresh collector of the same
        :class:`TraceSpec` and feeding the remaining probe streams
        yields a byte-identical final snapshot (the
        :mod:`repro.checkpoint` resume-identity contract).
        """
        return {
            "max_spans": self.spec.max_spans,
            "commands": [list(row) for row in self._commands],
            "dispatched": self.dispatched,
            "by_op": dict(self.by_op),
            "dropped_commands": self.dropped_commands,
            "drops_by_reason": dict(self.drops_by_reason),
            "stages": [list(row) for row in self._stages],
            "completed": self.completed,
            "truncated_commands": self.truncated_commands,
            "truncated_spans": self.truncated_spans,
            "fifo_ps": self.fifo_ps,
            "dqm_ps": self.dqm_ps,
            "dmc_ddr_ps": self.dmc_ddr_ps,
            "total_ps": self.total_ps,
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output (see its contract)."""
        if state["max_spans"] != self.spec.max_spans:
            raise ValueError(
                f"trace state was folded with max_spans="
                f"{state['max_spans']}, this collector uses "
                f"{self.spec.max_spans}")
        self._commands = [list(row) for row in state["commands"]]
        self.dispatched = state["dispatched"]
        self.by_op = dict(state["by_op"])
        self.dropped_commands = state["dropped_commands"]
        self.drops_by_reason = dict(state["drops_by_reason"])
        self._stages = [list(row) for row in state["stages"]]
        self.completed = state["completed"]
        self.truncated_commands = state["truncated_commands"]
        self.truncated_spans = state["truncated_spans"]
        self.fifo_ps = state["fifo_ps"]
        self.dqm_ps = state["dqm_ps"]
        self.dmc_ddr_ps = state["dmc_ddr_ps"]
        self.total_ps = state["total_ps"]

    # ----------------------------------------------------------- snapshot

    def snapshot(self) -> "TraceSnapshot":
        spans: List[Dict[str, Any]] = []
        for (record_ps, seq, op, flow, submit, start, end,
             data_submit, data_done) in sorted(
                 self._stages, key=lambda row: row[1]):
            if seq < len(self._commands):
                verdict, queue_depth, total_segments = self._commands[seq]
            else:  # channel lengths can differ only under truncation
                verdict, queue_depth, total_segments = None, -1, -1
            common = {
                "seq": seq,
                "op": op,
                "flow": flow,
                "verdict": verdict,
                "queue_depth": queue_depth,
                "total_segments": total_segments,
                "record_ps": record_ps,
            }
            if submit >= 0:
                spans.append({"id": f"{seq}/fifo", "stage": "fifo",
                              "begin_ps": submit, "end_ps": start,
                              **common})
            spans.append({"id": f"{seq}/execute", "stage": "execute",
                          "begin_ps": start, "end_ps": end, **common})
            if data_submit >= 0:
                spans.append({"id": f"{seq}/data", "stage": "data",
                              "begin_ps": data_submit, "end_ps": data_done,
                              **common})
        total = self.total_ps
        return TraceSnapshot(
            schema=TRACE_SCHEMA,
            counters={
                "dispatched": self.dispatched,
                "completed": self.completed,
                "by_op": {k: self.by_op[k] for k in sorted(self.by_op)},
                "dropped_commands": self.dropped_commands,
                "drops_by_reason": {k: self.drops_by_reason[k]
                                    for k in sorted(self.drops_by_reason)},
                "spans": len(spans),
                "truncated_commands": self.truncated_commands,
                "truncated_spans": self.truncated_spans,
            },
            attribution={
                "fifo_ps": self.fifo_ps,
                "dqm_ps": self.dqm_ps,
                "dmc_ddr_ps": self.dmc_ddr_ps,
                "total_ps": total,
                "shares": {
                    "fifo": self.fifo_ps / total if total else 0.0,
                    "dqm": self.dqm_ps / total if total else 0.0,
                    "dmc_ddr": self.dmc_ddr_ps / total if total else 0.0,
                },
            },
            spans=spans,
        )


@dataclass(frozen=True)
class TraceSnapshot:
    """Typed, immutable view of one trace fold.

    ``to_dict`` / ``from_dict`` round-trip exactly (the share floats
    included -- JSON preserves Python float reprs), so a snapshot can
    travel inside :attr:`~repro.scenarios.RunResult.metrics` and be
    compared byte-for-byte across engines.  The payload deliberately
    carries no engine label or wall-clock field -- byte identity *is*
    the contract.
    """

    schema: int
    counters: Dict[str, Any]
    attribution: Dict[str, Any]
    spans: List[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "counters": self.counters,
            "attribution": self.attribution,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceSnapshot":
        problems = validate_trace_dict(d)
        if problems:
            raise ValueError("invalid trace payload: "
                             + "; ".join(problems))
        return cls(schema=d["schema"],
                   counters=dict(d["counters"]),
                   attribution=dict(d["attribution"]),
                   spans=[dict(s) for s in d["spans"]])


#: Per-span fields every serialized span must carry (value type check).
_SPAN_FIELDS = (
    ("id", str), ("stage", str), ("seq", int), ("op", str), ("flow", int),
    ("begin_ps", int), ("end_ps", int), ("record_ps", int),
    ("queue_depth", int), ("total_segments", int),
)


def validate_trace_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of one serialized trace payload (list of
    human-readable problems; empty = valid).  Dependency-free, like
    :func:`repro.telemetry.validate_telemetry_dict`."""
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["trace payload is not an object"]
    if d.get("schema") != TRACE_SCHEMA:
        problems.append(f"schema {d.get('schema')!r} != {TRACE_SCHEMA}")
    for key in ("counters", "attribution"):
        if not isinstance(d.get(key), Mapping):
            problems.append(f"{key!r} missing or not an object")
    if not isinstance(d.get("spans"), list):
        problems.append("'spans' missing or not a list")
        return problems
    counters = d.get("counters")
    if isinstance(counters, Mapping):
        for key in ("dispatched", "completed", "dropped_commands",
                    "spans", "truncated_commands", "truncated_spans"):
            if not isinstance(counters.get(key), int):
                problems.append(f"counters.{key} malformed")
        for key in ("by_op", "drops_by_reason"):
            if not isinstance(counters.get(key), Mapping):
                problems.append(f"counters.{key} malformed")
        if isinstance(counters.get("spans"), int) \
                and counters["spans"] != len(d["spans"]):
            problems.append("counters.spans != len(spans)")
    attribution = d.get("attribution")
    if isinstance(attribution, Mapping):
        for key in ("fifo_ps", "dqm_ps", "dmc_ddr_ps", "total_ps"):
            if not isinstance(attribution.get(key), int):
                problems.append(f"attribution.{key} malformed")
        shares = attribution.get("shares")
        if not isinstance(shares, Mapping):
            problems.append("attribution.shares malformed")
        else:
            for key in ("fifo", "dqm", "dmc_ddr"):
                if not isinstance(shares.get(key), (int, float)):
                    problems.append(f"attribution.shares.{key} malformed")
    for i, span in enumerate(d["spans"]):
        if not isinstance(span, Mapping):
            problems.append(f"spans[{i}] is not an object")
            break
        bad = [key for key, types in _SPAN_FIELDS
               if not isinstance(span.get(key), types)]
        if bad:
            problems.append(f"spans[{i}] malformed fields: {bad}")
            break
        if span["stage"] not in STAGES:
            problems.append(f"spans[{i}].stage {span['stage']!r} unknown")
            break
    return problems
