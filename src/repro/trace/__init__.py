"""``repro.trace``: per-packet lifecycle tracing and run reports.

The telemetry layer (:mod:`repro.telemetry`) answers distribution
questions -- tail latency, occupancy dynamics -- but not *which stage of
which packet* took the time, nor *where two engines first diverged*.
This package adds the span tier on top of the same probe protocol:

* :class:`TraceCollector` (:mod:`.spans`) -- a
  :class:`~repro.telemetry.Probe` recording one span per lifecycle
  stage (FIFO wait, DQM execution, DMC/DDR data transfer) of every
  command, plus exact per-component cycle attribution.  Byte-identical
  across the kernel and :class:`~repro.engines.StreamMms` engines, like
  every probe fold.
* :mod:`.export` -- Chrome trace-event JSON for ui.perfetto.dev.
* :mod:`.diff` -- first-divergent-span localization between two traces.
* :mod:`.report` -- human-readable run summaries from result documents.

Only the probe-layer leaf (:mod:`.spans`) is re-exported here; the
export/diff/report tooling lives in the slow layer and is imported as
explicit submodules (``from repro.trace import export``) so that
spec-layer imports of :class:`TraceSpec` never drag orchestration
machinery into the import graph.
"""

from repro.trace.spans import (
    STAGES,
    TRACE_SCHEMA,
    TraceCollector,
    TraceSnapshot,
    TraceSpec,
    validate_trace_dict,
)

__all__ = [
    "STAGES",
    "TRACE_SCHEMA",
    "TraceCollector",
    "TraceSnapshot",
    "TraceSpec",
    "validate_trace_dict",
]
