"""Chrome trace-event export: view a run's spans in Perfetto.

:func:`to_chrome_trace` converts one serialized
:class:`~repro.trace.spans.TraceSnapshot` payload to the Chrome
trace-event JSON format (the ``traceEvents`` array of ``"X"`` complete
events), which https://ui.perfetto.dev renders directly.  Stages map to
threads of one process -- FIFO wait, DQM execution, DMC/DDR transfer --
so a packet's lifecycle reads as a vertical slice across the three
lanes.  Timestamps are microseconds (the format's unit); the original
picosecond bounds travel unrounded in each event's ``args``.

:func:`extract_traces` digs trace payloads out of any document the CLI
produces -- a raw trace snapshot, a serialized
:class:`~repro.scenarios.RunResult`, a ``run``/``sweep`` document or a
``checkpoint-run`` envelope -- so ``trace-export``, ``trace-diff`` and
``report`` all accept the same inputs.

Writes go through :func:`repro.checkpoint.write_json_atomic` (the R3
atomic-persistence contract).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.checkpoint.atomic import write_json_atomic
from repro.trace.spans import STAGES, TRACE_SCHEMA, validate_trace_dict

#: Stage -> trace-event thread id (one lane per lifecycle stage).
_STAGE_TID = {name: i for i, name in enumerate(STAGES)}

_STAGE_LABEL = {
    "fifo": "fifo (port wait)",
    "execute": "execute (DQM)",
    "data": "data (DMC/DDR)",
}

#: Picoseconds per trace-event microsecond.
_PS_PER_US = 1_000_000


def extract_traces(doc: Mapping[str, Any],
                   label: str = "") -> List[Tuple[str, Dict[str, Any]]]:
    """Every ``(label, trace_payload)`` a document carries.

    Accepts a raw trace snapshot, a ``RunResult`` dict (single or
    per-load ``metrics["trace"]``), a ``run``/``sweep`` document
    (``{"runs": [...]}``,) or a ``checkpoint-run`` envelope
    (``{"result": ...}``).  Raises :class:`ValueError` when the document
    carries no trace at all.
    """
    if not isinstance(doc, Mapping):
        raise ValueError("document is not a JSON object")
    if doc.get("schema") == TRACE_SCHEMA and "spans" in doc:
        return [(label or "trace", dict(doc))]
    if "runs" in doc and isinstance(doc["runs"], list):
        out: List[Tuple[str, Dict[str, Any]]] = []
        for run in doc["runs"]:
            try:
                out.extend(extract_traces(run))
            except ValueError:
                continue  # untraced runs in a mixed document are fine
        if not out:
            raise ValueError("no run in the document carries a trace")
        return out
    if "result" in doc and isinstance(doc["result"], Mapping):
        return extract_traces(doc["result"], label)
    metrics = doc.get("metrics")
    if isinstance(metrics, Mapping) and "trace" in metrics:
        name = label or str(doc.get("scenario", "trace"))
        payload = metrics["trace"]
        if not isinstance(payload, Mapping):
            raise ValueError(f"{name}: metrics.trace is not an object")
        if "schema" in payload:
            return [(name, dict(payload))]
        return [(f"{name}/{key}", dict(payload[key]))
                for key in sorted(payload)]
    raise ValueError(
        "document carries no trace payload (run with --trace, or pass a "
        "trace JSON)")


def to_chrome_trace(trace: Mapping[str, Any],
                    process_name: str = "repro-qmnp") -> Dict[str, Any]:
    """One trace payload as a Chrome trace-event document."""
    problems = validate_trace_dict(trace)
    if problems:
        raise ValueError("invalid trace payload: " + "; ".join(problems))
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for stage, tid in _STAGE_TID.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": _STAGE_LABEL[stage]},
        })
    for span in trace["spans"]:
        begin = span["begin_ps"]
        events.append({
            "name": f"{span['op']} #{span['seq']}",
            "cat": span["stage"],
            "ph": "X",
            "ts": begin / _PS_PER_US,
            "dur": (span["end_ps"] - begin) / _PS_PER_US,
            "pid": 0,
            "tid": _STAGE_TID[span["stage"]],
            "args": {
                "id": span["id"],
                "seq": span["seq"],
                "flow": span["flow"],
                "verdict": span["verdict"],
                "queue_depth": span["queue_depth"],
                "total_segments": span["total_segments"],
                "begin_ps": begin,
                "end_ps": span["end_ps"],
                "record_ps": span["record_ps"],
            },
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "counters": dict(trace["counters"]),
            "attribution": dict(trace["attribution"]),
        },
    }


def export_chrome_trace(trace: Mapping[str, Any], path: str,
                        process_name: str = "repro-qmnp") -> Dict[str, Any]:
    """Convert and atomically persist; returns the written document."""
    doc = to_chrome_trace(trace, process_name=process_name)
    write_json_atomic(path, doc)
    return doc
