"""Checkpoint-aware drivers for the command-stream engine.

A :class:`StreamRun` owns one :class:`~repro.engines.stream.StreamMms`
workload end to end -- build, incremental execution, snapshot, resume,
result assembly -- for the four workload families the plain harnesses
run (``load``, ``saturation``, ``overload``) plus free-form ``script``
runs (the fuzz suite's mixed-op streams).  It is the *only* place the
checkpoint machinery touches the feeder path: it wraps every workload
generator in a :class:`~repro.checkpoint.feeders.CountedFeeder` with an
observation :class:`~repro.checkpoint.feeders.Tape`, while the plain
harnesses keep handing raw generators to the engine -- so checkpoint
support is structurally absent from normal runs, the same gating
discipline as telemetry probes.

The resume-identity contract: a run split at any rest point and resumed
from the JSON checkpoint produces byte-identical traces, DropRecords,
telemetry and results to an unbroken run (``tests/checkpoint/``
fuzzes this over random split points).  Three ingredients deliver it:

* the machine state restores exactly (:mod:`.stream_state`),
* the feeders re-reach their suspension points by tape replay
  (:mod:`.feeders`),
* the results are assembled by the *same* functions the harnesses use
  (:mod:`repro.engines.harnesses`), so there is no second copy of the
  warm-up windowing or counter arithmetic to drift.

Params are plain JSON dicts (built by the ``*_params`` helpers) and
ride inside the :class:`~repro.checkpoint.snapshot.Checkpoint`
envelope, which is what makes a checkpoint file self-contained: resume
needs nothing but the file.
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro.checkpoint.feeders import CountedFeeder, CounterView, Tape
from repro.checkpoint.snapshot import (
    Checkpoint,
    CheckpointError,
    config_from_dict,
    config_to_dict,
    telemetry_spec_from_dict,
    telemetry_spec_to_dict,
    trace_spec_from_dict,
    trace_spec_to_dict,
)
from repro.checkpoint.stream_state import restore_stream, snapshot_stream
from repro.core.commands import CommandType
from repro.core.mms import MmsConfig
from repro.core.workloads import (
    load_feed_ops,
    overload_drain_ops,
    overload_feed_ops,
    saturation_feed_ops,
)
from repro.engines import harnesses
from repro.engines.stream import StreamMms
from repro.telemetry.collector import MmsTelemetry
from repro.telemetry.probe import Probe, ProbeChain, TelemetrySpec
from repro.trace.spans import TraceCollector, TraceSpec

#: Workload families a StreamRun can drive.
STREAM_WORKLOADS = ("load", "saturation", "overload", "script")

#: The Table 5 / saturation harnesses feed these four ports.
_FOUR_PORTS = ((True, 0), (False, 0), (True, 1), (False, 1))


# ==================================================== params builders

def load_params(config: MmsConfig, *, offered_gbps: float,
                num_volleys: int, active_flows: int, warmup_volleys: int,
                burst_len: int, burst_prob: float, seed: int,
                telemetry: Optional[TelemetrySpec] = None,
                trace: Optional[TraceSpec] = None) -> Dict[str, Any]:
    """Params dict for a Table 5 load run (one offered load)."""
    return {
        "config": config_to_dict(config),
        "telemetry": None if telemetry is None
        else telemetry_spec_to_dict(telemetry),
        "trace": None if trace is None else trace_spec_to_dict(trace),
        "offered_gbps": offered_gbps,
        "num_volleys": num_volleys,
        "active_flows": active_flows,
        "warmup_volleys": warmup_volleys,
        "burst_len": burst_len,
        "burst_prob": burst_prob,
        "seed": seed,
    }


def saturation_params(config: MmsConfig, *, num_commands: int,
                      active_flows: int,
                      telemetry: Optional[TelemetrySpec] = None,
                      trace: Optional[TraceSpec] = None
                      ) -> Dict[str, Any]:
    """Params dict for a headline-saturation run."""
    return {
        "config": config_to_dict(config),
        "telemetry": None if telemetry is None
        else telemetry_spec_to_dict(telemetry),
        "trace": None if trace is None else trace_spec_to_dict(trace),
        "num_commands": num_commands,
        "active_flows": active_flows,
    }


def overload_params(config: MmsConfig, shape: str, *, num_arrivals: int,
                    active_flows: int,
                    telemetry: Optional[TelemetrySpec] = None,
                    trace: Optional[TraceSpec] = None,
                    engine_label: str = "fast") -> Dict[str, Any]:
    """Params dict for an overload run.  ``config`` is the resolved
    build (policy spec, seed and record retention folded in, as
    :func:`repro.policies.harness.run_overload` does)."""
    if config.policy is None:
        raise CheckpointError("overload runs need a buffer policy in "
                              "the config")
    return {
        "config": config_to_dict(config),
        "telemetry": None if telemetry is None
        else telemetry_spec_to_dict(telemetry),
        "trace": None if trace is None else trace_spec_to_dict(trace),
        "shape": shape,
        "num_arrivals": num_arrivals,
        "active_flows": active_flows,
        "engine_label": engine_label,
    }


def script_params(config: MmsConfig, scripts: Sequence[Sequence[Any]], *,
                  horizon_ps: int, mark_done: bool = False,
                  drain: bool = False, drain_period_ps: int = 0,
                  drain_active_flows: int = 0,
                  telemetry: Optional[TelemetrySpec] = None,
                  trace: Optional[TraceSpec] = None
                  ) -> Dict[str, Any]:
    """Params dict for a free-form script run: one micro-op list per
    port (``int`` = delay in ps, tuple = submit op).  With ``drain``,
    an overload-style drain port follows the scripts; the drain's
    termination handshake needs exactly three ``mark_done`` scripts
    (the :func:`~repro.core.workloads.overload_drain_ops` contract)."""
    if drain and (not mark_done or len(scripts) != 3):
        raise CheckpointError(
            "a drained script run needs exactly 3 mark_done scripts "
            "(the overload drain terminates on feeders_done == 3)")
    return {
        "config": config_to_dict(config),
        "telemetry": None if telemetry is None
        else telemetry_spec_to_dict(telemetry),
        "trace": None if trace is None else trace_spec_to_dict(trace),
        "scripts": [[_encode_op(op) for op in ops] for ops in scripts],
        "horizon_ps": horizon_ps,
        "mark_done": mark_done,
        "drain": drain,
        "drain_period_ps": drain_period_ps,
        "drain_active_flows": drain_active_flows,
    }


def _encode_op(op: Any) -> Any:
    if type(op) is int:
        return op
    kind, flow, dst, eop, length = op
    return [kind.value, flow, dst, eop, length]


def _decode_op(op: Any) -> Any:
    if type(op) is int:
        return op
    return (CommandType(op[0]), op[1], op[2], op[3], op[4])


def _script_feeder(ops: Sequence[Any],
                   counters: Union[Dict[str, int], CounterView],
                   mark_done: bool) -> Iterator[Any]:
    """A decoded script as a feeder generator, with the overload
    feeders' trailing done-handshake when requested."""
    for op in ops:
        yield op
    if mark_done:
        counters["feeders_done"] = counters.get("feeders_done", 0) + 1


def _build_probes(params: Dict[str, Any]) -> Tuple[
        Optional[MmsTelemetry], Optional[TraceCollector], Optional[Probe]]:
    """``(telemetry, tracer, combined probe)`` from a params dict.

    The driver keeps the individual collectors because checkpoint state
    is per-collector (``"probe"`` holds the telemetry fold, ``"trace"``
    the span tracer's), while the engine wants one probe -- a
    :class:`~repro.telemetry.probe.ProbeChain` when both are on."""
    tele_spec = params.get("telemetry")
    telemetry = None if tele_spec is None \
        else MmsTelemetry(telemetry_spec_from_dict(tele_spec))
    trace_spec = params.get("trace")
    tracer = None if trace_spec is None \
        else TraceCollector(trace_spec_from_dict(trace_spec))
    children: List[Probe] = [p for p in (telemetry, tracer)
                             if p is not None]
    probe: Optional[Probe] = None
    if len(children) == 1:
        probe = children[0]
    elif children:
        probe = ProbeChain(children)
    return telemetry, tracer, probe


# ======================================================== the driver

class StreamRun:
    """One checkpointable command-stream run (see module docstring).

    Build with :meth:`fresh` or :meth:`resume`, advance with
    :meth:`run`, snapshot with :meth:`checkpoint` at any rest point
    (between :meth:`run` calls), and finish with :meth:`finish` --
    which runs to the workload's horizon and assembles the exact
    harness result object.
    """

    def __init__(self, workload: str, params: Dict[str, Any], *,
                 _resume_state: Optional[Dict[str, Any]] = None) -> None:
        if workload not in STREAM_WORKLOADS:
            raise CheckpointError(f"unknown stream workload {workload!r} "
                                  f"(choose from {STREAM_WORKLOADS})")
        self.workload = workload
        self.params = params
        self.config = config_from_dict(params["config"])
        self.telemetry, self.tracer, self.probe = _build_probes(params)
        self.eng = StreamMms(self.config, probe=self.probe)
        self.store: Dict[str, int] = {}

        if _resume_state is None:
            self._build_fresh()
        else:
            self._restore(_resume_state)

    # ------------------------------------------------------ constructors

    @classmethod
    def fresh(cls, workload: str, params: Dict[str, Any]) -> "StreamRun":
        """Start the workload from scratch (prefill + feeders)."""
        return cls(workload, params)

    @classmethod
    def resume(cls, ckpt: Checkpoint) -> "StreamRun":
        """Continue the workload from a checkpoint."""
        if ckpt.engine != "stream":
            raise CheckpointError(
                f"StreamRun cannot resume a {ckpt.engine!r} checkpoint")
        return cls(ckpt.workload, dict(ckpt.params),
                   _resume_state=ckpt.state)

    # ---------------------------------------------------------- plumbing

    def _build_fresh(self) -> None:
        p = self.params
        if self.workload == "load":
            self.eng.prefill(
                range(p["active_flows"]),
                packets_per_flow=harnesses.load_prefill_packets(
                    p["active_flows"]))
        elif self.workload == "saturation":
            per_port = p["num_commands"] // 4
            self.eng.prefill(
                range(p["active_flows"]),
                packets_per_flow=harnesses.saturation_prefill_packets(
                    per_port, p["active_flows"]))
        elif self.workload == "overload":
            self.store["dequeued"] = 0
        elif self.workload == "script" and p["drain"]:
            self.store["dequeued"] = 0
        for port, factory in self._feeders():
            tape = Tape()
            self.eng.add_feeder(port, CountedFeeder(factory(tape), tape))

    def _restore(self, state: Dict[str, Any]) -> None:
        self.store.update(state.get("counters") or {})
        probe_state = state.get("probe")
        if (probe_state is None) != (self.telemetry is None):
            raise CheckpointError(
                "checkpoint and params disagree about telemetry")
        if self.telemetry is not None:
            self.telemetry.load_state(probe_state)
        trace_state = state.get("trace")
        if (trace_state is None) != (self.tracer is None):
            raise CheckpointError(
                "checkpoint and params disagree about tracing")
        if self.tracer is not None:
            self.tracer.load_state(trace_state)
        factories = [factory for _port, factory in self._feeders()]
        restore_stream(self.eng, state["machine"], factories)

    def _feeders(self) -> List[Tuple[int, Callable[[Tape], Iterator[Any]]]]:
        """The workload's ``(port, factory)`` list, in the exact attach
        order of the plain harnesses.  Factories take the feeder's tape
        and wire every environment read through it, so a rebuilt feeder
        replays to its recorded suspension point."""
        p = self.params
        eng = self.eng
        out: List[Tuple[int, Callable[[Tape], Iterator[Any]]]] = []

        if self.workload == "load":
            period = harnesses.load_volley_period_ps(p["offered_gbps"])

            def now() -> int:
                return eng.now

            for port, (enqueue, phase) in enumerate(_FOUR_PORTS):
                def factory(tape: Tape, port: int = port,
                            enqueue: bool = enqueue,
                            phase: int = phase) -> Iterator[Any]:
                    return load_feed_ops(
                        tape.wrap(now), port, enqueue, phase,
                        p["num_volleys"], period, p["active_flows"],
                        p["burst_len"], p["burst_prob"], p["seed"])
                out.append((port, factory))

        elif self.workload == "saturation":
            per_port = p["num_commands"] // 4
            for port, (enqueue, phase) in enumerate(_FOUR_PORTS):
                def factory(tape: Tape, enqueue: bool = enqueue,
                            phase: int = phase) -> Iterator[Any]:
                    # pure feeder: the tape stays empty, which is itself
                    # verified by end_replay on resume
                    return saturation_feed_ops(enqueue, phase, per_port,
                                               p["active_flows"])
                out.append((port, factory))

        elif self.workload == "overload":
            drain_period, enq_period = harnesses.overload_pacing_ps(
                eng.clock)
            per_port = p["num_arrivals"] // 3
            for port in range(3):
                def factory(tape: Tape, port: int = port) -> Iterator[Any]:
                    return overload_feed_ops(
                        p["shape"], port, per_port, p["active_flows"],
                        enq_period, CounterView(self.store, tape))
                out.append((port, factory))

            def drain_factory(tape: Tape) -> Iterator[Any]:
                return overload_drain_ops(
                    tape.wrap(eng.pqm.queued_packets),
                    p["active_flows"], drain_period,
                    CounterView(self.store, tape))
            out.append((3, drain_factory))

        else:  # script
            for port, encoded in enumerate(p["scripts"]):
                ops = [_decode_op(op) for op in encoded]
                def factory(tape: Tape,
                            ops: List[Any] = ops) -> Iterator[Any]:
                    return _script_feeder(ops,
                                          CounterView(self.store, tape),
                                          p["mark_done"])
                out.append((port, factory))
            if p["drain"]:
                def drain_factory(tape: Tape) -> Iterator[Any]:
                    return overload_drain_ops(
                        tape.wrap(eng.pqm.queued_packets),
                        p["drain_active_flows"], p["drain_period_ps"],
                        CounterView(self.store, tape))
                out.append((len(p["scripts"]), drain_factory))

        return out

    # ----------------------------------------------------------- running

    @property
    def now(self) -> int:
        return self.eng.now

    @property
    def horizon(self) -> int:
        """The workload's run horizon (the same formula the plain
        harness uses)."""
        p = self.params
        if self.workload == "load":
            return harnesses.load_horizon_ps(
                p["num_volleys"],
                harnesses.load_volley_period_ps(p["offered_gbps"]))
        if self.workload == "saturation":
            return harnesses.SATURATION_HORIZON_PS
        if self.workload == "overload":
            drain_period, enq_period = harnesses.overload_pacing_ps(
                self.eng.clock)
            return harnesses.overload_horizon_ps(
                p["num_arrivals"], enq_period, self.config.num_segments,
                drain_period)
        return p["horizon_ps"]

    def run(self, until_ps: int) -> None:
        """Advance the machine to ``until_ps`` (a rest point: safe to
        checkpoint after)."""
        self.eng.run(until_ps)

    def checkpoint(self) -> Checkpoint:
        """Snapshot the run at the current rest point."""
        return Checkpoint(
            engine="stream",
            workload=self.workload,
            at_ps=self.eng.now,
            params=self.params,
            state={
                "machine": snapshot_stream(self.eng),
                "counters": dict(self.store) if self.store else None,
                "probe": None if self.telemetry is None
                else self.telemetry.state_dict(),
                "trace": None if self.tracer is None
                else self.tracer.state_dict(),
            },
        )

    def finish(self) -> Any:
        """Run to the horizon and assemble the workload's result with
        the exact harness arithmetic."""
        p = self.params
        horizon = self.horizon
        self.eng.run(horizon)
        if self.workload == "load":
            return harnesses.assemble_load_result(
                self.eng, self.probe, horizon, self.config,
                p["warmup_volleys"], p["offered_gbps"])
        if self.workload == "saturation":
            return harnesses.assemble_saturation_result(
                self.eng, self.probe, horizon, self.config)
        if self.workload == "overload":
            return harnesses.assemble_overload_result(
                self.eng, self.config, p["shape"], self.store, horizon,
                probe=self.probe,
                engine_label=p.get("engine_label", "fast"))
        return {
            "commands_executed": self.eng.commands_executed,
            "elapsed_ps": self.eng.now,
            "counters": dict(self.store),
        }


def run_with_checkpoints(run: StreamRun, every_ps: int,
                         sink: Callable[[Checkpoint], None],
                         until_ps: Optional[int] = None,
                         events: Optional[Any] = None) -> int:
    """Advance ``run`` to its horizon (or ``until_ps``), invoking
    ``sink`` with a checkpoint at every ``every_ps`` boundary short of
    the end.  Returns the number of checkpoints sunk.  The final state
    is *not* checkpointed -- the caller holds the finished run.

    ``events`` is an optional :class:`repro.monitor.events.EventSink`:
    when present, the drive emits ``checkpoint.start``, one
    ``checkpoint.progress`` per sunk checkpoint (simulated position and
    running count in ``extra``) and ``checkpoint.finish`` -- the
    monitoring view of a long checkpointed run."""
    if every_ps <= 0:
        raise CheckpointError(f"checkpoint period must be positive, "
                              f"got {every_ps}")
    end = run.horizon if until_ps is None else min(until_ps, run.horizon)
    count = 0
    boundary = run.now
    if events is not None:
        events.emit("checkpoint", "start", run.workload,
                    extra={"from_ps": run.now, "until_ps": end,
                           "every_ps": every_ps})
    while boundary < end:
        boundary = min(boundary + every_ps, end)
        run.run(boundary)
        if boundary < end:
            sink(run.checkpoint())
            count += 1
            if events is not None:
                events.emit("checkpoint", "progress", run.workload,
                            extra={"at_ps": boundary, "count": count})
    if events is not None:
        events.emit("checkpoint", "finish", run.workload,
                    extra={"at_ps": run.now, "count": count})
    return count
