"""Versioned, JSON-round-tripping checkpoint envelopes.

A :class:`Checkpoint` freezes one simulation at a rest point (between
engine ``run()`` calls): which execution path produced it (``engine``),
which workload it was running (``workload``), the simulated instant
(``at_ps``), the immutable run parameters (``params`` -- enough to
rebuild the machine and its feeders from scratch), and the mutable
machine state (``state``).  The two execution paths fill ``state``
differently:

* ``engine="stream"`` -- an *exact* scalar snapshot of the
  :class:`~repro.engines.stream.StreamMms` actors
  (:mod:`repro.checkpoint.stream_state`): restore rebuilds the machine
  without re-executing anything.
* ``engine="kernel"`` -- a *replay-anchored* snapshot: generator
  processes cannot be serialized, so the checkpoint stores the
  serialized event schedule plus a functional-state fingerprint; resume
  rebuilds the model, replays deterministically to ``at_ps`` and
  verifies both before continuing (:mod:`repro.checkpoint.kernel_runs`).

Either way the resume-identity contract is the same: the continued run
is byte-identical to an unbroken one (asserted by
``tests/checkpoint/``).  The payload follows the repo's schema
discipline (``TELEMETRY_SCHEMA``, ``DOCUMENT_SCHEMA``): a version
field plus a dependency-free validator returning human-readable
problems.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.checkpoint.atomic import read_json, write_json_atomic
from repro.core.mms import MmsConfig
from repro.core.scheduler import PortConfig
from repro.policies.base import PolicySpec
from repro.telemetry.probe import TelemetrySpec
from repro.trace.spans import TraceSpec

#: Schema version of the serialized checkpoint payload.
CHECKPOINT_SCHEMA = 1

#: Execution paths a checkpoint can originate from.
CHECKPOINT_ENGINES = ("stream", "kernel")


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken, validated or restored."""


@dataclass(frozen=True)
class Checkpoint:
    """One frozen simulation rest point (see module docstring)."""

    engine: str
    workload: str
    at_ps: int
    params: Dict[str, Any]
    state: Dict[str, Any]
    schema: int = field(default=CHECKPOINT_SCHEMA)

    def __post_init__(self) -> None:
        if self.engine not in CHECKPOINT_ENGINES:
            raise ValueError(f"unknown checkpoint engine {self.engine!r} "
                             f"(choose from {CHECKPOINT_ENGINES})")
        if self.at_ps < 0:
            raise ValueError(f"at_ps must be >= 0, got {self.at_ps}")

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "engine": self.engine,
            "workload": self.workload,
            "at_ps": self.at_ps,
            "params": self.params,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Checkpoint":
        problems = validate_checkpoint_dict(d)
        if problems:
            raise CheckpointError("invalid checkpoint payload: "
                                  + "; ".join(problems))
        return cls(engine=d["engine"], workload=d["workload"],
                   at_ps=d["at_ps"], params=dict(d["params"]),
                   state=dict(d["state"]), schema=d["schema"])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        return cls.from_dict(json.loads(text))

    # --------------------------------------------------------- file I/O

    def save(self, path: str) -> None:
        """Persist atomically (a crash mid-save never corrupts an
        existing checkpoint file)."""
        write_json_atomic(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        return cls.from_dict(read_json(path))


def validate_checkpoint_dict(d: Mapping[str, Any]) -> List[str]:
    """Schema check of one serialized checkpoint (list of human-readable
    problems; empty = valid).  Dependency-free, like
    :func:`repro.telemetry.validate_telemetry_dict`."""
    problems: List[str] = []
    if not isinstance(d, Mapping):
        return ["checkpoint payload is not an object"]
    if d.get("schema") != CHECKPOINT_SCHEMA:
        problems.append(f"schema {d.get('schema')!r} != {CHECKPOINT_SCHEMA}")
    if d.get("engine") not in CHECKPOINT_ENGINES:
        problems.append(f"engine {d.get('engine')!r} not in "
                        f"{CHECKPOINT_ENGINES}")
    if not isinstance(d.get("workload"), str) or not d.get("workload"):
        problems.append("workload missing or not a string")
    at_ps = d.get("at_ps")
    if not isinstance(at_ps, int) or isinstance(at_ps, bool) or at_ps < 0:
        problems.append("at_ps missing or not a non-negative integer")
    for key in ("params", "state"):
        if not isinstance(d.get(key), Mapping):
            problems.append(f"{key!r} missing or not an object")
    return problems


# ================================================ config serialization
#
# Checkpoint params must rebuild the exact MmsConfig (frozen dataclass
# of scalars plus the PortConfig tuple and the optional PolicySpec), so
# the restored machine is constructed from the identical build -- any
# drift here would silently break the resume-identity guarantee.

_CONFIG_SCALARS = (
    "clock_mhz", "num_flows", "num_segments", "num_descriptors",
    "num_banks", "reorder_window", "dmc_pipeline_ns", "strict_microcode",
    "keep_samples", "overlap_data", "policy_seed", "policy_records",
)

_POLICY_FIELDS = ("name", "per_queue_limit", "alpha", "red_min_frac",
                  "red_max_frac", "red_max_p", "red_weight")


def config_to_dict(config: MmsConfig) -> Dict[str, Any]:
    """Serialize an :class:`MmsConfig` (ports and policy included)."""
    d: Dict[str, Any] = {k: getattr(config, k) for k in _CONFIG_SCALARS}
    d["ports"] = [[p.name, p.priority, p.fifo_depth] for p in config.ports]
    d["policy"] = None if config.policy is None else \
        {k: getattr(config.policy, k) for k in _POLICY_FIELDS}
    return d


def config_from_dict(d: Mapping[str, Any]) -> MmsConfig:
    """Rebuild the exact :class:`MmsConfig` from
    :func:`config_to_dict` output (dataclass validation re-runs)."""
    ports = tuple(PortConfig(name=p[0], priority=p[1], fifo_depth=p[2])
                  for p in d["ports"])
    policy = None if d["policy"] is None else PolicySpec(**d["policy"])
    return MmsConfig(ports=ports, policy=policy,
                     **{k: d[k] for k in _CONFIG_SCALARS})


def telemetry_spec_to_dict(spec: TelemetrySpec) -> Dict[str, Any]:
    """Serialize a :class:`TelemetrySpec` for checkpoint params."""
    return {"sample_every": spec.sample_every,
            "percentiles": list(spec.percentiles)}


def telemetry_spec_from_dict(d: Mapping[str, Any]) -> TelemetrySpec:
    return TelemetrySpec(sample_every=d["sample_every"],
                         percentiles=tuple(d["percentiles"]))


def trace_spec_to_dict(spec: TraceSpec) -> Dict[str, Any]:
    """Serialize a :class:`TraceSpec` for checkpoint params."""
    return {"max_spans": spec.max_spans}


def trace_spec_from_dict(d: Mapping[str, Any]) -> TraceSpec:
    return TraceSpec(max_spans=d["max_spans"])
