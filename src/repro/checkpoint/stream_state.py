"""Exact snapshot/restore of the :class:`StreamMms` machine.

The stream engine is a fixed set of scalar actors over plain data
structures -- per-port FIFO deques, the DQM cursor and in-flight
command, the DMC bank/turnaround registers, the wake heap, the
functional :class:`~repro.queueing.PacketQueueManager` state and the
buffer-policy books -- so (unlike the generator-based kernel) its full
state serializes exactly.  Two representation details matter:

* **Command identity.**  Command records are *mutable lists* aliased
  across the structures (a FIFO entry later becomes ``_cur`` and then a
  ``_done`` entry; a command's DMC request list is aliased into
  ``_dmc_queue``).  The snapshot therefore collects every live command
  once, in deterministic order (FIFOs by port, backpressured pending,
  in-flight, done), serializes each exactly once, and stores every
  other occurrence as an index into that table.  Restore rebuilds the
  lists and re-links the aliases, so post-resume mutations (the DMC
  completing a request, the tail finalizing ``_cur``) land in the same
  shared records they would have in an unbroken run.
* **Rest points.**  Snapshots are taken only between ``run()`` calls.
  The engine is then at rest: no actor is mid-step, the wake heap (the
  over-horizon wake included -- the kernel run contract keeps it
  scheduled) is a plain list in heap order, and feeders are suspended
  at a micro-op boundary, which is what lets
  :mod:`repro.checkpoint.feeders` fast-forward them.

Feeder generators themselves are not serialized here: the snapshot
records each feeder's consumed-op count and observation tape
(requiring the :class:`~repro.checkpoint.feeders.CountedFeeder`
wrapper), and restore re-derives the generators from caller-provided
factories -- see :mod:`repro.checkpoint.runs` for the workload-level
pairing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Sequence

from repro.checkpoint.feeders import CountedFeeder, Tape
from repro.checkpoint.snapshot import CheckpointError
from repro.core.commands import CommandType
from repro.engines.stream import C_OP, C_REQ
from repro.engines.stream import StreamMms
from repro.queueing.freelist import FreeList
from repro.queueing.packet_queues import PacketQueueManager, SegmentInfo

#: A feeder factory: given the feeder's (restored) observation tape,
#: build the feeder generator with its environment reads wired through
#: that tape.
FeederFactory = Callable[[Tape], Iterator[Any]]


def snapshot_stream(eng: StreamMms) -> Dict[str, Any]:
    """Serialize the complete mutable state of ``eng`` (see module
    docstring).  Requires every feeder to be a
    :class:`CountedFeeder` -- i.e. the run was driven by a
    checkpoint-aware driver, not a plain harness."""
    # ---- command identity table ---------------------------------
    cmds: List[list] = []
    index: Dict[int, int] = {}

    def cmd_id(cmd: list) -> int:
        key = id(cmd)
        idx = index.get(key)
        if idx is None:
            idx = index[key] = len(cmds)
            cmds.append(cmd)
        return idx

    fifo_ids = [[cmd_id(c) for c in fifo] for fifo in eng._fifos]
    pending = [None if p is None else [p[0], cmd_id(p[1])]
               for p in eng._pending]
    cur_id = None if eng._cur is None else cmd_id(eng._cur)
    done_ids = [cmd_id(c) for c in eng._done]

    req_owner = {id(c[C_REQ]): i for i, c in enumerate(cmds)
                 if c[C_REQ] is not None}

    def req_id(req: list) -> int:
        try:
            return req_owner[id(req)]
        except KeyError:
            raise CheckpointError(
                "DMC request not owned by any live command "
                "(engine state is inconsistent)") from None

    serialized_cmds = []
    for c in cmds:
        row = [c[0].value] + list(c[1:C_REQ])
        req = c[C_REQ]
        row.append(None if req is None else list(req))
        serialized_cmds.append(row)

    # ---- feeders ------------------------------------------------
    feeders = []
    for gen, port in zip(eng._feeders, eng._feeder_port):
        if not isinstance(gen, CountedFeeder):
            raise CheckpointError(
                "engine feeders are raw generators (not CountedFeeder): "
                "only runs driven by repro.checkpoint.runs are "
                "checkpointable -- the plain harnesses carry no "
                "checkpoint machinery by design")
        st = gen.state_dict()
        st["port"] = port
        feeders.append(st)

    pqm = eng.pqm
    mem = pqm.mem
    sram = mem._sram
    state: Dict[str, Any] = {
        "now": eng.now,
        "seq": eng._seq,
        "wakes": [list(w) for w in eng._wakes],
        "commands": serialized_cmds,
        "fifos": fifo_ids,
        "pending": pending,
        "rr_next": eng._rr_next,
        "serve_waiting": eng._serve_waiting,
        "cur": cur_id,
        "commands_executed": eng.commands_executed,
        "done": done_ids,
        "dmc": {
            "bank_free": list(eng._bank_free),
            "last_islot": eng._last_islot,
            "last_was_read": eng._last_was_read,
            "queue": [req_id(r) for r in eng._dmc_queue],
            "waiting": eng._dmc_waiting,
            "req": None if eng._dmc_req is None else req_id(eng._dmc_req),
        },
        "pqm": {
            "words": {str(a): v for a, v in sram._words.items()},
            "sram_counts": [sram.read_count, sram.write_count],
            "reads": dict(mem.reads_by_region),
            "writes": dict(mem.writes_by_region),
            "seg_free": _freelist_state(pqm.seg_free),
            "desc_free": _freelist_state(pqm.desc_free),
            "shadow": {str(slot): [s.slot, s.eop, s.length, s.pid, s.index]
                       for slot, s in pqm._seg_shadow.items()},
            "open_segments": {str(f): n
                              for f, n in pqm._open_segments.items()},
            "queued_packets": list(pqm._queued_packets),
            "queued_segments": list(pqm._queued_segments),
        },
        "policy": None if eng.policy is None else eng.policy.state_dict(),
        "feeders": feeders,
    }
    return state


def restore_stream(eng: StreamMms, state: Dict[str, Any],
                   factories: Sequence[FeederFactory]) -> None:
    """Restore :func:`snapshot_stream` output into a *freshly
    constructed* engine of the identical config.

    ``factories`` rebuild the feeder generators, one per recorded
    feeder in attach order; each is fast-forwarded on its restored tape
    to the recorded suspension point.  ``add_feeder`` is deliberately
    bypassed: the restored wake heap already holds every pending feeder
    wake (scheduling new ones would double-run the feeders).
    """
    if eng._feeders or eng._wakes or eng._done or eng.now != 0:
        raise CheckpointError(
            "restore_stream needs a freshly constructed engine")
    if len(factories) != len(state["feeders"]):
        raise CheckpointError(
            f"checkpoint has {len(state['feeders'])} feeders, caller "
            f"provided {len(factories)} factories")

    # ---- command identity table ---------------------------------
    cmds: List[list] = []
    for row in state["commands"]:
        cmd = [CommandType(row[0])] + list(row[1:C_REQ])
        req = row[C_REQ]
        cmd.append(None if req is None else list(req))
        cmds.append(cmd)

    eng._fifos = [deque(cmds[i] for i in ids) for ids in state["fifos"]]
    eng._pending = [None if p is None else (p[0], cmds[p[1]])
                    for p in state["pending"]]
    eng._rr_next = state["rr_next"]
    eng._serve_waiting = state["serve_waiting"]
    cur_id = state["cur"]
    eng._cur = None if cur_id is None else cmds[cur_id]
    eng._cur_info = None if eng._cur is None \
        else eng._opinfo[eng._cur[C_OP]]
    eng.commands_executed = state["commands_executed"]
    eng._done = [cmds[i] for i in state["done"]]

    dmc = state["dmc"]
    eng._bank_free = list(dmc["bank_free"])
    eng._last_islot = dmc["last_islot"]
    eng._last_was_read = dmc["last_was_read"]
    eng._dmc_queue = [_owned_req(cmds, i) for i in dmc["queue"]]
    eng._dmc_waiting = dmc["waiting"]
    eng._dmc_req = None if dmc["req"] is None \
        else _owned_req(cmds, dmc["req"])

    # the serialized heap list is already in heap order -- rebuilding
    # it as tuples preserves the invariant without re-heapifying
    eng._wakes = [tuple(w) for w in state["wakes"]]
    eng.now = state["now"]
    eng._seq = state["seq"]

    _restore_pqm(eng.pqm, state["pqm"])
    if (state["policy"] is None) != (eng.policy is None):
        raise CheckpointError(
            "checkpoint and engine disagree about having a policy")
    if eng.policy is not None:
        eng.policy.load_state(state["policy"])

    # ---- feeders (bypassing add_feeder; see docstring) ----------
    for fst, factory in zip(state["feeders"], factories):
        tape = Tape()
        feeder = CountedFeeder(factory(tape), tape)
        feeder.load_state(fst)
        eng._feeders.append(feeder)
        eng._feeder_port.append(fst["port"])


def _owned_req(cmds: List[list], cmd_idx: int) -> list:
    req = cmds[cmd_idx][C_REQ]
    if req is None:
        raise CheckpointError(
            f"DMC queue references command {cmd_idx} which has no "
            f"request (corrupt checkpoint)")
    return req


def _freelist_state(fl: FreeList) -> List[Any]:
    return [fl._reg_head, fl._reg_tail, fl.free_count, fl._virgin]


def _restore_pqm(pqm: PacketQueueManager, st: Dict[str, Any]) -> None:
    mem = pqm.mem
    sram = mem._sram
    sram._words = {int(a): v for a, v in st["words"].items()}
    sram.read_count, sram.write_count = st["sram_counts"]
    mem.reads_by_region = dict(st["reads"])
    mem.writes_by_region = dict(st["writes"])
    for fl, fs in ((pqm.seg_free, st["seg_free"]),
                   (pqm.desc_free, st["desc_free"])):
        fl._reg_head, fl._reg_tail, fl.free_count, fl._virgin = fs
    pqm._seg_shadow = {
        int(slot): SegmentInfo(slot=s[0], eop=s[1], length=s[2],
                               pid=s[3], index=s[4])
        for slot, s in st["shadow"].items()}
    pqm._open_segments = {int(f): n
                          for f, n in st["open_segments"].items()}
    pqm._queued_packets = list(st["queued_packets"])
    pqm._queued_segments = list(st["queued_segments"])
