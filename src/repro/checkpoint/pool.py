"""Fault-tolerant worker pool for scenario sweeps.

``sweep --jobs`` used to ride on :class:`ProcessPoolExecutor`, which
has exactly the wrong failure mode for long sweeps: one worker dying
poisons the whole pool, a hung scenario stalls it forever, and an
interrupt throws away every finished result.  This pool trades a
little throughput bookkeeping for robustness:

* **process-per-task** -- each task runs in its own forked process, so
  a crash (or an injected ``SIGKILL``, :mod:`.faults`) takes down one
  task, which is simply re-queued;
* **per-task timeout** -- a task that exceeds its budget is terminated
  and treated as a crash;
* **bounded retry with backoff** -- a failed task re-enters the queue
  up to ``retries`` more times, each attempt deferred a little longer;
* **order-stable results** -- results come back indexed by submission
  order regardless of completion order, so a recovered sweep is
  byte-identical to an undisturbed one;
* **crash-safe journal** -- each finished task's result document is
  written atomically to ``journal_dir/<name>.json`` *before* it counts
  as done; a re-run of an interrupted sweep skips everything already
  journaled (a torn write never passes ``read_json``, so a crash
  mid-write re-runs that task);
* **lifecycle events + heartbeat documents** -- journaled sweeps write
  every sweep/task transition to a shared ``events.jsonl``
  (:mod:`repro.monitor.events`) and keep the per-task
  ``<name>.heartbeat.json`` documents, both through one
  :class:`~repro.monitor.events.SweepLog` code path, so a stalled or
  crashed sweep can be diagnosed -- or watched live
  (``repro-experiments watch``) -- from the journal directory alone;
* **resource profiles** -- with ``resources=True`` each worker reports
  its rusage delta (CPU seconds, max RSS, wall) alongside its result;
  the pool folds profiles into :attr:`PoolOutcome.resources`, finish
  events and the failure table;
* **graceful interrupt** -- ``SIGINT``/``SIGTERM`` stop new work,
  terminate what is running, keep every completed result, and report
  which signal ended the sweep (the CLI exits ``128 + signum``).

Workers communicate results through atomic files rather than pipes:
the file either exists and is complete, or the task did not finish --
there is no partial-message state to reason about.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from repro.checkpoint.atomic import read_json, write_json_atomic
from repro.checkpoint.faults import maybe_fault

if TYPE_CHECKING:  # runtime import stays lazy (journaled sweeps only)
    from repro.monitor.events import SweepLog

#: Main-loop poll interval (seconds).
_TICK = 0.02

#: Result-document key a worker uses to report a task exception.
ERROR_KEY = "__error__"

#: Result-document key a profiling worker smuggles its rusage delta
#: under; the parent pops it back out, so ``PoolOutcome.results``
#: documents stay byte-identical to unprofiled runs.
RESOURCES_KEY = "__resources__"


@dataclass
class TaskFailure:
    """One task that exhausted its retry budget (or was interrupted).

    ``wall_clock_s`` is the total time the task spent actually running
    across every attempt; ``None`` when the runner does not measure it
    (the CLI's serial path) or the task never started.  ``cpu_s`` /
    ``max_rss_kb`` come from the final attempt's resource profile when
    the sweep ran with ``resources=True`` (and the attempt got far
    enough to report one)."""

    name: str
    attempts: int
    reason: str
    wall_clock_s: Optional[float] = None
    cpu_s: Optional[float] = None
    max_rss_kb: Optional[int] = None


@dataclass
class PoolOutcome:
    """What a sweep produced: results by submission order (``None``
    where a task failed), the failure table, the interrupting signal
    (if any), how much journaled work was skipped, and -- under
    ``resources=True`` -- each task's resource profile by name."""

    results: List[Optional[Dict[str, Any]]]
    failures: List[TaskFailure] = field(default_factory=list)
    interrupted: Optional[int] = None
    skipped_from_journal: int = 0
    resources: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and self.interrupted is None


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


def _worker(fn: Callable[[Any], Dict[str, Any]], name: str, payload: Any,
            result_path: str, fault_plan: Optional[str],
            resources: bool = False) -> None:
    """Pool worker body: take any planned fault, run the task, persist
    the result document atomically.  An exception becomes an error
    document -- distinguishable from a crash, which leaves no file.
    Under ``resources`` the worker's own rusage delta rides along in
    the document (the worker process *is* the task, so RUSAGE_SELF is
    exactly the task's footprint)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent drives shutdown
    profiler = None
    if resources:
        from repro.monitor.resources import ResourceProfiler
        profiler = ResourceProfiler()
    maybe_fault(fault_plan, name)
    try:
        doc = fn(payload)
    except BaseException as exc:  # noqa: BLE001 -- report, don't crash
        doc = {ERROR_KEY: f"{type(exc).__name__}: {exc}"}
    if profiler is not None:
        doc = dict(doc)
        doc[RESOURCES_KEY] = profiler.profile()
    write_json_atomic(result_path, doc)


def run_tasks(fn: Callable[[Any], Dict[str, Any]],
              tasks: Sequence[Tuple[str, Any]], *,
              jobs: int,
              timeout_s: Optional[float] = None,
              retries: int = 1,
              backoff_s: float = 0.1,
              journal_dir: Optional[str] = None,
              fault_plan: Optional[str] = None,
              resources: bool = False) -> PoolOutcome:
    """Run ``fn(payload)`` for every ``(name, payload)`` task across
    ``jobs`` worker processes (see module docstring for the fault
    model).  ``fn`` must be a module-level callable returning a
    JSON-serializable dict.  ``resources=True`` adds per-task rusage
    profiling (``PoolOutcome.resources``); journaled sweeps always
    stream lifecycle events to ``journal_dir/events.jsonl``."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout must be positive, got {timeout_s}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff_s < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff_s}")

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover -- fork-less platform
        ctx = multiprocessing.get_context("spawn")

    outcome = PoolOutcome(results=[None] * len(tasks))
    tmpdir = None
    if journal_dir is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-pool-")
        result_dir = tmpdir
    else:
        os.makedirs(journal_dir, exist_ok=True)
        result_dir = journal_dir

    paths = [os.path.join(result_dir, _safe_name(name) + ".json")
             for name, _payload in tasks]
    hb_paths = [os.path.join(result_dir,
                             _safe_name(name) + ".heartbeat.json")
                for name, _payload in tasks]

    pending: deque = deque()
    for idx, path in enumerate(paths):
        doc = _journaled(path) if journal_dir is not None else None
        if doc is not None and ERROR_KEY in doc:
            doc = None   # journaled failures re-run
        if doc is not None:
            profile = doc.pop(RESOURCES_KEY, None)
            if isinstance(profile, dict):
                outcome.resources[tasks[idx][0]] = profile
            outcome.results[idx] = doc
            outcome.skipped_from_journal += 1
        else:
            pending.append(idx)

    # Journaled sweeps report their lifecycle through one SweepLog:
    # typed events on the shared events.jsonl plus the per-task
    # heartbeat documents, derived from the same records.  Un-journaled
    # throwaway sweeps have nobody to read either, so the monitoring
    # machinery stays structurally absent (not even imported).
    log: Optional["SweepLog"] = None
    if journal_dir is not None:
        from repro.monitor.events import EventSink, SweepLog, events_path
        log = SweepLog(EventSink(events_path(result_dir)),
                       [name for name, _payload in tasks],
                       heartbeat_paths=hb_paths)
        log.sweep("start", extra={
            "tasks": len(tasks), "jobs": jobs,
            "names": [name for name, _payload in tasks],
            "skipped_from_journal": outcome.skipped_from_journal})

    deferred: List[Tuple[float, int]] = []   # (ready_at, idx)
    running: Dict[int, Tuple[Any, Optional[float]]] = {}
    attempts = [0] * len(tasks)
    last_reason = [""] * len(tasks)
    started = [0.0] * len(tasks)   # monotonic launch instant, per attempt
    spent = [0.0] * len(tasks)     # total running time across attempts
    signals: List[int] = []

    def note(idx: int, action: str,
             extra: Optional[Dict[str, Any]] = None) -> None:
        """One task lifecycle transition, through the sweep log
        (journaled sweeps only -- the throwaway tmpdir case has nobody
        to read events or heartbeats)."""
        if log is not None:
            log.task(idx, action, attempts[idx], extra=extra)

    def settle(idx: int) -> None:
        """Fold the finished attempt's running time into the task's
        wall-clock total."""
        spent[idx] += time.monotonic() - started[idx]

    def accept(idx: int) -> bool:
        """Take the task's completed result document if one landed:
        pop the worker's resource profile, store the clean document,
        note the finish event."""
        doc = _journaled(paths[idx])
        if doc is None or ERROR_KEY in doc:
            return False
        profile = doc.pop(RESOURCES_KEY, None)
        extra = None
        if isinstance(profile, dict):
            outcome.resources[tasks[idx][0]] = profile
            extra = {"resources": profile}
        outcome.results[idx] = doc
        note(idx, "finish", extra=extra)
        return True

    def on_signal(signum: int, _frame: Any) -> None:
        signals.append(signum)

    old_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            old_handlers[signum] = signal.signal(signum, on_signal)
        except ValueError:  # pragma: no cover -- non-main thread
            pass

    def fail(idx: int, reason: str,
             profile: Optional[Dict[str, Any]] = None) -> None:
        last_reason[idx] = reason
        if attempts[idx] <= retries and not signals:
            note(idx, "retry", extra={"reason": reason})
            deferred.append(
                (time.monotonic() + backoff_s * attempts[idx], idx))
        else:
            extra: Dict[str, Any] = {"reason": reason}
            if profile is not None:
                extra["resources"] = profile
            note(idx, "fail", extra=extra)
            outcome.failures.append(
                TaskFailure(name=tasks[idx][0], attempts=attempts[idx],
                            reason=reason,
                            wall_clock_s=round(spent[idx], 3)
                            if attempts[idx] else None,
                            cpu_s=profile.get("cpu_s")
                            if profile else None,
                            max_rss_kb=profile.get("max_rss_kb")
                            if profile else None))

    def reap(idx: int, proc: Any) -> None:
        if accept(idx):
            return
        doc = _journaled(paths[idx])
        if doc is not None and ERROR_KEY in doc:
            profile = doc.get(RESOURCES_KEY)
            fail(idx, doc[ERROR_KEY],
                 profile if isinstance(profile, dict) else None)
        elif proc.exitcode is not None and proc.exitcode < 0:
            fail(idx, "worker killed by signal "
                 f"{signal.Signals(-proc.exitcode).name}")
        else:
            fail(idx, f"worker exited with code {proc.exitcode} "
                 "without writing a result")

    try:
        while pending or deferred or running:
            if signals:
                break
            now = time.monotonic()
            for ready_at, idx in sorted(deferred):
                if ready_at <= now:
                    deferred.remove((ready_at, idx))
                    pending.append(idx)

            while pending and len(running) < jobs:
                idx = pending.popleft()
                name, payload = tasks[idx]
                attempts[idx] += 1
                try:
                    os.unlink(paths[idx])   # stale attempt, if any
                except OSError:
                    pass
                proc = ctx.Process(
                    target=_worker,
                    args=(fn, name, payload, paths[idx], fault_plan,
                          resources))
                proc.start()
                started[idx] = time.monotonic()
                note(idx, "start")
                deadline = None if timeout_s is None \
                    else now + timeout_s
                running[idx] = (proc, deadline)

            for idx in list(running):
                proc, deadline = running[idx]
                if not proc.is_alive():
                    proc.join()
                    del running[idx]
                    settle(idx)
                    reap(idx, proc)
                elif deadline is not None and time.monotonic() > deadline:
                    _terminate(proc)
                    del running[idx]
                    settle(idx)
                    # accept a result that raced the timeout; otherwise
                    # the task is indistinguishable from a hang
                    if not accept(idx):
                        fail(idx, f"timeout after {timeout_s}s")

            if running and not signals:
                time.sleep(_TICK)

        if signals:
            outcome.interrupted = signals[0]
            for idx, (proc, _deadline) in running.items():
                _terminate(proc)
                settle(idx)
                # a completed-but-unreaped result still counts
                if not accept(idx):
                    outcome.failures.append(TaskFailure(
                        name=tasks[idx][0], attempts=attempts[idx],
                        reason="interrupted while running",
                        wall_clock_s=round(spent[idx], 3)))
            running.clear()
            unrun = list(pending) + [idx for _ready, idx in deferred]
            for idx in unrun:
                if outcome.results[idx] is None:
                    outcome.failures.append(TaskFailure(
                        name=tasks[idx][0], attempts=attempts[idx],
                        reason="interrupted before completion",
                        wall_clock_s=round(spent[idx], 3)
                        if attempts[idx] else None))
    finally:
        if log is not None:
            extra = {"done": sum(1 for r in outcome.results
                                 if r is not None),
                     "failed": len(outcome.failures)}
            if outcome.interrupted is not None:
                extra["interrupted"] = outcome.interrupted
            log.sweep("finish" if outcome.ok else "fail", extra=extra)
            if log.sink is not None:
                log.sink.close()
        for signum, handler in old_handlers.items():
            signal.signal(signum, handler)
        if tmpdir is not None:
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            try:
                os.rmdir(tmpdir)
            except OSError:
                pass

    return outcome


def _journaled(path: str) -> Optional[Dict[str, Any]]:
    """The completed result document at ``path``, or None (absent,
    torn, or not an object -- all treated as 'task not done')."""
    try:
        doc = read_json(path)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def _terminate(proc: Any) -> None:
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():  # pragma: no cover -- needs an unkillable child
        proc.kill()
        proc.join(1.0)
