"""Crash-safe file persistence: write-temp-then-rename.

Every artifact the repo persists -- ``--json`` result documents,
``BENCH_1.json`` trajectories, sweep journal entries, checkpoint files
-- goes through these two helpers.  The temp file lives in the target's
directory (``os.replace`` must not cross filesystems) and is fsynced
before the rename, so a reader never observes a truncated or corrupt
artifact: either the old content or the complete new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def write_text_atomic(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text``."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_json_atomic(path: str, payload: Any, indent: int = 2) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON
    (trailing newline included, matching the repo's artifact style)."""
    write_text_atomic(path, json.dumps(payload, indent=indent) + "\n")


def read_json(path: str) -> Any:
    """Load one JSON artifact (no error wrapping: callers decide what a
    missing/corrupt file means -- the journal treats it as absent)."""
    with open(path) as fh:
        return json.load(fh)
