"""Checkpoint-aware drivers for the calendar/heapq kernel path.

The kernel executes workloads as suspended generator *processes*, and
Python generators cannot be serialized.  So kernel checkpoints are
**replay-anchored** instead of exact: the envelope stores the run
params (enough to rebuild the model from scratch), the simulated
instant, a functional-state fingerprint (SHA-256 over the canonical
JSON of the PQM words, counters, free lists, policy books and shared
feeder counters) and the serialized event schedule
(:meth:`~repro.sim.kernel.Simulator.schedule_state`).  Resume rebuilds
the model, replays deterministically to the anchor via the kernel's
incremental-run seam, then *verifies* both the fingerprint and the
schedule before continuing -- a checkpoint that does not re-anchor
byte-identically is refused rather than silently diverging.

Determinism makes the replay exact: the kernel path takes no
wall-clock or OS input, every RNG is seeded from the params, and the
event order is pinned by the ``(time, sequence)`` contract.  The
telemetry probe and span tracer are deliberately *not* checkpointed on
this path -- they re-accumulate during the replay and arrive at the
anchor in the identical state.

Only the ``overload`` and ``script`` workload families get kernel
drivers: the Table 5 load/saturation workloads always route to the
command-stream engine (``stream_supports`` accepts every published
configuration), so :class:`~repro.checkpoint.runs.StreamRun` covers
them with exact snapshots.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, Union

if TYPE_CHECKING:
    from repro.checkpoint.runs import StreamRun

from repro.checkpoint.runs import _build_probes, _decode_op, _script_feeder
from repro.checkpoint.snapshot import (
    Checkpoint,
    CheckpointError,
    config_from_dict,
)
from repro.core.mms import MMS
from repro.core.workloads import (
    drive_port,
    overload_drain_ops,
    overload_feed_ops,
)
from repro.engines import harnesses
from repro.policies.harness import OverloadResult
from repro.sim.kernel import make_simulator

#: Workload families a KernelRun can drive (see module docstring).
KERNEL_WORKLOADS = ("overload", "script")


def functional_digest(mms: MMS, store: Dict[str, int]) -> str:
    """SHA-256 over the canonical JSON of the model's functional state
    (PQM memory and books, free lists, policy state, shared feeder
    counters).  Two runs with equal digests have byte-identical
    functional state -- the anchor check of a kernel resume."""
    pqm = mms.pqm
    mem = pqm.mem
    sram = mem._sram
    state = {
        "words": {str(a): v for a, v in sram._words.items()},
        "sram_counts": [sram.read_count, sram.write_count],
        "reads": dict(mem.reads_by_region),
        "writes": dict(mem.writes_by_region),
        "seg_free": [pqm.seg_free._reg_head, pqm.seg_free._reg_tail,
                     pqm.seg_free.free_count, pqm.seg_free._virgin],
        "desc_free": [pqm.desc_free._reg_head, pqm.desc_free._reg_tail,
                      pqm.desc_free.free_count, pqm.desc_free._virgin],
        "shadow": {str(slot): list(s)
                   for slot, s in pqm._seg_shadow.items()},
        "open_segments": {str(f): n
                          for f, n in pqm._open_segments.items()},
        "queued_packets": list(pqm._queued_packets),
        "queued_segments": list(pqm._queued_segments),
        "policy": None if mms.policy is None else mms.policy.state_dict(),
        "counters": dict(store),
    }
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class KernelRun:
    """One checkpointable kernel run (replay-anchored; see module
    docstring).  The interface mirrors
    :class:`~repro.checkpoint.runs.StreamRun`: build with :meth:`fresh`
    or :meth:`resume`, advance with :meth:`run`, snapshot with
    :meth:`checkpoint` between runs, finish with :meth:`finish`.

    ``mms`` and ``sim`` are exposed for test capture hooks.
    """

    def __init__(self, workload: str, params: Dict[str, Any]) -> None:
        if workload not in KERNEL_WORKLOADS:
            raise CheckpointError(
                f"unknown kernel workload {workload!r} "
                f"(choose from {KERNEL_WORKLOADS}; the load/saturation "
                f"families checkpoint on the stream path)")
        self.workload = workload
        self.params = params
        self.config = config_from_dict(params["config"])
        self.telemetry, self.tracer, self.probe = _build_probes(params)
        self.store: Dict[str, int] = {}
        self._build()

    # ------------------------------------------------------ constructors

    @classmethod
    def fresh(cls, workload: str, params: Dict[str, Any]) -> "KernelRun":
        """Start the workload from scratch."""
        return cls(workload, params)

    @classmethod
    def resume(cls, ckpt: Checkpoint) -> "KernelRun":
        """Rebuild, replay to the anchor and verify it (refusing a
        checkpoint that does not re-anchor byte-identically)."""
        if ckpt.engine != "kernel":
            raise CheckpointError(
                f"KernelRun cannot resume a {ckpt.engine!r} checkpoint")
        run = cls(ckpt.workload, dict(ckpt.params))
        run.sim.run(until_ps=ckpt.at_ps)
        fp = ckpt.state["fingerprint"]
        problems = []
        if run.sim.now != fp["now"]:
            problems.append(f"clock {run.sim.now} != {fp['now']}")
        digest = functional_digest(run.mms, run.store)
        if digest != fp["digest"]:
            problems.append("functional state digest mismatch")
        schedule = run.sim.schedule_state()
        if schedule != ckpt.state["schedule"]:
            problems.append("event schedule mismatch")
        if problems:
            raise CheckpointError(
                "kernel replay did not re-anchor to the checkpoint ("
                + "; ".join(problems) + ")")
        return run

    # ---------------------------------------------------------- plumbing

    def _build(self) -> None:
        p = self.params
        label = p.get("engine_label", "reference")
        self.mms = MMS(self.config, sim=make_simulator(label),
                       probe=self.probe)
        self.sim = self.mms.sim
        mms, sim = self.mms, self.sim

        if self.workload == "overload":
            drain_period, enq_period = harnesses.overload_pacing_ps(
                mms.clock)
            per_port = p["num_arrivals"] // 3
            self.store["dequeued"] = 0
            for port in range(3):
                sim.spawn(drive_port(mms, port,
                                     overload_feed_ops(
                                         p["shape"], port, per_port,
                                         p["active_flows"], enq_period,
                                         self.store)),
                          name=f"enq{port}")
            sim.spawn(drive_port(mms, 3,
                                 overload_drain_ops(
                                     mms.pqm.queued_packets,
                                     p["active_flows"], drain_period,
                                     self.store)),
                      name="drain")
        else:  # script
            if p["drain"]:
                self.store["dequeued"] = 0
            for port, encoded in enumerate(p["scripts"]):
                ops = [_decode_op(op) for op in encoded]
                sim.spawn(drive_port(mms, port,
                                     _script_feeder(ops, self.store,
                                                    p["mark_done"])),
                          name=f"port{port}")
            if p["drain"]:
                sim.spawn(drive_port(mms, len(p["scripts"]),
                                     overload_drain_ops(
                                         mms.pqm.queued_packets,
                                         p["drain_active_flows"],
                                         p["drain_period_ps"],
                                         self.store)),
                          name="drain")

    # ----------------------------------------------------------- running

    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def horizon(self) -> int:
        """The workload's run horizon (the harness formula)."""
        p = self.params
        if self.workload == "overload":
            drain_period, enq_period = harnesses.overload_pacing_ps(
                self.mms.clock)
            return harnesses.overload_horizon_ps(
                p["num_arrivals"], enq_period, self.config.num_segments,
                drain_period)
        return p["horizon_ps"]

    def run(self, until_ps: int) -> None:
        """Advance the kernel to ``until_ps`` (a rest point: safe to
        checkpoint after)."""
        self.sim.run(until_ps=until_ps)

    def checkpoint(self) -> Checkpoint:
        """Snapshot the run's replay anchor at the current rest
        point."""
        schedule = self.sim.schedule_state()
        return Checkpoint(
            engine="kernel",
            workload=self.workload,
            at_ps=self.sim.now,
            params=self.params,
            state={
                "fingerprint": {
                    "now": self.sim.now,
                    "pending_events": len(schedule["entries"]),
                    "digest": functional_digest(self.mms, self.store),
                },
                "schedule": schedule,
            },
        )

    def finish(self) -> Any:
        """Run to the horizon and assemble the workload's result with
        the exact harness arithmetic."""
        p = self.params
        self.sim.run(until_ps=self.horizon)
        if self.workload == "overload":
            stats = self.mms.policy.stats
            return OverloadResult(
                policy=self.config.policy.name,
                shape=p["shape"],
                offered_segments=stats.offered_segments,
                offered_bytes=stats.offered_bytes,
                accepted_segments=stats.accepted_segments,
                accepted_bytes=stats.accepted_bytes,
                dropped_segments=stats.dropped_segments,
                dropped_bytes=stats.dropped_bytes,
                pushed_out_segments=stats.pushed_out_segments,
                pushed_out_bytes=stats.pushed_out_bytes,
                dequeued_segments=self.store["dequeued"],
                residual_segments=self.mms.policy.total_segments,
                capacity_segments=self.config.num_segments,
                elapsed_ps=self.sim.now,
                engine=p.get("engine_label", "reference"),
            )
        return {
            "elapsed_ps": self.sim.now,
            "counters": dict(self.store),
        }


def resume_run(ckpt: Checkpoint) -> Union["StreamRun", "KernelRun"]:
    """Dispatch a checkpoint to its execution path's driver."""
    if ckpt.engine == "stream":
        from repro.checkpoint.runs import StreamRun
        return StreamRun.resume(ckpt)
    return KernelRun.resume(ckpt)
