"""Checkpoint/resume and fault tolerance for the repro runs.

Two execution paths, two checkpoint disciplines, one resume-identity
contract:

* :class:`StreamRun` (:mod:`.runs`) drives the DES-free command-stream
  engine with **exact** snapshots -- every scalar actor, the wake heap,
  the policy books and the telemetry collectors serialize precisely,
  and feeders resume by observation-tape replay (:mod:`.feeders`).
* :class:`KernelRun` (:mod:`.kernel_runs`) drives the calendar/heapq
  kernel with **replay-anchored** snapshots -- rebuild, deterministic
  replay to the anchor, then fingerprint + event-schedule verification.

Either way, a run split at any rest point and resumed from the JSON
:class:`Checkpoint` envelope produces byte-identical traces, drop
records, telemetry and results (fuzzed over random split points by
``tests/checkpoint/``).  The checkpoint machinery is structurally
absent from plain harness runs: only these drivers wrap feeders, the
same gating discipline as telemetry probes.

Around the checkpoints sits the sweep robustness layer: atomic
artifact persistence (:mod:`.atomic`), the fault-tolerant worker pool
with per-task timeouts, bounded retries, a crash-safe journal and
graceful interrupts (:mod:`.pool`), and the deterministic
fault-injection harness CI uses to prove the recovery paths
(:mod:`.faults`).
"""

from repro.checkpoint.atomic import (
    read_json,
    write_json_atomic,
    write_text_atomic,
)
from repro.checkpoint.faults import maybe_fault, write_plan
from repro.checkpoint.feeders import (
    CountedFeeder,
    CounterView,
    Tape,
    TapeMismatchError,
)
from repro.checkpoint.kernel_runs import (
    KERNEL_WORKLOADS,
    KernelRun,
    functional_digest,
    resume_run,
)
from repro.checkpoint.pool import (
    ERROR_KEY,
    PoolOutcome,
    TaskFailure,
    run_tasks,
)
from repro.checkpoint.runs import (
    STREAM_WORKLOADS,
    StreamRun,
    load_params,
    overload_params,
    run_with_checkpoints,
    saturation_params,
    script_params,
)
from repro.checkpoint.snapshot import (
    CHECKPOINT_ENGINES,
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    config_from_dict,
    config_to_dict,
    telemetry_spec_from_dict,
    telemetry_spec_to_dict,
    trace_spec_from_dict,
    trace_spec_to_dict,
    validate_checkpoint_dict,
)
from repro.checkpoint.stream_state import restore_stream, snapshot_stream

__all__ = [
    "CHECKPOINT_ENGINES",
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointError",
    "CountedFeeder",
    "CounterView",
    "ERROR_KEY",
    "KERNEL_WORKLOADS",
    "KernelRun",
    "PoolOutcome",
    "STREAM_WORKLOADS",
    "StreamRun",
    "Tape",
    "TapeMismatchError",
    "TaskFailure",
    "config_from_dict",
    "config_to_dict",
    "functional_digest",
    "load_params",
    "maybe_fault",
    "overload_params",
    "read_json",
    "restore_stream",
    "resume_run",
    "run_tasks",
    "run_with_checkpoints",
    "saturation_params",
    "script_params",
    "snapshot_stream",
    "telemetry_spec_from_dict",
    "telemetry_spec_to_dict",
    "trace_spec_from_dict",
    "trace_spec_to_dict",
    "validate_checkpoint_dict",
    "write_json_atomic",
    "write_plan",
    "write_text_atomic",
]
