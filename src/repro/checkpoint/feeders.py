"""Resumable feeders: observation tapes over generator workloads.

The one thing an exact :class:`~repro.engines.stream.StreamMms`
snapshot cannot serialize is its feeders -- plain Python generators
(:mod:`repro.core.workloads`) suspended mid-iteration.  What *can* be
reproduced is their execution: a feeder's behavior is a pure function
of its construction arguments plus the values it observed from its
environment (``now_fn()`` reads, ``queued_packets()`` probes, shared
counter lookups).  So each checkpoint-aware feeder runs behind a
:class:`Tape` that records every observation in program order, and a
:class:`CountedFeeder` wrapper that counts consumed micro-ops.  Resume
rebuilds the generator from the same factory, switches its tape to
replay, and fast-forwards it the recorded number of ops: the generator
re-reaches the exact suspension point with the exact internal state
(loop counters, private RNGs), without touching the restored machine.

Two replay rules keep this exact:

* **Replay is a phase, not exhaustion.**  ``Tape.replaying`` stays True
  for the whole fast-forward and is flipped off explicitly once the
  tape is verified fully consumed.  Deriving "live" from "tape
  exhausted" would be wrong: a read-modify-write like
  ``counters["dequeued"] += 1`` whose *read* consumes the last tape
  entry must still have its *write* suppressed.
* **Writes are suppressed during replay.**  Feeders share one counter
  store; each sees it through a :class:`CounterView` whose reads go
  through the feeder's own tape and whose writes are dropped while
  replaying (the store itself is restored from the checkpoint -- the
  writes already happened).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional


class TapeMismatchError(RuntimeError):
    """A replayed feeder diverged from its recording (wrong op count,
    unconsumed observations, or observations beyond the tape) -- the
    checkpoint and the factory disagree about the workload."""


class Tape:
    """Per-feeder observation log with explicit record/replay phases."""

    __slots__ = ("log", "pos", "replaying")

    def __init__(self, log: Optional[List[Any]] = None) -> None:
        self.log: List[Any] = list(log) if log else []
        self.pos = 0
        self.replaying = False

    def observe(self, fn: Callable[..., Any], *args: Any) -> Any:
        """One environment read: recorded live, served from the log
        during replay (``fn`` is not called then)."""
        if self.replaying:
            if self.pos >= len(self.log):
                raise TapeMismatchError(
                    f"replay consumed all {len(self.log)} recorded "
                    f"observations but the feeder asked for another")
            value = self.log[self.pos]
            self.pos += 1
            return value
        value = fn(*args)
        self.log.append(value)
        return value

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """An observed stand-in for ``fn`` (``now_fn``,
        ``queued_packets``)."""
        def observed(*args: Any) -> Any:
            return self.observe(fn, *args)
        return observed

    # ------------------------------------------------------ phase control

    def start_replay(self) -> None:
        self.pos = 0
        self.replaying = True

    def end_replay(self) -> None:
        if self.pos != len(self.log):
            raise TapeMismatchError(
                f"replay consumed {self.pos} of {len(self.log)} recorded "
                f"observations -- the feeder diverged from its recording")
        self.replaying = False


class CounterView:
    """A feeder's taped view of the shared counter store.

    Duck-types the ``Dict[str, int]`` surface the workload feeders use
    (``get``, ``[]`` read, ``[]`` write): reads are observations on the
    owning feeder's tape, writes reach the store only when live.
    """

    __slots__ = ("_store", "_tape")

    def __init__(self, store: Dict[str, int], tape: Tape) -> None:
        self._store = store
        self._tape = tape

    def get(self, key: str, default: int = 0) -> int:
        return self._tape.observe(self._store.get, key, default)

    def __getitem__(self, key: str) -> int:
        return self._tape.observe(self._store.__getitem__, key)

    def __setitem__(self, key: str, value: int) -> None:
        if not self._tape.replaying:
            self._store[key] = value


class CountedFeeder:
    """Iterator wrapper tracking consumed micro-ops and termination.

    This is the *only* checkpoint hook on the feeder path, and it is
    attached exclusively by the checkpoint-aware drivers
    (:mod:`repro.checkpoint.runs`): the plain harnesses keep handing raw
    generators to the engines, so checkpoint support is structurally
    absent from normal runs -- the same gating discipline as telemetry
    probes.
    """

    __slots__ = ("gen", "tape", "ops", "finished")

    def __init__(self, gen: Iterator[Any], tape: Tape) -> None:
        self.gen = gen
        self.tape = tape
        self.ops = 0
        self.finished = False

    def __iter__(self) -> "CountedFeeder":
        return self

    def __next__(self) -> Any:
        try:
            op = next(self.gen)
        except StopIteration:
            self.finished = True
            raise
        self.ops += 1
        return op

    # ------------------------------------------------- snapshot/restore

    def state_dict(self) -> Dict[str, Any]:
        return {"ops": self.ops, "finished": self.finished,
                "tape": list(self.tape.log)}

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output into a freshly built feeder.

        Loads the recorded observations into the (generator-shared) tape
        and fast-forwards the generator to its recorded suspension point
        (see :meth:`fast_forward` for the replay rules).
        """
        self.tape.log = list(state["tape"])
        self.fast_forward(int(state["ops"]), bool(state["finished"]))

    def fast_forward(self, ops: int, finished: bool) -> None:
        """Replay the generator to its recorded suspension point.

        The engines advance feeders only synchronously inside their
        feeder wake (never mid-``next``), so ``ops`` consumed micro-ops
        plus the finished flag pin the generator state exactly.  A
        finished feeder gets one extra ``next()`` that must raise
        ``StopIteration`` (running its trailing post-loop code -- e.g.
        the ``feeders_done`` bump -- under replay suppression).
        """
        self.tape.start_replay()
        for i in range(ops):
            try:
                next(self.gen)
            except StopIteration:
                raise TapeMismatchError(
                    f"feeder finished after {i} of {ops} replayed ops")
        if finished:
            try:
                next(self.gen)
            except StopIteration:
                pass
            else:
                raise TapeMismatchError(
                    "feeder recorded as finished yielded another op "
                    "during replay")
            self.finished = True
        self.ops = ops
        self.tape.end_replay()
