"""Deterministic fault injection for the sweep worker pool.

CI cannot wait for real worker crashes, so this module manufactures
them on demand: a JSON *fault plan* names which task executions die
(``SIGKILL`` mid-task) or hang (sleep past any sane timeout), and
:func:`maybe_fault` -- called by the pool worker before running its
task -- consults the plan.  Faults are **exactly-once per planned
occurrence**: each is claimed through an ``O_CREAT | O_EXCL`` marker
file next to the plan, so the first execution of a task takes the
fault and its retry runs clean.  That makes the CI smoke test sharp:
a sweep with an injected worker kill must produce results identical
to a fault-free sweep, because recovery re-runs the task, not a
degraded variant of it.

The plan lives in a file (not process state) because pool workers are
separate processes: the path travels in the task payload, the claims
synchronize through the filesystem.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, Optional

from repro.checkpoint.atomic import read_json, write_json_atomic

#: Default hang duration: far past any per-task timeout the sweep uses.
HANG_SECONDS = 600.0


def write_plan(path: str, *, kill: Optional[Dict[str, int]] = None,
               hang: Optional[Dict[str, int]] = None,
               hang_seconds: float = HANG_SECONDS) -> None:
    """Write a fault plan: ``kill``/``hang`` map task names to how many
    executions of that task should take the fault (almost always 1)."""
    write_json_atomic(path, {
        "kill": dict(kill or {}),
        "hang": dict(hang or {}),
        "hang_seconds": hang_seconds,
    })


def maybe_fault(plan_path: Optional[str], task: str) -> None:
    """Take the planned fault for ``task``, if one is still unclaimed.

    Called from inside a pool worker process.  ``kill`` dies by
    ``SIGKILL`` (no cleanup, no result file -- exactly what a real
    worker crash looks like); ``hang`` sleeps long enough to trip the
    pool's per-task timeout.
    """
    if plan_path is None:
        return
    plan = read_json(plan_path)
    for kind in ("kill", "hang"):
        times = int(plan.get(kind, {}).get(task, 0))
        for k in range(times):
            if not _claim(plan_path, kind, task, k):
                continue
            if kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(float(plan.get("hang_seconds", HANG_SECONDS)))
            return


def _claim(plan_path: str, kind: str, task: str, k: int) -> bool:
    """Claim occurrence ``k`` of a planned fault (True exactly once
    across all workers and retries, via ``O_CREAT | O_EXCL``)."""
    directory = plan_path + ".claims"
    os.makedirs(directory, exist_ok=True)
    marker = os.path.join(directory, f"{kind}-{task}-{k}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True
