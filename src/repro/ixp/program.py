"""The per-packet queue-management program of the IXP1200 port.

Per 64-byte packet the microengine must: do RX/TX bookkeeping, pick a
non-empty queue (scheduler bitmap scan), enqueue the arriving packet
(free-list pop + queue link) and dequeue one for transmit (queue unlink +
free-list push).  The number of pointer-memory accesses is *derived* from
the real Section 5.2 structure (:class:`repro.queueing.SegmentQueueManager`),
not hard-coded: 3 (pop) + 4 (link) + 3 (unlink) + 4 (push) = 14 accesses
for single-segment packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ixp.params import (
    BITMAP_QUEUES_PER_WORD,
    IxpParams,
    QueueRegime,
    regime_for_queues,
)
from repro.queueing import SegmentQueueManager
from repro.queueing.segment_queues import SegmentMeta


@dataclass(frozen=True)
class PacketProgram:
    """Cost summary of processing one packet on one microengine."""

    num_queues: int
    regime: QueueRegime
    alu_cycles: int          # fixed instruction work incl. regime extra
    scan_words: int          # scheduler bitmap words tested
    memory_accesses: int     # pointer accesses to the regime's unit

    def unloaded_cycles(self, params: IxpParams) -> int:
        """Single-engine, zero-contention cycles per packet.

        This is the quantity behind the 1-microengine column of Table 2
        (rate = clock / unloaded_cycles when nothing else contends).
        """
        costs = params.costs_for(self.regime.unit)
        return (
            self.alu_cycles
            + self.scan_words * params.bitmap_word_cycles
            + self.memory_accesses * costs.blocking_cycles
        )


def derive_queue_op_access_count() -> int:
    """Pointer accesses of one enqueue + one dequeue of a single-segment
    packet, measured on the real data structure."""
    m = SegmentQueueManager(num_queues=2, num_slots=4)
    # steady state: the queue stays non-empty across the dequeue (the
    # drain-to-empty variant costs one extra tail write; Table 2 is
    # measured at saturation where queues are backlogged)
    m.enqueue(0, SegmentMeta(eop=True))
    slot, t_alloc = m.alloc()
    t_link = m.link_segment(0, slot, SegmentMeta(eop=True))
    slot2, _meta, t_unlink = m.unlink_segment(0)
    t_release = m.release(slot2)
    return len(t_alloc) + len(t_link) + len(t_unlink) + len(t_release)


def build_queue_program(num_queues: int,
                        params: IxpParams = IxpParams()) -> PacketProgram:
    """Assemble the per-packet program for a queue-count configuration."""
    regime = regime_for_queues(num_queues)
    accesses = derive_queue_op_access_count()
    scan_words = -(-num_queues // BITMAP_QUEUES_PER_WORD)
    return PacketProgram(
        num_queues=num_queues,
        regime=regime,
        alu_cycles=params.base_alu_cycles + regime.extra_alu_cycles,
        scan_words=scan_words,
        memory_accesses=accesses,
    )
