"""Shared memory units of the IXP1200 model.

Each unit (scratchpad, SRAM controller, SDRAM controller) serves one
access at a time in FIFO order; the *service* portion occupies the
controller, the *engine overhead* portion is paid by the requesting
microengine after (issue instructions, non-overlapped latency).  With six
engines the controller occupancy is what bounds aggregate throughput --
this is where the 6-engine column of Table 2 comes from.
"""

from __future__ import annotations

from typing import Generator

from repro.ixp.params import MemoryCosts
from repro.sim import Clock, Resource, Simulator
from repro.sim.stats import LatencyRecorder


class SharedMemoryUnit:
    """A FIFO-served memory controller shared by all microengines."""

    def __init__(self, sim: Simulator, clock: Clock, costs: MemoryCosts,
                 name: str) -> None:
        self.sim = sim
        self.clock = clock
        self.costs = costs
        self.name = name
        self._port = Resource(sim, slots=1, name=f"{name}.port")
        self.total_accesses = 0
        self.wait = LatencyRecorder(f"{name}.wait")
        # Pure functions of (costs, clock): convert once, not per access.
        self._service_ps = clock.cycles_to_ps(costs.service_cycles)
        self._overhead_ps = clock.cycles_to_ps(costs.engine_overhead_cycles)

    def access(self) -> Generator:
        """One blocking single-word access from microengine code.

        ``yield from unit.access()`` -- queues for the controller, holds
        it for the service time, then pays the engine-side overhead.
        """
        t0 = self.sim.now
        yield from self._port.acquire()
        self.wait.record(self.sim.now - t0)
        yield self._service_ps
        self._port.release()
        yield self._overhead_ps
        self.total_accesses += 1

    @property
    def utilization(self) -> float:
        """Fraction of simulated time the controller was busy."""
        return self._port.busy.mean

    @property
    def mean_wait_cycles(self) -> float:
        if self.wait.count == 0:
            return 0.0
        return self.wait.mean / self.clock.period_ps
