"""Whole-IXP1200 simulation: microengines contending on shared memories.

One process per microengine executes the per-packet program in a loop
(backlogged input -- Table 2 reports the *maximum rate serviced*).  All
engines share one controller per memory unit; contention emerges from the
DES simulation rather than from a fitted degradation factor.  Optional
hardware multithreading (ablation) runs several program contexts per
engine, releasing the engine during memory waits but paying the context
switch the paper says eats the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ixp.memory_units import SharedMemoryUnit
from repro.ixp.params import IxpParams
from repro.ixp.program import PacketProgram, build_queue_program
from repro.sim import Clock, Resource
from repro.sim.clock import SEC
from repro.sim.kernel import make_simulator


@dataclass
class IxpSimResult:
    """Outcome of one Table 2 cell."""

    num_queues: int
    num_engines: int
    multithreading: bool
    packets: int
    duration_ps: int
    unit_utilization: float
    mean_controller_wait_cycles: float
    #: DES kernel the run used ("fast" = calendar queue, "reference" =
    #: heapq ordering spec); simulated results are identical.
    engine: str = "fast"

    @property
    def pps(self) -> float:
        if self.duration_ps == 0:
            return 0.0
        return self.packets * SEC / self.duration_ps

    @property
    def kpps(self) -> float:
        return self.pps / 1e3

    @property
    def mpps(self) -> float:
        return self.pps / 1e6

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IxpSimResult(q={self.num_queues}, engines={self.num_engines}, "
            f"{self.kpps:.0f} Kpps)"
        )


class IxpSystem:
    """The modelled IXP1200: engines + shared scratch/SRAM/SDRAM units."""

    def __init__(self, num_queues: int, num_engines: int,
                 params: IxpParams = IxpParams(),
                 multithreading: bool = False,
                 engine: str = "fast") -> None:
        if not 1 <= num_engines <= params.num_microengines:
            raise ValueError(
                f"num_engines must be in [1, {params.num_microengines}], "
                f"got {num_engines}"
            )
        self.params = params
        self.num_engines = num_engines
        self.multithreading = multithreading
        self.engine = engine
        self.clock = Clock(params.clock_mhz)
        self.sim = make_simulator(engine)
        self.program: PacketProgram = build_queue_program(num_queues, params)
        self.units: Dict[str, SharedMemoryUnit] = {
            name: SharedMemoryUnit(self.sim, self.clock,
                                   params.costs_for(name), name)
            for name in ("scratch", "sram", "sdram")
        }
        self._unit = self.units[self.program.regime.unit]
        self._done = [0] * num_engines
        for e in range(num_engines):
            if multithreading:
                self._spawn_threaded_engine(e)
            else:
                self.sim.spawn(self._engine_body(e), name=f"me{e}")

    # ------------------------------------------------------------ engines

    def _engine_body(self, idx: int):
        """Single-threaded microengine: block on every memory access."""
        prog = self.program
        work = prog.alu_cycles + prog.scan_words * self.params.bitmap_word_cycles
        work_ps = self.clock.cycles_to_ps(work)
        accesses = prog.memory_accesses
        unit_access = self._unit.access
        done = self._done
        while True:
            yield work_ps
            for _ in range(accesses):
                yield from unit_access()
            done[idx] += 1

    def _spawn_threaded_engine(self, idx: int) -> None:
        """Hardware-multithreaded engine (ablation): contexts share the
        engine pipeline, swapping on memory waits at a context-switch
        cost.  Reference [10] in the paper: 'the overhead for the context
        switch ... exceeds the memory latency'."""
        engine = Resource(self.sim, slots=1, name=f"me{idx}")
        for t in range(self.params.threads_per_engine):
            self.sim.spawn(self._thread_body(idx, engine),
                           name=f"me{idx}.t{t}")

    def _thread_body(self, idx: int, engine: Resource):
        prog = self.program
        work = prog.alu_cycles + prog.scan_words * self.params.bitmap_word_cycles
        work_ps = self.clock.cycles_to_ps(work)
        ctx_ps = self.clock.cycles_to_ps(self.params.context_switch_cycles)
        accesses = prog.memory_accesses
        unit_access = self._unit.access
        done = self._done
        while True:
            yield from engine.acquire()
            yield work_ps
            for _ in range(accesses):
                # swap out while the access is in flight
                engine.release()
                yield from unit_access()
                yield from engine.acquire()
                yield ctx_ps
            engine.release()
            done[idx] += 1

    # ---------------------------------------------------------------- run

    def run(self, duration_ps: Optional[int] = None,
            warmup_ps: int = 0) -> IxpSimResult:
        """Run the saturated system and report the serviced rate.

        ``duration_ps`` defaults to the time for ~400 packets per engine
        in the unloaded model (enough for a stable steady-state mean).
        """
        if duration_ps is None:
            per_packet = self.program.unloaded_cycles(self.params)
            duration_ps = self.clock.cycles_to_ps(per_packet) * 400
        if warmup_ps:
            self.sim.run(until_ps=warmup_ps)
            for i in range(self.num_engines):
                self._done[i] = 0
        start = self.sim.now
        self.sim.run(until_ps=start + duration_ps)
        return IxpSimResult(
            num_queues=self.program.num_queues,
            num_engines=self.num_engines,
            multithreading=self.multithreading,
            packets=sum(self._done),
            duration_ps=self.sim.now - start,
            unit_utilization=self._unit.utilization,
            mean_controller_wait_cycles=self._unit.mean_wait_cycles,
            engine=self.engine,
        )


def simulate_ixp(num_queues: int, num_engines: int,
                 params: IxpParams = IxpParams(),
                 multithreading: bool = False,
                 duration_ps: Optional[int] = None,
                 engine: str = "fast") -> IxpSimResult:
    """One Table 2 cell: maximum serviced rate for a configuration."""
    system = IxpSystem(num_queues, num_engines, params=params,
                       multithreading=multithreading, engine=engine)
    return system.run(duration_ps=duration_ps)
