"""IXP1200 model parameters and queue-placement regimes.

The IXP1200 (first-generation Intel NPU) integrates 6 microengines at
200 MHz, a 4 KB on-chip scratchpad, an external-SRAM unit (with the
8-entry push/pop register list the paper mentions) and an SDRAM unit.
The paper's Table 2 sweeps the number of queues; what actually changes is
*where the queue state lives*:

* <= 16 queues -- queue table, free list and bitmaps fit in registers
  and scratchpad ("so as to be able to keep every piece of control
  information in the local cache and in the IXP's registers"),
* up to a few hundred queues -- descriptors spill to external SRAM
  ("if 128 queues are needed, and thus some external memory accesses are
  necessary"),
* ~1 K queues and beyond -- descriptor state spills to SDRAM, where row
  misses and RX/DMA interference make every access expensive.

Calibration (see DESIGN.md): the three *blocking access costs* and the
per-regime ``extra_alu`` are fitted once against the one-microengine
column of Table 2; the six-microengine column is then a *prediction* of
the shared-controller contention simulation, whose service times are the
occupancy components of the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Queues per scheduler-bitmap word (32-bit words).
BITMAP_QUEUES_PER_WORD = 32


@dataclass(frozen=True)
class MemoryCosts:
    """Cost of one blocking single-word access from microengine code.

    ``service_cycles`` is the time the shared controller is *occupied*
    (this is what saturates with 6 engines); ``engine_overhead_cycles``
    is the additional issue/latency cost seen by the engine but not
    holding the controller.
    """

    service_cycles: int
    engine_overhead_cycles: int

    @property
    def blocking_cycles(self) -> int:
        """Unloaded blocking cost seen by a single engine."""
        return self.service_cycles + self.engine_overhead_cycles


@dataclass(frozen=True)
class QueueRegime:
    """Where queue state lives for a given queue-count range."""

    name: str
    unit: str                      # "scratch" | "sram" | "sdram"
    extra_alu_cycles: int          # address-generation / hashing overhead
    bitmap_in_unit: bool = False   # scheduler bitmap spills with the state


@dataclass(frozen=True)
class IxpParams:
    """The modelled IXP1200 (all cycle figures at the 200 MHz core clock).

    The per-packet queue-management program is: receive bookkeeping +
    scheduler scan + enqueue (free-list pop + queue link) + dequeue
    (queue unlink + free-list push) + transmit bookkeeping.  Its memory
    accesses come from :mod:`repro.queueing`; only the constants below
    are calibrated.
    """

    clock_mhz: int = 200
    num_microengines: int = 6
    threads_per_engine: int = 4
    #: fixed ALU/branch work per packet (RX/TX bookkeeping + list code)
    base_alu_cycles: int = 117
    #: cost to test one 32-queue bitmap word during the scheduler scan
    bitmap_word_cycles: int = 8
    #: context-switch overhead (ablation: the paper argues, citing [10],
    #: that this exceeds the memory latency, so multithreading does not
    #: pay off for queue management)
    context_switch_cycles: int = 30
    scratch: MemoryCosts = field(
        default_factory=lambda: MemoryCosts(service_cycles=1,
                                            engine_overhead_cycles=5))
    sram: MemoryCosts = field(
        default_factory=lambda: MemoryCosts(service_cycles=4,
                                            engine_overhead_cycles=21))
    sdram: MemoryCosts = field(
        default_factory=lambda: MemoryCosts(service_cycles=40,
                                            engine_overhead_cycles=160))

    def costs_for(self, unit: str) -> MemoryCosts:
        if unit == "scratch":
            return self.scratch
        if unit == "sram":
            return self.sram
        if unit == "sdram":
            return self.sdram
        raise ValueError(f"unknown memory unit {unit!r}")


#: Queue-placement thresholds.  4 KB of scratchpad holds ~16 queues of
#: state comfortably next to RX/TX rings; the SRAM partition reserved for
#: queue descriptors in the reference port holds ~512.
SCRATCH_MAX_QUEUES = 16
SRAM_MAX_QUEUES = 512


def regime_for_queues(num_queues: int) -> QueueRegime:
    """Select the placement regime for a queue count (Table 2 sweep)."""
    if num_queues < 1:
        raise ValueError(f"num_queues must be >= 1, got {num_queues}")
    if num_queues <= SCRATCH_MAX_QUEUES:
        return QueueRegime(name="scratch-resident", unit="scratch",
                           extra_alu_cycles=0)
    if num_queues <= SRAM_MAX_QUEUES:
        return QueueRegime(name="sram-resident", unit="sram",
                           extra_alu_cycles=14)
    return QueueRegime(name="sdram-resident", unit="sdram",
                       extra_alu_cycles=160, bitmap_in_unit=False)
