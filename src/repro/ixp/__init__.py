"""IXP1200 network-processor model (paper Section 4, Table 2).

The paper ports queue management onto the Intel IXP1200's six RISC
microengines (200 MHz) and measures the sustainable packet rate as a
function of the number of queues: with few queues all state fits in the
on-chip scratchpad and registers; more queues force external SRAM and
eventually SDRAM accesses, and the shared memory controllers saturate
when all six engines hammer them.

The model here is a *cost-model simulator*: each packet executes a
queue-management program whose memory accesses are derived from the real
Section 5.2 data structures (:mod:`repro.queueing`) and priced by where
the queue state lives.  Contention on the shared controllers is simulated
with the DES kernel -- the 6-engine columns of Table 2 come out of
queueing for the controllers, not out of a fitted constant.  See
DESIGN.md "Calibration notes" for which constants are calibrated and to
which published cell.
"""

from repro.ixp.params import IxpParams, MemoryCosts, QueueRegime, regime_for_queues
from repro.ixp.memory_units import SharedMemoryUnit
from repro.ixp.program import PacketProgram, build_queue_program
from repro.ixp.system import IxpSimResult, IxpSystem, simulate_ixp

__all__ = [
    "IxpParams",
    "MemoryCosts",
    "QueueRegime",
    "regime_for_queues",
    "SharedMemoryUnit",
    "PacketProgram",
    "build_queue_program",
    "IxpSystem",
    "IxpSimResult",
    "simulate_ixp",
]
