"""The DES-free MMS/DQM command-stream machine.

:class:`StreamMms` executes an MMS command workload -- port feeders,
per-port command FIFOs, the serial DQM, and the DMC's bank-aware reorder
window -- without the discrete-event kernel.  Where the kernel round-trips
every command through generator processes, event objects and a calendar
queue (a dozen kernel events per command), the machine advances a handful
of scalar actor states over preallocated structures: FIFO occupancy is a
deque per port, the DQM is a round-robin cursor plus one in-flight
command, the DMC is the bank release array plus the write-after-read
turnaround pair, and the memoized :func:`repro.core.dqm.command_timing_table`
picosecond costs are folded into cumulative-sum accounting per command.
The whole machine runs as one inlined loop over a tiny wake heap (the
same structure-over-speed trade the kernel's run loop makes, one level
lower).

Fidelity is not statistical: the machine reproduces the kernel's
``(time, sequence)`` ordering contract for every interaction that is
observable through the published results -- deposit visibility at DQM pop
instants, feeder backpressure resume order, DMC pick instants -- so the
per-command access traces, drop/accept counters and picosecond totals are
*identical* to the reference path, not merely close (asserted by
``tests/engines/``).  The functional work itself (pointer-memory
operations, buffer-policy decisions) runs through the very same
:class:`~repro.queueing.PacketQueueManager` code as the kernel path,
which is what makes trace identity a structural property rather than a
re-implementation hazard.

Workloads the machine cannot replay exactly (non-default port
arrangements whose backpressure interleavings it does not model) are
declared by :func:`stream_supports`, and the harness entry points fall
back to the calendar-queue kernel for them.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Iterator, List, Optional, Tuple, Union

from repro.core.commands import (
    DATA_READ_COMMANDS,
    DATA_WRITE_COMMANDS,
    CommandType,
)
from repro.core.dqm import MicrocodeMismatchError, command_timing_table
from repro.core.mms import MmsConfig
from repro.core.scheduler import DEFAULT_PORTS
from repro.mem.timing import DdrTiming
from repro.policies import BufferPolicy, make_policy
from repro.policies.base import DroppedSegment
from repro.queueing import PacketQueueManager
from repro.sim.clock import NS, Clock

#: Micro-op a feeder generator may yield: a positive int sleep (ps) or a
#: command tuple ``(CommandType, flow, dst_flow, eop, length)``.
FeederOp = Union[int, Tuple[CommandType, int, Optional[int], bool, int]]

#: A feeder: generator of micro-ops (see :data:`FeederOp`).
Feeder = Iterator[FeederOp]

# Wake kinds (heap entries are ``(time_ps, seq, kind, arg)``; ``seq``
# replicates the kernel's monotonic push-order tie-break within a
# timestamp).
_W_FEEDER = 0        # resume a feeder generator (arg = feeder index)
_W_SERVE_POP = 1     # the DQM was kicked out of its idle wait
_W_SERVE_HANDOFF = 2  # first-pointer-access handoff: issue the DMC transfer
_W_SERVE_TAIL = 3    # command execution complete; serve the next one
_W_DMC_TOP = 4       # DMC loop top (queue check + slot alignment + issue)
_W_DMC_ISSUE = 5     # DMC reached the earliest legal issue slot

_DATA_COMMANDS = DATA_READ_COMMANDS | DATA_WRITE_COMMANDS

# Command records are plain lists (allocation-cheap; one per command):
# [op, flow, dst, eop, length, port, submit_ps, start_ps, end_ps,
#  data_slot, req].  DMC requests likewise: [submit_ps, is_write, bank,
#  complete_ps] with complete_ps = -1 until issued.
C_OP, C_FLOW, C_DST, C_EOP, C_LEN, C_PORT = 0, 1, 2, 3, 4, 5
C_SUBMIT, C_START, C_END, C_SLOT, C_REQ = 6, 7, 8, 9, 10
R_SUBMIT, R_WRITE, R_BANK, R_COMPLETE = 0, 1, 2, 3


def stream_supports(config: MmsConfig) -> Optional[str]:
    """Why the machine cannot replay ``config`` (None = it can).

    The machine claims the standard Figure 2 port arrangement only:
    custom per-port FIFO depths/priorities are backpressure *timing
    studies* whose interleavings belong to the kernel.  It also requires
    the DMC completion grid to stay off the MMS clock grid (true for
    every paper configuration), which is what makes the latency-record
    ordering reproducible without a kernel.
    """
    if config.ports != DEFAULT_PORTS:
        return ("non-default port arrangement (backpressure timing study; "
                "kernel only)")
    period_ps = Clock(config.clock_mhz).period_ps
    timing = DdrTiming()
    cycle_ps = timing.access_cycle_ns * NS
    if cycle_ps % period_ps != 0:
        return "DDR access cycle not a multiple of the MMS clock period"
    pipeline_ps = config.dmc_pipeline_ns * NS
    for delay_ns in (timing.read_delay_ns, timing.write_delay_ns):
        if (delay_ns * NS + pipeline_ps) % period_ps == 0:
            return ("DMC completion grid collides with the MMS clock grid "
                    "(record ordering would need the kernel)")
    return None


class StreamMms:
    """A batched MMS instance: same functional state, no DES kernel.

    Mirrors the :class:`~repro.core.mms.MMS` construction contract
    (policy built from ``config.policy`` sized to the segment buffer,
    ``now_fn`` wired to simulated time) so policy decisions and
    pointer-memory state are bit-compatible with the kernel path.
    """

    def __init__(self, config: MmsConfig = MmsConfig(),
                 policy: Optional[BufferPolicy] = None,
                 probe=None) -> None:
        reason = stream_supports(config)
        if reason is not None:
            raise ValueError(f"stream engine cannot replay this config: "
                             f"{reason}")
        self.config = config
        self.clock = Clock(config.clock_mhz)
        if policy is None and config.policy is not None:
            policy = make_policy(config.policy, capacity=config.num_segments,
                                 seed=config.policy_seed,
                                 keep_records=config.policy_records)
        self.policy = policy
        if self.policy is not None:
            self.policy.now_fn = lambda: self.now
        self.pqm = PacketQueueManager(num_flows=config.num_flows,
                                      num_segments=config.num_segments,
                                      num_descriptors=config.num_descriptors,
                                      policy=self.policy)
        #: Per-op fused cost row: (handoff_ps, tail_ps, execution_cycles_f,
        #: ptr_accesses, touches_data, is_data_write).
        self._opinfo = {
            op: (handoff_ps, tail_ps, execf, ptr,
                 op in _DATA_COMMANDS, op in DATA_WRITE_COMMANDS)
            for op, (handoff_ps, tail_ps, _lat, execf, ptr)
            in command_timing_table(self.clock.period_ps,
                                    config.overlap_data).items()
        }
        self._strict = config.strict_microcode
        # ---- actor clock / wake heap --------------------------------
        self.now = 0
        self._seq = 0
        self._wakes: List[Tuple[int, int, int, Optional[int]]] = []
        # ---- per-port command FIFOs ---------------------------------
        ports = config.ports
        self._num_ports = len(ports)
        self._prios = [p.priority for p in ports]
        self._caps = [p.fifo_depth for p in ports]
        self._fifos = [deque() for _ in ports]
        self._pending: List[Optional[Tuple[int, list]]] = [None] * len(ports)
        # ---- DQM (serve) --------------------------------------------
        self._rr_next = 0
        self._serve_waiting = True
        self._cur: Optional[list] = None
        self._cur_info: Optional[tuple] = None
        self.commands_executed = 0
        self._done: List[list] = []
        # ---- DMC ----------------------------------------------------
        timing = DdrTiming()
        self._cycle_ps = timing.access_cycle_ns * NS
        self._busy_cycles = timing.bank_busy_cycles
        self._war_cycles = timing.write_after_read_penalty_cycles
        pipeline_ps = config.dmc_pipeline_ns * NS
        self._read_delay_ps = timing.read_delay_ns * NS + pipeline_ps
        self._write_delay_ps = timing.write_delay_ns * NS + pipeline_ps
        self._num_banks = config.num_banks
        self._window = config.reorder_window
        self._bank_free = [0] * config.num_banks
        self._last_islot = 0
        self._last_was_read = False
        self._dmc_queue: List[list] = []
        self._dmc_waiting = True
        self._dmc_req: Optional[list] = None
        # ---- feeders ------------------------------------------------
        self._feeders: List[Feeder] = []
        self._feeder_port: List[int] = []
        #: Optional per-operation log hook (fuzz/diagnostics): called
        #: with (cmd_record, result, trace) after every dispatch.  While
        #: set, full access traces are materialized.
        self.trace_hook: Optional[Callable] = None
        #: Optional telemetry probe (:mod:`repro.telemetry`).  Mirrors
        #: the kernel DQM's contract: when set, the run loop selects the
        #: probed dispatch (emitting ``on_command`` at the pop instant)
        #: and disables the inlined opcode branches; when None, the hot
        #: loop carries no telemetry call sites (structural absence).
        #: ``on_record`` is replayed from :meth:`latency_records` by the
        #: harnesses after the run.
        self.probe = probe

    # --------------------------------------------------------- wiring

    def add_feeder(self, port: int, gen: Feeder) -> None:
        """Attach a feeder generator to ``port`` and schedule its first
        step now (the kernel's ``spawn`` contract: spawn order is resume
        order at equal times)."""
        if not 0 <= port < self._num_ports:
            raise ValueError(f"port {port} out of range "
                             f"[0, {self._num_ports})")
        idx = len(self._feeders)
        self._feeders.append(gen)
        self._feeder_port.append(port)
        self._seq += 1
        heappush(self._wakes, (self.now, self._seq, _W_FEEDER, idx))

    def prefill(self, flows, packets_per_flow: int,
                segments_per_packet: int = 1) -> int:
        """Functionally preload queues; see
        :meth:`repro.core.mms.MMS.prefill` (identical state, identical
        access counters)."""
        return self.pqm.bulk_prefill(flows, packets_per_flow,
                                     segments_per_packet)

    # ------------------------------------------------------------ run

    def run(self, until_ps: int) -> int:
        """Drain the wake heap up to ``until_ps`` (kernel ``run``
        contract: the first wake beyond the horizon ends the run).

        The body is one fused loop over every actor -- feeders, the
        DQM's pop/handoff/tail points, and the DMC's aligned pick/issue
        points -- with machine state held in locals; the inline blocks
        are the hand-compiled equivalents of the kernel processes they
        replace (named in the comments).
        """
        mem = self.pqm.mem
        count_restore = mem.count_only_traces
        if self.trace_hook is None:
            # the published scenarios consult only trace lengths and
            # counters; skip materializing AccessRecord objects
            mem.count_only_traces = True
        try:
            return self._run(until_ps)
        finally:
            mem.count_only_traces = count_restore

    def _run(self, until_ps: int) -> int:
        wakes = self._wakes
        seq = self._seq
        dispatch = self._dispatch if self.probe is None \
            else self._dispatch_probed
        opinfo = self._opinfo
        strict = self._strict
        heappush_ = heappush
        heappop_ = heappop
        pqm = self.pqm
        # the two dominant Table 5 / overload opcodes take an inlined
        # dispatch branch below (identical calls, minus the indirection)
        enq_op = CommandType.ENQUEUE
        deq_op = CommandType.DEQUEUE
        inline_ok = self.trace_hook is None and self.probe is None
        policy_none = self.policy is None
        # scheduler / serve state
        fifos = self._fifos
        prios = self._prios
        caps = self._caps
        nports = self._num_ports
        pending = self._pending
        rr_next = self._rr_next
        serve_waiting = self._serve_waiting
        cur = self._cur
        cur_info = self._cur_info
        done = self._done
        # feeder state
        feeders = self._feeders
        fports = self._feeder_port
        # DMC state
        dmc_queue = self._dmc_queue
        dmc_waiting = self._dmc_waiting
        dmc_req = self._dmc_req
        bank_free = self._bank_free
        cycle = self._cycle_ps
        busy = self._busy_cycles
        war = self._war_cycles
        rdelay = self._read_delay_ps
        wdelay = self._write_delay_ps
        nbanks = self._num_banks
        reorder = self._window
        last_islot = self._last_islot
        last_was_read = self._last_was_read

        try:
            while wakes:
                if wakes[0][0] > until_ps:
                    # leave the over-horizon wake scheduled (kernel run
                    # contract: a later run() call resumes from it)
                    self.now = until_ps
                    return until_ps
                t, _s, kind, arg = heappop_(wakes)
                self.now = now = t
                pop_now = False

                if kind == _W_SERVE_TAIL:
                    # -- DataQueueManager.execute, after the schedule
                    # tail: finalize the command, serve the next -------
                    cur[C_END] = now
                    self.commands_executed += 1
                    done.append(cur)
                    cur = None
                    pop_now = True

                elif kind == _W_SERVE_HANDOFF:
                    # -- the first-pointer-access handoff: the DMC gets
                    # the transfer one cycle later ("almost in
                    # parallel"); then the schedule tail runs ----------
                    slot = cur[C_SLOT]
                    if slot is not None and cur_info[4]:
                        req = [now, cur_info[5], slot % nbanks, -1]
                        cur[C_REQ] = req
                        dmc_queue.append(req)
                        if dmc_waiting:
                            dmc_waiting = False
                            seq += 1
                            heappush_(wakes, (now, seq, _W_DMC_TOP, None))
                    seq += 1
                    heappush_(wakes, (now + cur_info[1], seq,
                                     _W_SERVE_TAIL, None))

                elif kind == _W_DMC_TOP or kind == _W_DMC_ISSUE:
                    # -- DdrController._serve: align to the access
                    # cycle, pick within the reorder window, wait out
                    # the bank/turnaround constraint, issue ------------
                    if kind == _W_DMC_ISSUE:
                        req, dmc_req = dmc_req, None
                    else:
                        if not dmc_queue:
                            dmc_waiting = True
                            continue
                        rem = now % cycle
                        if rem:
                            seq += 1
                            heappush_(wakes, (now + cycle - rem, seq,
                                             _W_DMC_TOP, None))
                            continue
                        slot_no = now // cycle
                        window = reorder if reorder < len(dmc_queue) \
                            else len(dmc_queue)
                        idx = 0
                        for i in range(window):
                            if bank_free[dmc_queue[i][R_BANK]] <= slot_no:
                                idx = i
                                break
                        req = dmc_queue.pop(idx)
                        # DdrModel.earliest_issue_slot: bank reuse +
                        # write-after-read turnaround overlap (max)
                        islot = bank_free[req[R_BANK]]
                        if islot < slot_no:
                            islot = slot_no
                        if req[R_WRITE] and last_was_read:
                            turnaround_free = last_islot + 1 + war
                            if turnaround_free > islot:
                                islot = turnaround_free
                        if islot > slot_no:
                            dmc_req = req
                            seq += 1
                            heappush_(wakes, (islot * cycle, seq,
                                             _W_DMC_ISSUE, None))
                            continue
                    # issue at the current instant
                    islot = now // cycle
                    bank_free[req[R_BANK]] = islot + busy
                    last_islot = islot
                    last_was_read = not req[R_WRITE]
                    req[R_COMPLETE] = now + (wdelay if req[R_WRITE]
                                             else rdelay)
                    seq += 1
                    heappush_(wakes, (now + cycle, seq, _W_DMC_TOP, None))

                elif kind == _W_FEEDER:
                    # -- a port process: pull micro-ops until it sleeps,
                    # blocks on a full FIFO, or finishes ---------------
                    gen = feeders[arg]
                    port = fports[arg]
                    fifo = fifos[port]
                    cap = caps[port]
                    while True:
                        try:
                            op = next(gen)
                        except StopIteration:
                            break
                        if type(op) is int:
                            if op < 0:
                                raise ValueError(
                                    f"feeder {arg} yielded a negative "
                                    f"sleep {op}")
                            seq += 1
                            heappush_(wakes, (now + op, seq, _W_FEEDER, arg))
                            break
                        cmd = [op[0], op[1], op[2], op[3], op[4], port,
                               now, -1, -1, None, None]
                        if len(fifo) >= cap:
                            # backpressure: the port holds the command;
                            # the DQM's next pop from this FIFO deposits
                            # it and resumes us
                            pending[port] = (arg, cmd)
                            break
                        fifo.append(cmd)
                        if serve_waiting:
                            serve_waiting = False
                            seq += 1
                            heappush_(wakes, (now, seq, _W_SERVE_POP, None))

                else:  # _W_SERVE_POP: kicked out of the idle wait
                    pop_now = True

                if pop_now:
                    # -- InternalScheduler.pop_next + the head of
                    # DataQueueManager.execute: strict priority between
                    # classes, round-robin within a class; dispatch the
                    # functional operation at the pop instant ----------
                    best = -1
                    best_prio = 0
                    for off in range(nports):
                        i = rr_next + off
                        if i >= nports:
                            i -= nports
                        if not fifos[i]:
                            continue
                        if best < 0 or prios[i] < best_prio:
                            best = i
                            best_prio = prios[i]
                    if best < 0:
                        serve_waiting = True
                        continue
                    rr_next = 0 if best + 1 >= nports else best + 1
                    fifo = fifos[best]
                    cmd = fifo.popleft()
                    pend = pending[best]
                    if pend is not None:
                        # the freed slot admits the backpressured
                        # command at the pop instant; its feeder resumes
                        # at this timestamp after the queued wakes
                        # (kernel gate-trigger order)
                        pending[best] = None
                        fidx, pcmd = pend
                        pcmd[C_SUBMIT] = now
                        fifo.append(pcmd)
                        seq += 1
                        heappush_(wakes, (now, seq, _W_FEEDER, fidx))
                    cmd[C_START] = now
                    op = cmd[C_OP]
                    if inline_ok and op is deq_op:
                        info_seg, trace = pqm.dequeue_segment(cmd[C_FLOW])
                        result = info_seg
                        trace_len = len(trace)
                        data_slot = info_seg.slot
                    elif inline_ok and op is enq_op and policy_none:
                        result, trace = pqm.enqueue_segment(
                            cmd[C_FLOW], eop=cmd[C_EOP], length=cmd[C_LEN])
                        trace_len = len(trace)
                        data_slot = result
                    else:
                        result, trace_len, data_slot = dispatch(cmd)
                    info = opinfo[op]
                    if strict \
                            and not isinstance(result, DroppedSegment) \
                            and trace_len != info[3]:
                        raise MicrocodeMismatchError(
                            f"{cmd[C_OP].value}: functional trace has "
                            f"{trace_len} pointer accesses, schedule has "
                            f"{info[3]}")
                    cmd[C_SLOT] = data_slot
                    cur = cmd
                    cur_info = info
                    seq += 1
                    heappush_(wakes, (now + info[0], seq,
                                     _W_SERVE_HANDOFF, None))
            if self.now < until_ps:
                self.now = until_ps
            return self.now
        finally:
            self._seq = seq
            self._rr_next = rr_next
            self._serve_waiting = serve_waiting
            self._cur = cur
            self._cur_info = cur_info
            self._dmc_waiting = dmc_waiting
            self._dmc_req = dmc_req
            self._last_islot = last_islot
            self._last_was_read = last_was_read

    # ------------------------------------------------------- dispatch

    def _dispatch(self, cmd: list):
        """Functional execution (mirrors ``DataQueueManager._dispatch``);
        returns ``(result, trace_len, data_slot)``."""
        t = cmd[C_OP]
        flow = cmd[C_FLOW]
        pqm = self.pqm
        if t is CommandType.ENQUEUE:
            slot, trace = pqm.admit_enqueue(flow, eop=cmd[C_EOP],
                                            length=cmd[C_LEN])
            result = slot
            data = None if isinstance(slot, DroppedSegment) else slot
        elif t is CommandType.DEQUEUE:
            info, trace = pqm.dequeue_segment(flow)
            result, data = info, info.slot
        elif t is CommandType.READ:
            info, trace = pqm.read_segment(flow)
            result, data = info, info.slot
        elif t is CommandType.OVERWRITE:
            info, trace = pqm.overwrite_segment(flow)
            result, data = info, info.slot
        elif t is CommandType.DELETE:
            info, trace = pqm.delete_segment(flow)
            result, data = info, None
        elif t is CommandType.DELETE_PACKET:
            trace = pqm.delete_packet(flow)
            result, data = None, None
        elif t is CommandType.MOVE:
            trace = pqm.move_packet(flow, cmd[C_DST])
            result, data = None, None
        elif t is CommandType.OVERWRITE_LENGTH:
            info, trace = pqm.overwrite_segment_length(flow, cmd[C_LEN])
            result, data = info, None
        elif t is CommandType.OVERWRITE_LENGTH_MOVE:
            trace = pqm.overwrite_length_and_move(flow, cmd[C_DST],
                                                  cmd[C_LEN])
            result, data = None, None
        elif t is CommandType.OVERWRITE_MOVE:
            info, trace = pqm.overwrite_and_move(flow, cmd[C_DST])
            result, data = info, info.slot
        elif t is CommandType.APPEND_HEAD:
            slot, trace = pqm.append_head(flow)
            result = slot
            data = None if isinstance(slot, DroppedSegment) else slot
        elif t is CommandType.APPEND_TAIL:
            slot, trace = pqm.append_tail(flow, length=cmd[C_LEN])
            result = slot
            data = None if isinstance(slot, DroppedSegment) else slot
        else:
            raise ValueError(f"unknown command type {t}")
        hook = self.trace_hook
        if hook is not None:
            hook(cmd, result, trace)
        return result, len(trace), data

    def _dispatch_probed(self, cmd: list):
        """Telemetry variant of :meth:`_dispatch`: the functional
        operation, then the probe's ``on_command`` with the
        post-dispatch occupancy -- the identical call the kernel DQM's
        probed dispatch emits at the identical pop instant."""
        out = self._dispatch(cmd)
        pqm = self.pqm
        self.probe.on_command(self.now, cmd[C_OP], cmd[C_FLOW], out[0],
                              pqm.queued_segments(cmd[C_FLOW]),
                              pqm.num_segments - pqm.free_segments)
        return out

    # -------------------------------------------------------- records

    def latency_records(self, horizon_ps: int, with_ops: bool = False
                        ) -> List[tuple]:
        """Per-command latency records in kernel delivery order.

        Each entry is ``(record_time_ps, fifo_cycles, execution_cycles,
        data_cycles, end_to_end_cycles)`` -- exactly what the kernel
        path's ``_finalize`` process feeds ``record_parts``, in the
        order those processes resume.  With ``with_ops`` each entry
        additionally carries the :class:`CommandType` as a sixth field
        (the telemetry replay keys histograms by it).  Records are
        delivered when the data transfer completes (data commands) or
        at end of execution (pointer-only and policy-dropped commands);
        the kernel's within-timestamp FIFO contract puts a completion
        resume (pushed at issue time) ahead of a finalize spawned in
        that timestamp, which is the ``tie`` sort key below;
        ``stream_supports`` rules out configurations where the two
        grids could otherwise collide.
        """
        period = self.clock.period_ps
        opinfo = self._opinfo
        entries = []
        for cmd in self._done:
            req = cmd[C_REQ]
            end_ps = cmd[C_END]
            if req is None:
                record_time = end_ps
                data_done = end_ps
                data_cycles = 0.0
                tie = 1
            else:
                complete = req[R_COMPLETE]
                if complete < 0:
                    continue  # never issued inside the horizon
                record_time = complete
                data_done = complete
                data_cycles = (complete - req[R_SUBMIT]) / period
                tie = 0
            if record_time > horizon_ps:
                continue
            submit = cmd[C_SUBMIT]
            fifo_cycles = (cmd[C_START] - submit) / period if submit >= 0 \
                else 0.0
            base = submit if submit >= 0 else cmd[C_START]
            completion = end_ps if end_ps > data_done else data_done
            entries.append((record_time, tie,
                            fifo_cycles, opinfo[cmd[C_OP]][2], data_cycles,
                            (completion - base) / period, cmd[C_OP]))
        entries.sort(key=lambda e: (e[0], e[1]))
        if with_ops:
            return [(e[0], e[2], e[3], e[4], e[5], e[6]) for e in entries]
        return [(e[0], e[2], e[3], e[4], e[5]) for e in entries]

    def stage_records(self, horizon_ps: int) -> List[tuple]:
        """Per-command lifecycle stage bounds in kernel delivery order.

        Each entry is ``(record_time_ps, seq, op, flow, submit_ps,
        start_ps, end_ps, data_submit_ps, data_done_ps)`` -- exactly
        what the kernel path's traced finalize feeds ``on_stages``, in
        the order those processes resume.  ``seq`` is the dispatch
        index: the DQM is serial, so completion (append) order in
        ``_done`` *is* dispatch order, shared with the kernel's
        ``commands_executed`` stamp.  Delivery instants and skip rules
        mirror :meth:`latency_records` record for record; the data
        bounds are -1 for commands that never reached the DMC.
        """
        entries = []
        for seq, cmd in enumerate(self._done):
            req = cmd[C_REQ]
            end_ps = cmd[C_END]
            if req is None:
                record_time = end_ps
                data_submit = -1
                data_done = -1
                tie = 1
            else:
                complete = req[R_COMPLETE]
                if complete < 0:
                    continue  # never issued inside the horizon
                record_time = complete
                data_submit = req[R_SUBMIT]
                data_done = complete
                tie = 0
            if record_time > horizon_ps:
                continue
            entries.append((record_time, tie, seq, cmd[C_OP], cmd[C_FLOW],
                            cmd[C_SUBMIT], cmd[C_START], end_ps,
                            data_submit, data_done))
        entries.sort(key=lambda e: (e[0], e[1]))
        return [(e[0], e[2], e[3], e[4], e[5], e[6], e[7], e[8], e[9])
                for e in entries]
