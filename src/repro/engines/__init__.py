"""``repro.engines``: DES-free batched execution of MMS command streams.

The simulator stack has had two batched fast paths for a while -- the
calendar-queue DES kernel (:mod:`repro.sim.kernel`) and the DDR bank
model (:mod:`repro.mem.fastpath`).  This package adds the third and
largest: :class:`StreamMms`, a command-stream machine that replays the
MMS/DQM workloads (Table 5, the saturation headline, the overload
family) without a discrete-event kernel while staying trace-identical
to it -- same per-command access records, same drop/accept counters,
same picosecond totals.

Selection is the existing uniform knob: ``engine="fast"`` on
:func:`repro.core.mms.run_load`, :func:`repro.core.mms.run_saturation`
and :func:`repro.policies.harness.run_overload` routes here whenever
:func:`stream_supports` claims the configuration, and falls back to the
calendar-queue kernel otherwise (e.g. the per-port FIFO backpressure
ablation).  ``engine="reference"`` always runs the heapq ordering spec.
Nothing upstream -- ``Runner``, the CLI, sweeps, benchmarks -- changes.
"""

from repro.engines.harnesses import (
    stream_run_load,
    stream_run_overload,
    stream_run_saturation,
)
from repro.engines.stream import StreamMms, stream_supports

__all__ = [
    "StreamMms",
    "stream_run_load",
    "stream_run_overload",
    "stream_run_saturation",
    "stream_supports",
]
