"""Batched replays of the published MMS workloads.

Each function here is the :class:`~repro.engines.stream.StreamMms`
counterpart of a kernel-backed harness -- :func:`repro.core.mms.run_load`
(Table 5), :func:`repro.core.mms.run_saturation` (the headline claim)
and :func:`repro.policies.harness.run_overload` (the overload family).
The workload definition is shared (:mod:`repro.core.workloads`), the
machine replays it kernel-free, and the result objects are assembled
with the very arithmetic the kernel harnesses use -- including the
Table 5 warm-up window's record-order semantics -- so the returned
values are *equal*, not approximately equal (asserted by
``tests/engines/``).

These entry points are not called directly by experiment code: the
kernel harnesses route ``engine="fast"`` here whenever
:func:`~repro.engines.stream.stream_supports` claims the configuration.
"""

from __future__ import annotations

from repro.core.latency import LatencyBreakdown
from repro.core.mms import BITS_PER_OP, MmsConfig, MmsLoadResult
from repro.core.workloads import (
    LOAD_LAG_VOLLEYS,
    load_feed_ops,
    overload_drain_ops,
    overload_feed_ops,
    saturation_feed_ops,
)
from repro.engines.stream import StreamMms
from repro.policies.harness import OverloadResult
from repro.sim.clock import SEC


def _feed_probe(records: list, probe) -> None:
    """Feed the probe's ``on_record`` channel from a ``with_ops``
    record list, in kernel delivery order.

    The kernel path emits ``on_record`` live from its probed finalize
    processes; the stream machine replays the identical record stream
    (same values, same delivery order -- the fuzz suite's contract)
    after the run, so the folded telemetry is byte-identical.
    """
    on_record = probe.on_record
    for time_ps, fifo_c, exec_c, data_c, e2e_c, op in records:
        on_record(time_ps, op, fifo_c, exec_c, data_c, e2e_c)


def _records(eng: StreamMms, probe, horizon: int) -> list:
    """The run's ``with_ops`` latency records for the breakdown
    replay (built once; fed to the probe when one is set)."""
    records = eng.latency_records(horizon, with_ops=True)
    if probe is not None:
        _feed_probe(records, probe)
    return records


def stream_run_load(offered_gbps: float, *, num_volleys: int,
                    config: MmsConfig, active_flows: int,
                    warmup_volleys: int, burst_len: int, burst_prob: float,
                    seed: int, probe=None) -> MmsLoadResult:
    """Table 5 at one offered load, on the command-stream machine."""
    eng = StreamMms(config, probe=probe)
    eng.prefill(range(active_flows),
                packets_per_flow=(2 * LOAD_LAG_VOLLEYS) // active_flows + 4)
    volley_period_ps = round(4 * BITS_PER_OP / offered_gbps * 1000)

    def now() -> int:
        return eng.now

    for port, (enqueue, phase) in enumerate(((True, 0), (False, 0),
                                             (True, 1), (False, 1))):
        eng.add_feeder(port, load_feed_ops(
            now, port, enqueue, phase, num_volleys, volley_period_ps,
            active_flows, burst_len, burst_prob, seed))

    horizon = (num_volleys + 64) * volley_period_ps + 10 * SEC // 1000
    eng.run(horizon)

    # Replay the records through the exact warm-up windowing of
    # run_load's recording hook: every record advances the full-run
    # breakdown and the last-seen timestamp; the warm recorder starts
    # after warmup_volleys * 4 records.
    breakdown = LatencyBreakdown(eng.clock, keep_samples=config.keep_samples)
    warm = LatencyBreakdown(eng.clock, keep_samples=config.keep_samples)
    t0 = None
    t_last = 0
    boundary = warmup_volleys * 4
    for time_ps, fifo_c, exec_c, data_c, e2e_c, _op in \
            _records(eng, probe, horizon):
        breakdown.record_parts(fifo_c, exec_c, data_c, e2e_c)
        t_last = time_ps
        if breakdown.count == boundary:
            t0 = time_ps
        if t0 is not None and breakdown.count > boundary:
            warm.record_parts(fifo_c, exec_c, data_c, e2e_c)

    elapsed = t_last - (t0 or 0)
    use = warm if warm.count else breakdown
    row = use.row()
    return MmsLoadResult(
        offered_gbps=offered_gbps,
        completed_ops=use.count,
        elapsed_ps=elapsed,
        fifo_cycles=row["fifo"],
        execution_cycles=row["execution"],
        data_cycles=row["data"],
        end_to_end_cycles=use.end_to_end.mean,
        engine="fast",
    )


def stream_run_saturation(*, num_commands: int, config: MmsConfig,
                          active_flows: int, probe=None) -> MmsLoadResult:
    """The headline saturation experiment, on the command-stream
    machine."""
    eng = StreamMms(config, probe=probe)
    per_port = num_commands // 4
    eng.prefill(range(active_flows),
                packets_per_flow=per_port * 2 // active_flows + 2)
    for port, (enqueue, phase) in enumerate(((True, 0), (False, 0),
                                             (True, 1), (False, 1))):
        eng.add_feeder(port,
                       saturation_feed_ops(enqueue, phase, per_port,
                                           active_flows))
    horizon = 60 * SEC
    eng.run(horizon)

    breakdown = LatencyBreakdown(eng.clock, keep_samples=config.keep_samples)
    for _time_ps, fifo_c, exec_c, data_c, e2e_c, _op in \
            _records(eng, probe, horizon):
        breakdown.record_parts(fifo_c, exec_c, data_c, e2e_c)
    row = breakdown.row()
    # the DQM runs back-to-back under saturation (see
    # core.mms._last_execution_ps)
    elapsed = round(eng.commands_executed
                    * breakdown.execution.mean
                    * eng.clock.period_ps)
    return MmsLoadResult(
        offered_gbps=float("inf"),
        completed_ops=breakdown.count,
        elapsed_ps=elapsed,
        fifo_cycles=row["fifo"],
        execution_cycles=row["execution"],
        data_cycles=row["data"],
        end_to_end_cycles=breakdown.end_to_end.mean,
        engine="fast",
    )


def stream_run_overload(cfg: MmsConfig, shape: str, *, num_arrivals: int,
                        active_flows: int,
                        engine_label: str = "fast",
                        probe=None) -> OverloadResult:
    """One overload experiment, on the command-stream machine.

    ``cfg`` is the already-resolved build (policy spec, seed and record
    retention folded in by :func:`repro.policies.harness.run_overload`,
    which owns the argument validation and routes here).
    """
    eng = StreamMms(cfg, probe=probe)
    pol = eng.policy

    service_ps = round(10.5 * eng.clock.period_ps)
    drain_period = 2 * service_ps
    enq_period = 3 * drain_period // 4

    per_port = num_arrivals // 3
    counters = {"dequeued": 0}
    for port in range(3):
        eng.add_feeder(port, overload_feed_ops(shape, port, per_port,
                                               active_flows, enq_period,
                                               counters))
    eng.add_feeder(3, overload_drain_ops(eng.pqm.queued_packets,
                                         active_flows, drain_period,
                                         counters))

    horizon = (num_arrivals * 16 * enq_period
               + cfg.num_segments * 4 * drain_period
               + SEC // 1000)
    eng.run(horizon)
    if probe is not None:
        # replay only: the overload result wants counters, not records
        _feed_probe(eng.latency_records(horizon, with_ops=True), probe)

    stats = pol.stats
    return OverloadResult(
        policy=cfg.policy.name,
        shape=shape,
        offered_segments=stats.offered_segments,
        offered_bytes=stats.offered_bytes,
        accepted_segments=stats.accepted_segments,
        accepted_bytes=stats.accepted_bytes,
        dropped_segments=stats.dropped_segments,
        dropped_bytes=stats.dropped_bytes,
        pushed_out_segments=stats.pushed_out_segments,
        pushed_out_bytes=stats.pushed_out_bytes,
        dequeued_segments=counters["dequeued"],
        residual_segments=pol.total_segments,
        capacity_segments=cfg.num_segments,
        elapsed_ps=eng.now,
        engine=engine_label,
    )
