"""Batched replays of the published MMS workloads.

Each function here is the :class:`~repro.engines.stream.StreamMms`
counterpart of a kernel-backed harness -- :func:`repro.core.mms.run_load`
(Table 5), :func:`repro.core.mms.run_saturation` (the headline claim)
and :func:`repro.policies.harness.run_overload` (the overload family).
The workload definition is shared (:mod:`repro.core.workloads`), the
machine replays it kernel-free, and the result objects are assembled
with the very arithmetic the kernel harnesses use -- including the
Table 5 warm-up window's record-order semantics -- so the returned
values are *equal*, not approximately equal (asserted by
``tests/engines/``).

The pacing and result-assembly arithmetic is factored into module
functions (``load_volley_period_ps``, ``assemble_overload_result``,
...) with the run loops kept thin on top: the checkpoint-aware drivers
(:mod:`repro.checkpoint.runs`) call the *same* functions, which is what
makes a resumed run's result structurally identical to an unbroken
harness run rather than re-implemented-and-hopefully-equal.

These entry points are not called directly by experiment code: the
kernel harnesses route ``engine="fast"`` here whenever
:func:`~repro.engines.stream.stream_supports` claims the configuration.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.latency import LatencyBreakdown
from repro.core.mms import BITS_PER_OP, MmsConfig, MmsLoadResult
from repro.core.workloads import (
    LOAD_LAG_VOLLEYS,
    load_feed_ops,
    overload_drain_ops,
    overload_feed_ops,
    saturation_feed_ops,
)
from repro.engines.stream import StreamMms
from repro.policies.harness import OverloadResult
from repro.sim.clock import Clock, SEC

#: Saturation harness horizon (far beyond any drain time).
SATURATION_HORIZON_PS = 60 * SEC


def _feed_probe(records: list, probe) -> None:
    """Feed the probe's ``on_record`` channel from a ``with_ops``
    record list, in kernel delivery order.

    The kernel path emits ``on_record`` live from its probed finalize
    processes; the stream machine replays the identical record stream
    (same values, same delivery order -- the fuzz suite's contract)
    after the run, so the folded telemetry is byte-identical.
    """
    on_record = probe.on_record
    for time_ps, fifo_c, exec_c, data_c, e2e_c, op in records:
        on_record(time_ps, op, fifo_c, exec_c, data_c, e2e_c)


def _feed_stages(eng: StreamMms, probe, horizon: int) -> None:
    """Replay the run's stage records into the probe's ``on_stages``
    channel, in kernel delivery order.

    Runs after the ``on_record`` replay -- the two channels carry no
    ordering contract between each other (the probe docstring's
    per-channel independence rule), so replaying them back to back is
    byte-equivalent to the kernel's interleaved live emission."""
    on_stages = probe.on_stages
    for time_ps, seq, op, flow, submit, start, end, dsub, ddone in \
            eng.stage_records(horizon):
        on_stages(time_ps, seq, op, flow, submit, start, end, dsub, ddone)


def _records(eng: StreamMms, probe, horizon: int) -> list:
    """The run's ``with_ops`` latency records for the breakdown
    replay (built once; fed to the probe when one is set)."""
    records = eng.latency_records(horizon, with_ops=True)
    if probe is not None:
        _feed_probe(records, probe)
        if getattr(probe, "wants_stages", False):
            _feed_stages(eng, probe, horizon)
    return records


# ================================================== Table 5 load pacing

def load_volley_period_ps(offered_gbps: float) -> int:
    """Volley pacing of the Table 5 harness at one offered load."""
    return round(4 * BITS_PER_OP / offered_gbps * 1000)


def load_prefill_packets(active_flows: int) -> int:
    """Per-flow prefill depth of the Table 5 harness."""
    return (2 * LOAD_LAG_VOLLEYS) // active_flows + 4


def load_horizon_ps(num_volleys: int, volley_period_ps: int) -> int:
    """Run horizon of the Table 5 harness."""
    return (num_volleys + 64) * volley_period_ps + 10 * SEC // 1000


def assemble_load_result(eng: StreamMms, probe, horizon: int,
                         config: MmsConfig, warmup_volleys: int,
                         offered_gbps: float) -> MmsLoadResult:
    """Replay the finished run's records through the exact warm-up
    windowing of ``run_load``'s recording hook: every record advances
    the full-run breakdown and the last-seen timestamp; the warm
    recorder starts after ``warmup_volleys * 4`` records."""
    breakdown = LatencyBreakdown(eng.clock, keep_samples=config.keep_samples)
    warm = LatencyBreakdown(eng.clock, keep_samples=config.keep_samples)
    t0 = None
    t_last = 0
    boundary = warmup_volleys * 4
    for time_ps, fifo_c, exec_c, data_c, e2e_c, _op in \
            _records(eng, probe, horizon):
        breakdown.record_parts(fifo_c, exec_c, data_c, e2e_c)
        t_last = time_ps
        if breakdown.count == boundary:
            t0 = time_ps
        if t0 is not None and breakdown.count > boundary:
            warm.record_parts(fifo_c, exec_c, data_c, e2e_c)

    elapsed = t_last - (t0 or 0)
    use = warm if warm.count else breakdown
    row = use.row()
    return MmsLoadResult(
        offered_gbps=offered_gbps,
        completed_ops=use.count,
        elapsed_ps=elapsed,
        fifo_cycles=row["fifo"],
        execution_cycles=row["execution"],
        data_cycles=row["data"],
        end_to_end_cycles=use.end_to_end.mean,
        engine="fast",
    )


def stream_run_load(offered_gbps: float, *, num_volleys: int,
                    config: MmsConfig, active_flows: int,
                    warmup_volleys: int, burst_len: int, burst_prob: float,
                    seed: int, probe=None) -> MmsLoadResult:
    """Table 5 at one offered load, on the command-stream machine."""
    eng = StreamMms(config, probe=probe)
    eng.prefill(range(active_flows),
                packets_per_flow=load_prefill_packets(active_flows))
    volley_period_ps = load_volley_period_ps(offered_gbps)

    def now() -> int:
        return eng.now

    for port, (enqueue, phase) in enumerate(((True, 0), (False, 0),
                                             (True, 1), (False, 1))):
        eng.add_feeder(port, load_feed_ops(
            now, port, enqueue, phase, num_volleys, volley_period_ps,
            active_flows, burst_len, burst_prob, seed))

    horizon = load_horizon_ps(num_volleys, volley_period_ps)
    eng.run(horizon)
    return assemble_load_result(eng, probe, horizon, config,
                                warmup_volleys, offered_gbps)


# ================================================== saturation pacing

def saturation_prefill_packets(per_port: int, active_flows: int) -> int:
    """Per-flow prefill depth of the saturation harness."""
    return per_port * 2 // active_flows + 2


def assemble_saturation_result(eng: StreamMms, probe, horizon: int,
                               config: MmsConfig) -> MmsLoadResult:
    breakdown = LatencyBreakdown(eng.clock, keep_samples=config.keep_samples)
    for _time_ps, fifo_c, exec_c, data_c, e2e_c, _op in \
            _records(eng, probe, horizon):
        breakdown.record_parts(fifo_c, exec_c, data_c, e2e_c)
    row = breakdown.row()
    # the DQM runs back-to-back under saturation (see
    # core.mms._last_execution_ps)
    elapsed = round(eng.commands_executed
                    * breakdown.execution.mean
                    * eng.clock.period_ps)
    return MmsLoadResult(
        offered_gbps=float("inf"),
        completed_ops=breakdown.count,
        elapsed_ps=elapsed,
        fifo_cycles=row["fifo"],
        execution_cycles=row["execution"],
        data_cycles=row["data"],
        end_to_end_cycles=breakdown.end_to_end.mean,
        engine="fast",
    )


def stream_run_saturation(*, num_commands: int, config: MmsConfig,
                          active_flows: int, probe=None) -> MmsLoadResult:
    """The headline saturation experiment, on the command-stream
    machine."""
    eng = StreamMms(config, probe=probe)
    per_port = num_commands // 4
    eng.prefill(range(active_flows),
                packets_per_flow=saturation_prefill_packets(per_port,
                                                            active_flows))
    for port, (enqueue, phase) in enumerate(((True, 0), (False, 0),
                                             (True, 1), (False, 1))):
        eng.add_feeder(port,
                       saturation_feed_ops(enqueue, phase, per_port,
                                           active_flows))
    horizon = SATURATION_HORIZON_PS
    eng.run(horizon)
    return assemble_saturation_result(eng, probe, horizon, config)


# ==================================================== overload pacing

def overload_pacing_ps(clock: Clock) -> Tuple[int, int]:
    """``(drain_period_ps, enq_period_ps)`` of the overload harness:
    the DQM serves one command per ~10.5 cycles, the drain dequeues at
    twice that interval, and the three enqueue ports together offer
    four segments per drain slot -- 2x oversubscription."""
    service_ps = round(10.5 * clock.period_ps)
    drain_period = 2 * service_ps
    return drain_period, 3 * drain_period // 4


def overload_horizon_ps(num_arrivals: int, enq_period_ps: int,
                        num_segments: int, drain_period_ps: int) -> int:
    """Run horizon of the overload harness."""
    return (num_arrivals * 16 * enq_period_ps
            + num_segments * 4 * drain_period_ps
            + SEC // 1000)


def assemble_overload_result(eng: StreamMms, cfg: MmsConfig, shape: str,
                             counters: Dict[str, int], horizon: int,
                             probe=None,
                             engine_label: str = "fast") -> OverloadResult:
    if probe is not None:
        # replay only: the overload result wants counters, not records
        _feed_probe(eng.latency_records(horizon, with_ops=True), probe)
        if getattr(probe, "wants_stages", False):
            _feed_stages(eng, probe, horizon)
    stats = eng.policy.stats
    return OverloadResult(
        policy=cfg.policy.name,
        shape=shape,
        offered_segments=stats.offered_segments,
        offered_bytes=stats.offered_bytes,
        accepted_segments=stats.accepted_segments,
        accepted_bytes=stats.accepted_bytes,
        dropped_segments=stats.dropped_segments,
        dropped_bytes=stats.dropped_bytes,
        pushed_out_segments=stats.pushed_out_segments,
        pushed_out_bytes=stats.pushed_out_bytes,
        dequeued_segments=counters["dequeued"],
        residual_segments=eng.policy.total_segments,
        capacity_segments=cfg.num_segments,
        elapsed_ps=eng.now,
        engine=engine_label,
    )


def stream_run_overload(cfg: MmsConfig, shape: str, *, num_arrivals: int,
                        active_flows: int,
                        engine_label: str = "fast",
                        probe=None) -> OverloadResult:
    """One overload experiment, on the command-stream machine.

    ``cfg`` is the already-resolved build (policy spec, seed and record
    retention folded in by :func:`repro.policies.harness.run_overload`,
    which owns the argument validation and routes here).
    """
    eng = StreamMms(cfg, probe=probe)

    drain_period, enq_period = overload_pacing_ps(eng.clock)
    per_port = num_arrivals // 3
    counters = {"dequeued": 0}
    for port in range(3):
        eng.add_feeder(port, overload_feed_ops(shape, port, per_port,
                                               active_flows, enq_period,
                                               counters))
    eng.add_feeder(3, overload_drain_ops(eng.pqm.queued_packets,
                                         active_flows, drain_period,
                                         counters))

    horizon = overload_horizon_ps(num_arrivals, enq_period,
                                  cfg.num_segments, drain_period)
    eng.run(horizon)
    return assemble_overload_result(eng, cfg, shape, counters, horizon,
                                    probe=probe, engine_label=engine_label)
