"""Memory subsystem models (paper Section 3).

The paper's DRAM analysis rests on four timing facts (its footnotes 1-2):

* a new 64-byte read/write access can be inserted every *access cycle* of
  40 ns (4 cycles of the 100 MHz DDR command clock),
* a bank that has been accessed is busy for 160 ns (4 access cycles),
* read data returns after 60 ns, writes complete after 40 ns,
* a write issued immediately after a read must be delayed one extra
  access cycle (data-bus turnaround).

:mod:`repro.mem.ddr` implements exactly that state machine;
:mod:`repro.mem.sched` implements the two front-end schedulers compared
in Table 1 (round-robin serializing vs reordering with per-port FIFOs and
last-3-access history); :mod:`repro.mem.patterns` generates the random
bank access patterns of the evaluation; :mod:`repro.mem.sram` models the
ZBT SRAM pointer memory; :mod:`repro.mem.controller` wraps the raw models
behind the DES kernel for use inside the platform models;
:mod:`repro.mem.fastpath` is the batched bank-state engine behind
``simulate_throughput_loss(engine="fast")`` -- bit-identical to the
reference drivers, an order of magnitude fewer Python operations.
"""

from repro.mem.timing import DDR_64B_ACCESS_BYTES, DdrTiming, ZbtTiming
from repro.mem.ddr import Access, DdrModel, MemOp
from repro.mem.sram import ZbtSram
from repro.mem.patterns import (
    AccessPattern,
    hotspot_pattern,
    sequential_pattern,
    uniform_random_pattern,
)
from repro.mem.sched import (
    PortSpec,
    ScheduleResult,
    simulate_throughput_loss,
    run_reordering,
    run_serializing,
)
from repro.mem.fastpath import (
    fast_reordering,
    fast_serializing,
    fast_throughput_loss,
)
from repro.mem.controller import DdrController, MemRequest, SramController

__all__ = [
    "DdrTiming",
    "ZbtTiming",
    "DDR_64B_ACCESS_BYTES",
    "MemOp",
    "Access",
    "DdrModel",
    "ZbtSram",
    "AccessPattern",
    "uniform_random_pattern",
    "sequential_pattern",
    "hotspot_pattern",
    "PortSpec",
    "ScheduleResult",
    "run_serializing",
    "run_reordering",
    "simulate_throughput_loss",
    "fast_serializing",
    "fast_reordering",
    "fast_throughput_loss",
    "DdrController",
    "SramController",
    "MemRequest",
]
