"""DES-integrated memory controllers.

The raw models in :mod:`repro.mem.ddr` and :mod:`repro.mem.sram` are
passive timing/state machines.  The platform models (reference NPU, MMS)
need *controllers*: blocks that queue requests from concurrent processes,
issue them respecting the device timing, and signal completion.  These
run as kernel processes and expose per-request latency decomposition,
which the Table 5 experiment reports as "data delay".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mem.ddr import Access, DdrModel, MemOp
from repro.mem.timing import DdrTiming
from repro.sim import Clock, LatencyRecorder, NS, Simulator
from repro.sim.kernel import Event


@dataclass
class MemRequest:
    """A queued memory request and its life-cycle timestamps."""

    op: MemOp
    bank: int
    tag: int = 0
    submit_ps: int = 0
    issue_ps: int = 0
    complete_ps: int = 0

    @property
    def queue_wait_ps(self) -> int:
        return self.issue_ps - self.submit_ps

    @property
    def service_ps(self) -> int:
        return self.complete_ps - self.issue_ps

    @property
    def total_ps(self) -> int:
        return self.complete_ps - self.submit_ps


class DdrController:
    """Request-queued DDR controller with optional bank-aware reordering.

    Parameters
    ----------
    sim:
        Owning simulator.
    num_banks:
        Banks on the attached device.
    timing:
        DDR timing (paper defaults).
    reorder_window:
        How many queued requests the issue stage may look past the head
        to find one whose bank is idle.  ``1`` = strict FIFO.  The MMS
        DMC "issues interleaved commands so as to minimize bank
        conflicts", i.e. a window > 1.
    pipeline_overhead_ns:
        Fixed controller/datapath pipeline latency added to every
        request's service time (command decode, clock-domain crossing,
        burst framing).  Calibrated per platform.
    """

    def __init__(self, sim: Simulator, num_banks: int = 8,
                 timing: DdrTiming = DdrTiming(),
                 reorder_window: int = 4,
                 pipeline_overhead_ns: int = 0,
                 name: str = "ddr") -> None:
        if reorder_window < 1:
            raise ValueError(f"reorder_window must be >= 1, got {reorder_window}")
        self.sim = sim
        self.name = name
        self.timing = timing
        self.model = DdrModel(timing=timing, num_banks=num_banks,
                              model_rw_turnaround=True)
        self.reorder_window = reorder_window
        self.pipeline_overhead_ps = pipeline_overhead_ns * NS
        # Completion delay is a pure function of the op; precompute both
        # directions instead of re-deriving them per request.
        self._complete_delay_ps = {
            MemOp.READ: timing.read_delay_ns * NS + self.pipeline_overhead_ps,
            MemOp.WRITE: timing.write_delay_ns * NS + self.pipeline_overhead_ps,
        }
        self._queue: List[tuple[MemRequest, Event]] = []
        self._kick: Optional[Event] = None
        self.queue_wait = LatencyRecorder(f"{name}.queue_wait")
        self.service = LatencyRecorder(f"{name}.service")
        self.completed = 0
        self._proc = sim.spawn(self._serve(), name=f"{name}.serve")

    # ------------------------------------------------------------- client

    def submit(self, op: MemOp, bank: int, tag: int = 0) -> Event:
        """Queue a 64-byte access; the returned event triggers with the
        finished :class:`MemRequest` when data transfer completes."""
        if not 0 <= bank < self.model.num_banks:
            raise ValueError(
                f"bank {bank} out of range [0, {self.model.num_banks})"
            )
        req = MemRequest(op=op, bank=bank, tag=tag, submit_ps=self.sim.now)
        done = self.sim.event(name=f"{self.name}.done")
        self._queue.append((req, done))
        if self._kick is not None and not self._kick.triggered:
            self._kick.trigger()
        return done

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------- server

    def _serve(self):
        """Issue stage: one access per 40 ns access cycle; completions
        (device delay + controller pipeline) run asynchronously so that
        issues pipeline behind in-flight data, as the device allows."""
        access_cycle_ps = self.timing.access_cycle_ns * NS
        while True:
            if not self._queue:
                self._kick = self.sim.event(name=f"{self.name}.kick")
                yield self._kick
                self._kick = None
            # Align to the next access-cycle boundary.
            rem = self.sim.now % access_cycle_ps
            if rem:
                yield access_cycle_ps - rem
            slot = self.sim.now // access_cycle_ps

            idx = self._pick(slot)
            req, done = self._queue.pop(idx)
            access = Access(op=req.op, bank=req.bank, tag=req.tag)
            issue_slot = self.model.earliest_issue_slot(access, slot)
            if issue_slot > slot:
                yield (issue_slot - slot) * access_cycle_ps
            req.issue_ps = self.sim.now
            self.model.issue(access, issue_slot)
            # Data valid after the device delay plus the fixed controller
            # pipeline; the issue stage only holds the access cycle.
            delay_ps = self._complete_delay_ps[req.op]
            self.sim.spawn(self._complete(req, done, delay_ps),
                           name=f"{self.name}.data")
            yield access_cycle_ps

    def _complete(self, req: MemRequest, done: Event, delay_ps: int):
        yield delay_ps
        req.complete_ps = self.sim.now
        self.queue_wait.record(req.queue_wait_ps)
        self.service.record(req.service_ps)
        self.completed += 1
        done.trigger(req)

    def _pick(self, slot: int) -> int:
        """Index of the request to issue next (bank-aware within window)."""
        window = min(self.reorder_window, len(self._queue))
        for i in range(window):
            req, _done = self._queue[i]
            if not self.model.bank_busy_at(req.bank, slot):
                return i
        return 0


class SramController:
    """Pipelined ZBT SRAM port as a DES resource.

    One access per clock cycle, fixed read latency, no turnaround: a
    request stream of N accesses completes in ``N + read_latency``
    cycles.  Concurrent clients are serialized in submit order.
    """

    def __init__(self, sim: Simulator, clock: Clock,
                 read_latency_cycles: int = 2,
                 name: str = "zbt") -> None:
        if read_latency_cycles < 0:
            raise ValueError("read_latency_cycles must be >= 0")
        self.sim = sim
        self.clock = clock
        self.read_latency_cycles = read_latency_cycles
        self.name = name
        self._next_free_ps = 0
        self.accesses = 0

    def access(self, is_read: bool = True):
        """Blocking single-word access; generator for ``yield from``.

        Returns the completion time.  Writes are posted (complete at the
        slot); reads complete ``read_latency_cycles`` later.
        """
        period = self.clock.period_ps
        start = max(self.sim.now, self._next_free_ps)
        start = self.clock.next_edge(start)
        self._next_free_ps = start + period
        self.accesses += 1
        latency = self.read_latency_cycles * period if is_read else period
        finish = start + latency
        if finish > self.sim.now:
            yield finish - self.sim.now
        return finish

    def burst(self, num_accesses: int, reads: int = 0):
        """Blocking pipelined burst of ``num_accesses`` accesses.

        The burst occupies one slot per access; the result is available
        after the last access plus the read latency when the burst ends
        in reads.
        """
        if num_accesses <= 0:
            return self.sim.now
        period = self.clock.period_ps
        start = max(self.sim.now, self._next_free_ps)
        start = self.clock.next_edge(start)
        self._next_free_ps = start + num_accesses * period
        self.accesses += num_accesses
        tail = self.read_latency_cycles * period if reads else 0
        finish = start + num_accesses * period + tail
        if finish > self.sim.now:
            yield finish - self.sim.now
        return finish
