"""Access-pattern generators for the memory experiments.

The paper simulates "random bank access patterns ... as a realistic
common case for typical network applications incorporating a large number
of simultaneously active queues".  :func:`uniform_random_pattern` is that
case; :func:`sequential_pattern` and :func:`hotspot_pattern` exist for
the sensitivity ablations (a small number of hot queues concentrates
accesses on few banks and worsens conflicts).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.mem.ddr import Access, MemOp

#: A pattern is an infinite iterator of :class:`Access` for one port.
AccessPattern = Iterator[Access]


def uniform_random_pattern(rng: random.Random, num_banks: int, op: MemOp,
                           port: int = 0) -> AccessPattern:
    """Backlogged port issuing ``op`` accesses to uniformly random banks."""
    if num_banks < 1:
        raise ValueError(f"num_banks must be >= 1, got {num_banks}")
    tag = 0
    while True:
        yield Access(op=op, bank=rng.randrange(num_banks), port=port, tag=tag)
        tag += 1

def sequential_pattern(num_banks: int, op: MemOp, port: int = 0,
                       stride: int = 1) -> AccessPattern:
    """Backlogged port striding across banks (perfect interleaving).

    With ``stride`` coprime to ``num_banks`` and enough banks this incurs
    no conflicts at all -- the best case the reordering scheduler is
    trying to approximate.
    """
    if num_banks < 1:
        raise ValueError(f"num_banks must be >= 1, got {num_banks}")
    bank = 0
    tag = 0
    while True:
        yield Access(op=op, bank=bank, port=port, tag=tag)
        bank = (bank + stride) % num_banks
        tag += 1

def hotspot_pattern(rng: random.Random, num_banks: int, op: MemOp,
                    port: int = 0, hot_banks: Sequence[int] = (0,),
                    hot_fraction: float = 0.8) -> AccessPattern:
    """Backlogged port hitting a small set of hot banks most of the time.

    Models a workload dominated by a few very active queues whose buffers
    happen to live in the same banks.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0,1], got {hot_fraction}")
    if not hot_banks:
        raise ValueError("hot_banks must be non-empty")
    for b in hot_banks:
        if not 0 <= b < num_banks:
            raise ValueError(f"hot bank {b} out of range [0, {num_banks})")
    tag = 0
    while True:
        if rng.random() < hot_fraction:
            bank = hot_banks[rng.randrange(len(hot_banks))]
        else:
            bank = rng.randrange(num_banks)
        yield Access(op=op, bank=bank, port=port, tag=tag)
        tag += 1

def paper_port_patterns(rng: random.Random, num_banks: int) -> list[AccessPattern]:
    """The paper's 4-port configuration (Section 3, footnote 3).

    "A write and a read port from/to the network, a write and a read port
    from/to an internal processing unit", each backlogged with uniform
    random bank targets.
    """
    return [
        uniform_random_pattern(rng, num_banks, MemOp.WRITE, port=0),  # net in
        uniform_random_pattern(rng, num_banks, MemOp.READ, port=1),   # net out
        uniform_random_pattern(rng, num_banks, MemOp.WRITE, port=2),  # cpu wr
        uniform_random_pattern(rng, num_banks, MemOp.READ, port=3),   # cpu rd
    ]
