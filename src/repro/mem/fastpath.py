"""Batched fast-path engine for the Table 1 DDR experiments.

The reference drivers in :mod:`repro.mem.sched` walk one
:class:`~repro.mem.ddr.Access` dataclass at a time through
:class:`~repro.mem.ddr.DdrModel` method calls and per-port generator
patterns.  That is the right shape for composability, but Table 1 runs
hundreds of thousands of accesses per cell, and at that volume the
allocation and call overhead dominates the arithmetic.

This module advances the *entire* bank state machine per scheduling
decision in plain local-variable loops: bank release slots live in one
list, the reordering scheduler's bounded issue history in a short list
of ``(bank, slot)`` pairs, and the uniform random bank draws come
straight from ``Random._randbelow`` -- the exact primitive
``Random.randrange(n)`` resolves to, so the consumed bit stream (and
hence every simulated value) is identical to the generator-based
patterns.  No ``Access`` objects, no DES processes, no per-access method
dispatch.

Equivalence is not aspirational: ``tests/mem/test_fastpath.py`` asserts
field-for-field equal :class:`~repro.mem.sched.ScheduleResult` outputs
against the reference engine across bank counts, seeds, history depths
and both ablation flags, and the benchmark harness re-checks the Table 1
values whenever it records a speedup.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.mem.timing import DdrTiming

# Imported late by repro.mem.sched to avoid a cycle; ScheduleResult is
# the shared result type.
from repro.mem import sched as _sched

#: Port operation layout of the paper's 4-port set-up (Section 3,
#: footnote 3): net-write, net-read, cpu-write, cpu-read.
_PAPER_PORT_IS_WRITE: Tuple[bool, ...] = (True, False, True, False)


def fast_serializing(num_banks: int, num_accesses: int,
                     rng: random.Random,
                     timing: DdrTiming = DdrTiming(),
                     model_rw_turnaround: bool = True) -> "_sched.ScheduleResult":
    """Batched round-robin serializing scheduler (reference:
    :func:`repro.mem.sched.run_serializing` over the paper's patterns)."""
    randbelow = rng._randbelow  # identical bit stream to randrange(n)
    busy = timing.bank_busy_cycles
    war = timing.write_after_read_penalty_cycles
    is_write = _PAPER_PORT_IS_WRITE
    nports = len(is_write)
    bank_free = [0] * num_banks
    per_port = [0] * nports
    bank_stalls = 0
    turnaround_stalls = 0
    next_free = 0
    last_slot = -1
    last_was_read = False
    for i in range(num_accesses):
        write = is_write[i % nports]
        bank = randbelow(num_banks)
        bf = bank_free[bank]
        bank_wait = bf - next_free
        if bank_wait < 0:
            bank_wait = 0
        slot = bf if bf > next_free else next_free
        if model_rw_turnaround and write and last_was_read:
            turnaround_free = last_slot + 1 + war
            if turnaround_free > slot:
                slot = turnaround_free
        total_wait = slot - next_free
        bank_stalls += bank_wait if bank_wait < total_wait else total_wait
        if total_wait > bank_wait:
            turnaround_stalls += total_wait - bank_wait
        bank_free[bank] = slot + busy
        last_was_read = not write
        per_port[i % nports] += 1
        last_slot = slot
        next_free = slot + 1
    elapsed = last_slot + 1 if last_slot >= 0 else 0
    return _sched.ScheduleResult(
        issued=num_accesses,
        elapsed_slots=elapsed,
        nop_slots=elapsed - num_accesses,
        bank_stall_slots=bank_stalls,
        turnaround_stall_slots=turnaround_stalls,
        history_miss_slots=0,
        per_port_issued=per_port,
    )


def fast_reordering(num_banks: int, num_accesses: int,
                    rng: random.Random,
                    timing: DdrTiming = DdrTiming(),
                    model_rw_turnaround: bool = True,
                    history_depth: int = _sched.PAPER_HISTORY_DEPTH,
                    prefer_same_type: bool = False) -> "_sched.ScheduleResult":
    """Batched reordering scheduler (reference:
    :func:`repro.mem.sched.run_reordering` over the paper's patterns).

    The bounded issue history is a short list of ``(bank, slot)`` pairs
    scanned inline -- at the paper's depth of 3 that is at most twelve
    integer compares per access cycle, replacing a set comprehension
    over dataclass records plus a ``sorted`` round-robin pick.
    """
    if history_depth < 0:
        raise ValueError(f"history_depth must be >= 0, got {history_depth}")
    randbelow = rng._randbelow
    busy = timing.bank_busy_cycles
    war = timing.write_after_read_penalty_cycles
    is_write = _PAPER_PORT_IS_WRITE
    n = len(is_write)
    heads: List[int] = [randbelow(num_banks) for _ in range(n)]
    bank_free = [0] * num_banks
    per_port = [0] * n
    history: List[Tuple[int, int]] = []  # (bank, issue slot), newest last

    issued = 0
    slot = 0
    nop_slots = 0
    bank_stalls = 0
    turnaround_stalls = 0
    history_miss = 0
    rr_next = 0
    last_was_read = False
    have_last = False
    last_issue_slot = -1

    while issued < num_accesses:
        # --- eligibility: banks the (bounded) history believes busy -----
        choice = -1
        if prefer_same_type and model_rw_turnaround and have_last and last_was_read:
            # ablation A4: among eligible heads prefer reads (no
            # write-after-read turnaround), round-robin from rr_next
            fallback = -1
            for off in range(n):
                p = (rr_next + off) % n
                bank = heads[p]
                for hb, hs in history:
                    if hb == bank and hs + busy > slot:
                        break
                else:
                    if not is_write[p]:
                        choice = p
                        break
                    if fallback < 0:
                        fallback = p
            if choice < 0:
                choice = fallback
        else:
            for off in range(n):
                p = (rr_next + off) % n
                bank = heads[p]
                for hb, hs in history:
                    if hb == bank and hs + busy > slot:
                        break
                else:
                    choice = p
                    break
        if choice < 0:
            # "the scheduler sends a no-operation to the memory, losing
            # an access cycle"
            nop_slots += 1
            bank_stalls += 1
            slot += 1
            continue

        bank = heads[choice]
        write = is_write[choice]

        # --- earliest legal issue slot (bank reuse + turnaround) --------
        bf = bank_free[bank]
        issue_slot = bf if bf > slot else slot
        if model_rw_turnaround and write and last_was_read and have_last:
            turnaround_free = last_issue_slot + 1 + war
            if turnaround_free > issue_slot:
                issue_slot = turnaround_free
        if issue_slot > slot:
            lost = issue_slot - slot
            if bf > slot:
                history_miss += lost
            else:
                turnaround_stalls += lost
            nop_slots += lost
            slot = issue_slot

        bank_free[bank] = slot + busy
        if history_depth > 0:
            history.append((bank, slot))
            if len(history) > history_depth:
                del history[0]
        per_port[choice] += 1
        heads[choice] = randbelow(num_banks)
        rr_next = (choice + 1) % n
        last_was_read = not write
        have_last = True
        last_issue_slot = slot
        issued += 1
        slot += 1

    elapsed = last_issue_slot + 1 if last_issue_slot >= 0 else 0
    return _sched.ScheduleResult(
        issued=issued,
        elapsed_slots=elapsed,
        nop_slots=nop_slots,
        bank_stall_slots=bank_stalls,
        turnaround_stall_slots=turnaround_stalls,
        history_miss_slots=history_miss,
        per_port_issued=per_port,
    )


def fast_throughput_loss(num_banks: int, optimized: bool,
                         model_rw_turnaround: bool,
                         num_accesses: int = 200_000,
                         seed: int = 2005,
                         timing: DdrTiming = DdrTiming(),
                         history_depth: int = _sched.PAPER_HISTORY_DEPTH,
                         prefer_same_type: bool = False) -> "_sched.ScheduleResult":
    """One Table 1 cell on the batched engine.

    Same contract (and bit-identical result) as
    :func:`repro.mem.sched.simulate_throughput_loss` with
    ``engine="reference"``.
    """
    rng = random.Random(seed)
    if optimized:
        return fast_reordering(num_banks, num_accesses, rng, timing=timing,
                               model_rw_turnaround=model_rw_turnaround,
                               history_depth=history_depth,
                               prefer_same_type=prefer_same_type)
    return fast_serializing(num_banks, num_accesses, rng, timing=timing,
                            model_rw_turnaround=model_rw_turnaround)
