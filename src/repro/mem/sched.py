"""DDR access schedulers compared in Table 1 (paper Section 3).

Two front-ends contend 4 ports (2 write, 2 read) onto one DDR device:

* :func:`run_serializing` -- the baseline: "serializing the accesses from
  the 4 ports in a round-robin manner".  Accesses issue strictly in
  round-robin port order; each waits out whatever bank-conflict and
  turnaround delay it hits.
* :func:`run_reordering` -- the paper's optimization: per-port FIFOs, and
  in every access cycle the scheduler checks the 4 pending heads,
  selects one that addresses a non-busy bank (round-robin among eligible)
  and otherwise burns the cycle with a no-operation.  Bank availability
  comes from "the memory access history (it remembers the last 3
  accesses)".

Both report a :class:`ScheduleResult` whose ``loss`` is directly
comparable with Table 1's *Throughput Loss* columns.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.mem.ddr import Access, DdrModel, IssueRecord, MemOp
from repro.mem.patterns import AccessPattern, paper_port_patterns
from repro.mem.timing import DdrTiming

#: History depth of the paper's reordering scheduler.
PAPER_HISTORY_DEPTH = 3


@dataclass(frozen=True)
class PortSpec:
    """A port with its (infinite) access pattern."""

    name: str
    pattern: AccessPattern


@dataclass
class ScheduleResult:
    """Outcome of a scheduling run over ``issued`` accesses.

    ``loss`` is the fraction of access cycles in which no access was
    issued -- the quantity Table 1 reports.
    """

    issued: int
    elapsed_slots: int
    nop_slots: int
    bank_stall_slots: int
    turnaround_stall_slots: int
    history_miss_slots: int
    per_port_issued: List[int] = field(default_factory=list)

    @property
    def loss(self) -> float:
        if self.elapsed_slots == 0:
            return 0.0
        return 1.0 - self.issued / self.elapsed_slots

    @property
    def utilization(self) -> float:
        return 1.0 - self.loss

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleResult(issued={self.issued}, slots={self.elapsed_slots}, "
            f"loss={self.loss:.3f})"
        )


def _num_ports(ports: Sequence[PortSpec]) -> int:
    if not ports:
        raise ValueError("at least one port is required")
    return len(ports)


def run_serializing(ddr: DdrModel, ports: Sequence[PortSpec],
                    num_accesses: int) -> ScheduleResult:
    """Issue accesses in strict round-robin port order (no reordering)."""
    n = _num_ports(ports)
    per_port = [0] * n
    bank_stalls = 0
    turnaround_stalls = 0
    next_free = 0  # one access per slot
    last_slot = -1
    for i in range(num_accesses):
        port = i % n
        access = next(ports[port].pattern)
        # Decompose the stall for reporting: how long the bank alone would
        # have held us vs the issue slot we actually got.
        bank_wait = max(0, ddr.bank_free_slot(access.bank) - next_free)
        slot = ddr.earliest_issue_slot(access, next_free)
        total_wait = slot - next_free
        bank_stalls += min(bank_wait, total_wait)
        turnaround_stalls += max(0, total_wait - bank_wait)
        ddr.issue(access, slot)
        per_port[port] += 1
        last_slot = slot
        next_free = slot + 1
    elapsed = last_slot + 1 if last_slot >= 0 else 0
    return ScheduleResult(
        issued=num_accesses,
        elapsed_slots=elapsed,
        nop_slots=elapsed - num_accesses,
        bank_stall_slots=bank_stalls,
        turnaround_stall_slots=turnaround_stalls,
        history_miss_slots=0,
        per_port_issued=per_port,
    )


def _busy_from_history(history: Deque[IssueRecord], slot: int,
                       bank_busy_cycles: int) -> set[int]:
    """Banks the scheduler believes are busy at ``slot`` given its history."""
    return {
        rec.access.bank
        for rec in history
        if rec.slot + bank_busy_cycles > slot
    }


def run_reordering(ddr: DdrModel, ports: Sequence[PortSpec],
                   num_accesses: int,
                   history_depth: int = PAPER_HISTORY_DEPTH,
                   prefer_same_type: bool = False) -> ScheduleResult:
    """The paper's optimized scheduler: reorder across per-port FIFO heads.

    Parameters
    ----------
    history_depth:
        How many past issues the bank-availability check remembers.  The
        paper uses 3, which (with a 4-slot bank reuse interval and at
        most one issue per slot) is exactly sufficient; smaller depths
        make the scheduler optimistic -- it then attempts accesses to
        still-busy banks and pays the remaining precharge as a stall
        (ablation A1).
    prefer_same_type:
        Ablation A4: among eligible heads, prefer the ones that do not
        incur a write-after-read turnaround.  The paper's scheduler does
        *not* do this (it only minimizes bank conflicts).
    """
    if history_depth < 0:
        raise ValueError(f"history_depth must be >= 0, got {history_depth}")
    n = _num_ports(ports)
    heads: List[Access] = [next(p.pattern) for p in ports]
    per_port = [0] * n
    history: Deque[IssueRecord] = deque(maxlen=history_depth if history_depth else 1)
    if history_depth == 0:
        history = deque(maxlen=1)
        history.clear()

    issued = 0
    slot = 0
    nop_slots = 0
    bank_stalls = 0
    turnaround_stalls = 0
    history_miss = 0
    rr_next = 0
    last_op: Optional[MemOp] = None
    last_issue_slot = -1

    while issued < num_accesses:
        believed_busy = (
            _busy_from_history(history, slot, ddr.timing.bank_busy_cycles)
            if history_depth > 0
            else set()
        )
        eligible = [
            p for p in range(n) if heads[p].bank not in believed_busy
        ]
        if not eligible:
            # "the scheduler sends a no-operation to the memory, losing an
            # access cycle"
            nop_slots += 1
            bank_stalls += 1
            slot += 1
            continue

        choice = _round_robin_pick(
            eligible, rr_next, heads, last_op, prefer_same_type,
            ddr.model_rw_turnaround,
        )
        access = heads[choice]

        issue_slot = ddr.earliest_issue_slot(access, slot)
        if issue_slot > slot:
            # The model says we cannot issue this slot after all: either a
            # turnaround penalty, or (with a shallow history) a bank the
            # scheduler forgot about.  The slots in between are lost.
            actually_banked = ddr.bank_free_slot(access.bank) > slot
            lost = issue_slot - slot
            if actually_banked:
                history_miss += lost
            else:
                turnaround_stalls += lost
            nop_slots += lost
            slot = issue_slot

        ddr.issue(access, slot)
        history.append(IssueRecord(access=access, slot=slot))
        per_port[choice] += 1
        heads[choice] = next(ports[choice].pattern)
        rr_next = (choice + 1) % n
        last_op = access.op
        last_issue_slot = slot
        issued += 1
        slot += 1

    elapsed = last_issue_slot + 1 if last_issue_slot >= 0 else 0
    return ScheduleResult(
        issued=issued,
        elapsed_slots=elapsed,
        nop_slots=nop_slots,
        bank_stall_slots=bank_stalls,
        turnaround_stall_slots=turnaround_stalls,
        history_miss_slots=history_miss,
        per_port_issued=per_port,
    )


def _round_robin_pick(eligible: List[int], rr_next: int, heads: List[Access],
                      last_op: Optional[MemOp], prefer_same_type: bool,
                      turnaround_modeled: bool) -> int:
    """Pick one eligible port, round-robin from ``rr_next``.

    With ``prefer_same_type`` (and turnaround modelled), heads that avoid
    a write-after-read are considered first.
    """
    n = len(heads)
    ordered = sorted(eligible, key=lambda p: (p - rr_next) % n)
    if prefer_same_type and turnaround_modeled and last_op is MemOp.READ:
        no_penalty = [p for p in ordered if heads[p].op is MemOp.READ]
        if no_penalty:
            return no_penalty[0]
    return ordered[0]


def simulate_throughput_loss(num_banks: int, optimized: bool,
                             model_rw_turnaround: bool,
                             num_accesses: int = 200_000,
                             seed: int = 2005,
                             timing: DdrTiming = DdrTiming(),
                             history_depth: int = PAPER_HISTORY_DEPTH,
                             prefer_same_type: bool = False,
                             engine: str = "fast") -> ScheduleResult:
    """One Table 1 cell: throughput loss for a bank count and scheduler.

    Reproduces the paper's set-up: 4 backlogged ports (2 write + 2 read)
    issuing uniformly random bank accesses, serialized round-robin
    (``optimized=False``) or reordered (``optimized=True``).

    ``engine`` selects the execution engine: ``"fast"`` (default) runs
    the batched bank model of :mod:`repro.mem.fastpath`, ``"reference"``
    walks the generator patterns through :class:`DdrModel` one access at
    a time.  Both produce bit-identical results (asserted by
    ``tests/mem/test_fastpath.py``); the reference engine remains the
    executable specification.
    """
    if engine == "fast":
        from repro.mem.fastpath import fast_throughput_loss
        return fast_throughput_loss(
            num_banks, optimized=optimized,
            model_rw_turnaround=model_rw_turnaround,
            num_accesses=num_accesses, seed=seed, timing=timing,
            history_depth=history_depth, prefer_same_type=prefer_same_type)
    if engine != "reference":
        raise ValueError(
            f"unknown engine {engine!r} (choose 'fast' or 'reference')")
    rng = random.Random(seed)
    ddr = DdrModel(timing=timing, num_banks=num_banks,
                   model_rw_turnaround=model_rw_turnaround)
    patterns = paper_port_patterns(rng, num_banks)
    names = ("net-write", "net-read", "cpu-write", "cpu-read")
    ports = [PortSpec(name=nm, pattern=pat) for nm, pat in zip(names, patterns)]
    if optimized:
        return run_reordering(ddr, ports, num_accesses,
                              history_depth=history_depth,
                              prefer_same_type=prefer_same_type)
    return run_serializing(ddr, ports, num_accesses)
