"""Timing parameter sets for the modelled memories.

All values default to the numbers printed in the paper; every experiment
that varies them (ablations, sensitivity sweeps) does so through these
dataclasses rather than editing model code.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper segments packets into fixed 64-byte segments; one DDR access
#: moves one segment ("A new read/write access to 64-byte data blocks can
#: be inserted to DDR-DRAM every 4-clock-cycles").
DDR_64B_ACCESS_BYTES = 64


@dataclass(frozen=True)
class DdrTiming:
    """DDR-SDRAM timing, in nanoseconds (paper Section 3, footnotes 1-2).

    Attributes
    ----------
    access_cycle_ns:
        Interval between successive command issues -- one 64-byte access
        slot (40 ns = 4 cycles at 100 MHz double-clocked).
    bank_busy_ns:
        Precharge-imposed reuse interval of one bank (160 ns).
    read_delay_ns:
        Read access delay (60 ns).
    write_delay_ns:
        Write access delay (40 ns).
    write_after_read_penalty_cycles:
        Extra access cycles a write must wait when issued immediately
        after a read (data-bus turnaround; 1 in the paper).
    bus_bits:
        Data bus width (64 in the paper's DIMM analysis).
    clock_mhz:
        DDR command clock (100 MHz, double data rate).
    """

    access_cycle_ns: int = 40
    bank_busy_ns: int = 160
    read_delay_ns: int = 60
    write_delay_ns: int = 40
    write_after_read_penalty_cycles: int = 1
    bus_bits: int = 64
    clock_mhz: int = 100

    def __post_init__(self) -> None:
        if self.access_cycle_ns <= 0:
            raise ValueError("access_cycle_ns must be positive")
        if self.bank_busy_ns % self.access_cycle_ns != 0:
            raise ValueError(
                "bank_busy_ns must be a multiple of access_cycle_ns "
                f"({self.bank_busy_ns} % {self.access_cycle_ns} != 0)"
            )
        if self.write_after_read_penalty_cycles < 0:
            raise ValueError("write_after_read_penalty_cycles must be >= 0")

    @property
    def bank_busy_cycles(self) -> int:
        """Bank reuse interval in access cycles (4 in the paper)."""
        return self.bank_busy_ns // self.access_cycle_ns

    @property
    def peak_gbps(self) -> float:
        """Peak throughput of the bus: 12.8 Gbps for the paper's DIMM.

        64 bits x 100 MHz x 2 (DDR) = 12.8 Gbps.
        """
        return self.bus_bits * self.clock_mhz * 2 / 1000.0

    @property
    def bytes_per_access(self) -> int:
        """Bytes moved per access slot (one 64-byte segment)."""
        return DDR_64B_ACCESS_BYTES


@dataclass(frozen=True)
class ZbtTiming:
    """ZBT (Zero-Bus-Turnaround) SRAM timing.

    ZBT SRAMs pipeline one access per cycle with no penalty for
    read/write direction changes -- which is exactly why the paper keeps
    the pointer structures there.  The MMS accesses its pointer SRAM at
    the system clock (125 MHz); the reference NPU accesses its ZBT
    through the PLB EMC.
    """

    clock_mhz: int = 125
    accesses_per_cycle: int = 1
    read_latency_cycles: int = 2
    word_bits: int = 32

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.accesses_per_cycle < 1:
            raise ValueError("accesses_per_cycle must be >= 1")
