"""ZBT SRAM pointer-memory model.

Both platforms in the paper keep queue pointers in an external ZBT
(zero-bus-turnaround) SRAM: the reference NPU through the PLB EMC, the
MMS through a dedicated port clocked at the system frequency.  ZBT parts
sustain one access per cycle with no read/write turnaround penalty, which
is precisely why pointer manipulation can proceed in parallel with DRAM
data transfers (Section 6: "all manipulations on data structures
(pointers) occur in parallel with data transfers").

:class:`ZbtSram` is a *functional* word store with access accounting.
Cycle costs are derived by the callers: the MMS charges one cycle per
access (pipelined), the NPU charges a PLB transaction per access.
"""

from __future__ import annotations

from typing import Dict

from repro.mem.timing import ZbtTiming


class ZbtSram:
    """Word-addressable SRAM with access counters.

    Parameters
    ----------
    size_words:
        Capacity; accesses outside ``[0, size_words)`` raise.
    timing:
        ZBT timing parameters (used by callers for cycle conversion).

    Notes
    -----
    Storage is a dict, so multi-megabyte address spaces (32 K queues x
    several pointer words) cost only what is touched.  Uninitialized
    words read as 0, matching typical power-on SRAM assumptions in the
    queue-manager initialization code.
    """

    def __init__(self, size_words: int, timing: ZbtTiming = ZbtTiming()) -> None:
        if size_words < 1:
            raise ValueError(f"size_words must be >= 1, got {size_words}")
        self.size_words = size_words
        self.timing = timing
        self._words: Dict[int, int] = {}
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------- access

    def read(self, addr: int) -> int:
        """Read one word (counted)."""
        self._check(addr)
        self.read_count += 1
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        """Write one word (counted)."""
        self._check(addr)
        self.write_count += 1
        self._words[addr] = value

    def peek(self, addr: int) -> int:
        """Uncounted read for debug/invariant checks only."""
        self._check(addr)
        return self._words.get(addr, 0)

    @property
    def access_count(self) -> int:
        return self.read_count + self.write_count

    def reset_counters(self) -> None:
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------- timing

    def pipelined_cycles(self, num_accesses: int) -> int:
        """Cycles to stream ``num_accesses`` back-to-back accesses.

        ZBT pipelining: one access per cycle plus the initial read
        latency to fill the pipeline.
        """
        if num_accesses <= 0:
            return 0
        return num_accesses + self.timing.read_latency_cycles

    # ---------------------------------------------------------- internals

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.size_words:
            raise IndexError(
                f"SRAM address {addr} out of range [0, {self.size_words})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ZbtSram({self.size_words} words, "
            f"r={self.read_count}, w={self.write_count})"
        )
