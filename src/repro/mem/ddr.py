"""Behavioral DDR-SDRAM bank/timing model (paper Section 3).

The model is *slot-timed*: time advances in access cycles (40 ns slots),
the granularity at which the paper measures throughput loss.  One access
moves one 64-byte block.  The two loss mechanisms of Table 1 are
implemented exactly as footnoted:

* **bank conflicts** -- a bank is unavailable for
  :attr:`DdrTiming.bank_busy_cycles` slots after each access to it;
* **write-read interleaving** -- a write issued in the slot immediately
  following a read issue pays a one-slot turnaround penalty.

The same model instance serves both Table 1 drivers (through
:mod:`repro.mem.sched`) and the DES-integrated
:class:`repro.mem.controller.DdrController` used by the NPU and MMS
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from repro.mem.timing import DdrTiming


class MemOp(IntEnum):
    """Memory operation direction."""

    READ = 0
    WRITE = 1


@dataclass(frozen=True)
class Access:
    """One 64-byte DDR access.

    Attributes
    ----------
    op:
        Read or write.
    bank:
        Target bank index.
    port:
        Identifier of the issuing port (0-3 in the Table 1 set-up).
    tag:
        Free-form correlation tag used by callers (e.g. command id).
    """

    op: MemOp
    bank: int
    port: int = 0
    tag: int = 0


@dataclass
class IssueRecord:
    """History entry: an access and the slot it was issued in."""

    access: Access
    slot: int


class DdrModel:
    """Bank-state timing model for one DDR device/DIMM rank.

    Parameters
    ----------
    timing:
        DDR timing parameters (defaults are the paper's).
    num_banks:
        Number of banks (the paper sweeps 1, 4, 8, 12, 16).
    model_rw_turnaround:
        When ``False`` the write-after-read penalty is ignored -- this
        gives the "Bank conflicts" columns of Table 1; ``True`` gives the
        "Bank conflicts + write-read interleaving" columns.
    """

    def __init__(self, timing: DdrTiming = DdrTiming(), num_banks: int = 8,
                 model_rw_turnaround: bool = True) -> None:
        if num_banks < 1:
            raise ValueError(f"num_banks must be >= 1, got {num_banks}")
        self.timing = timing
        self.num_banks = num_banks
        self.model_rw_turnaround = model_rw_turnaround
        self._bank_free_slot = [0] * num_banks
        self._last_issue_slot: Optional[int] = None
        self._last_op: Optional[MemOp] = None
        self.total_issued = 0
        self.reads_issued = 0
        self.writes_issued = 0

    # ------------------------------------------------------------ queries

    def bank_free_slot(self, bank: int) -> int:
        """First slot at which ``bank`` may be accessed again."""
        return self._bank_free_slot[bank]

    def bank_busy_at(self, bank: int, slot: int) -> bool:
        """Whether ``bank`` is still precharging at ``slot``."""
        return slot < self._bank_free_slot[bank]

    def earliest_issue_slot(self, access: Access, not_before: int) -> int:
        """Earliest slot >= ``not_before`` at which ``access`` may issue.

        Combines the bank reuse constraint with the write-after-read
        turnaround constraint.  The two overlap (are not additive): a
        write behind both a bank conflict and a turnaround waits for
        whichever releases later, which is why the 1-bank row of Table 1
        shows 0.75 loss in *both* columns.
        """
        slot = max(not_before, self._bank_free_slot[access.bank])
        if (
            self.model_rw_turnaround
            and access.op is MemOp.WRITE
            and self._last_op is MemOp.READ
            and self._last_issue_slot is not None
        ):
            turnaround_free = (
                self._last_issue_slot
                + 1
                + self.timing.write_after_read_penalty_cycles
            )
            slot = max(slot, turnaround_free)
        return slot

    def can_issue_at(self, access: Access, slot: int) -> bool:
        """Whether ``access`` could legally issue exactly at ``slot``."""
        return self.earliest_issue_slot(access, slot) == slot

    # ------------------------------------------------------------- update

    def issue(self, access: Access, slot: int) -> int:
        """Commit ``access`` at ``slot``; returns the data-complete slot.

        The completion slot accounts for the read (60 ns) or write
        (40 ns) access delay, expressed in whole access cycles rounded
        up -- reads complete one slot later than their issue+1 boundary.
        """
        if access.bank >= self.num_banks or access.bank < 0:
            raise ValueError(
                f"bank {access.bank} out of range [0, {self.num_banks})"
            )
        earliest = self.earliest_issue_slot(access, slot)
        if earliest != slot:
            raise RuntimeError(
                f"illegal issue at slot {slot}: earliest legal slot is {earliest}"
            )
        self._bank_free_slot[access.bank] = slot + self.timing.bank_busy_cycles
        self._last_issue_slot = slot
        self._last_op = access.op
        self.total_issued += 1
        if access.op is MemOp.READ:
            self.reads_issued += 1
            delay_ns = self.timing.read_delay_ns
        else:
            self.writes_issued += 1
            delay_ns = self.timing.write_delay_ns
        cycles = -(-delay_ns // self.timing.access_cycle_ns)  # ceil division
        return slot + cycles

    def data_delay_ns(self, op: MemOp) -> int:
        """Raw access delay of one operation (no queueing)."""
        if op is MemOp.READ:
            return self.timing.read_delay_ns
        return self.timing.write_delay_ns

    def reset(self) -> None:
        """Forget all bank and turnaround state (counters included)."""
        self._bank_free_slot = [0] * self.num_banks
        self._last_issue_slot = None
        self._last_op = None
        self.total_issued = 0
        self.reads_issued = 0
        self.writes_issued = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DdrModel(banks={self.num_banks}, "
            f"turnaround={self.model_rw_turnaround}, issued={self.total_issued})"
        )
