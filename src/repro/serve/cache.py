"""Content-addressed result cache for served scenario runs.

Every scenario run is a pure function of its resolved spec (the
engine-identity and resume-identity suites prove as much), so a served
result can be reused for any later request resolving to the same spec
-- *provided the code that produced it has not changed*.  The cache
key therefore folds together:

* :meth:`ScenarioSpec.spec_hash` -- the canonical-JSON SHA-256 of the
  fully resolved spec (engine/seed/budget-sensitive);
* the effective engine, seed and budget once more, spelled out -- they
  are already inside the spec hash, but keeping them visible in the
  key derivation makes a key auditable without replaying the hash;
* :func:`code_version` -- a SHA-256 over every ``.py`` file under the
  installed ``repro`` package, so *any* source change invalidates the
  whole cache rather than risking a stale byte-for-byte "identical"
  result produced by different code.

Cached documents are canonicalized (:func:`canonical_result_dict`):
``wall_clock_s`` is zeroed and the optional rusage profile dropped --
the same scrubbing every identity diff in the repo applies -- so a
cache hit is *byte-identical* to a fresh run of the same spec.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

import repro
from repro.checkpoint.atomic import write_json_atomic

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """SHA-256 fingerprint of the running ``repro`` source tree.

    Computed once per process: the hash of each ``.py`` file's content,
    folded in sorted relative-path order.  Editing any module (adding,
    removing, or changing one) yields a different version, so results
    cached by older code can never satisfy a newer request.
    """
    global _CODE_VERSION
    if _CODE_VERSION is not None:
        return _CODE_VERSION
    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    entries = []
    for root, _dirs, files in os.walk(package_dir):
        for fname in files:
            if not fname.endswith(".py"):
                continue
            path = os.path.join(root, fname)
            rel = os.path.relpath(path, package_dir)
            with open(path, "rb") as fh:
                entries.append((rel, hashlib.sha256(fh.read())
                                .hexdigest()))
    for rel, file_hash in sorted(entries):
        digest.update(f"{rel}\x00{file_hash}\n".encode("utf-8"))
    _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def cache_key(spec_hash: str, *, engine: str, seed: int,
              budget: str, version: Optional[str] = None) -> str:
    """The content address of one (spec, code-version) result."""
    doc = {
        "spec_hash": spec_hash,
        "engine": engine,
        "seed": seed,
        "budget": budget,
        "code_version": version if version is not None else code_version(),
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_result_dict(doc: Dict[str, Any]) -> Dict[str, Any]:
    """A :class:`RunResult` document with the non-reproducible fields
    scrubbed: ``wall_clock_s`` zeroed, rusage profile removed.  What
    remains is a pure function of the resolved spec, so cached and
    fresh documents compare byte-identical."""
    out = dict(doc)
    out["wall_clock_s"] = 0.0
    metrics = out.get("metrics")
    if isinstance(metrics, dict) and "resources" in metrics:
        metrics = dict(metrics)
        metrics.pop("resources")
        out["metrics"] = metrics
    return out


class ResultCache:
    """One JSON document per cache key, persisted atomically.

    Layout is flat -- ``<root>/<key>.json`` -- and writes go through
    :func:`write_json_atomic`, so a concurrently reading server never
    observes a torn document and a crashed writer leaves no partial
    entry behind.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return os.path.join(self.root, key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        if not isinstance(doc, dict):
            raise ValueError(f"cache entry {key} is not an object")
        return doc

    def put(self, key: str, doc: Dict[str, Any]) -> None:
        write_json_atomic(self._path(key), canonical_result_dict(doc))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))
