"""Stdlib client for the serving daemon.

``http.client`` only -- the tests, the benchmark and the CI smoke job
drive the daemon through this class, and a user script can too:

    client = ServeClient("127.0.0.1", 8787)
    summary = client.submit("latency-lqd-burst", budget="fast")
    for frame in client.stream(summary["run_id"]):
        ...  # live TelemetrySnapshot progress frames
    result = client.result(summary["run_id"])

``stream()`` yields each frame as soon as its line arrives --
``http.client`` decodes the chunked transfer-encoding, and the server
only ever emits complete lines, so iteration never sees a torn frame.
Streaming a run doubles as *waiting* for it: the stream ends exactly
when the run reaches a terminal state, which keeps this module free of
clocks and poll loops.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple


class ServeError(RuntimeError):
    """An HTTP error answer from the daemon."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class ServeClient:
    """One daemon endpoint; a fresh connection per request (the server
    is ``Connection: close``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout_s: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ) -> Tuple[int, bytes]:
        conn = self._connect()
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              ok: Tuple[int, ...] = (200,)) -> Any:
        status, raw = self._request(method, path, body)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except ValueError:
            doc = raw.decode("utf-8", "replace")
        if status not in ok:
            raise ServeError(status, doc)
        return doc

    # -------------------------------------------------------------- routes

    def healthz(self) -> Dict[str, Any]:
        doc = self._json("GET", "/healthz")
        assert isinstance(doc, dict)
        return doc

    def submit(self, scenario: str, *,
               engine: Optional[str] = None,
               seed: Optional[int] = None,
               budget: Optional[str] = None) -> Dict[str, Any]:
        """``POST /runs``; the summary dict (``state`` is ``"done"``
        with ``cached=True`` on a cache hit, else ``"pending"``)."""
        body: Dict[str, Any] = {"scenario": scenario}
        if engine is not None:
            body["engine"] = engine
        if seed is not None:
            body["seed"] = seed
        if budget is not None:
            body["budget"] = budget
        doc = self._json("POST", "/runs", body, ok=(200, 202))
        assert isinstance(doc, dict)
        return doc

    def runs(self) -> List[Dict[str, Any]]:
        doc = self._json("GET", "/runs")
        return list(doc["runs"])

    def status(self, run_id: str) -> Dict[str, Any]:
        """The run summary regardless of state (follows the /runs/<id>
        status-code convention: 200 done, 202 in flight, 500 failed)."""
        doc = self._json("GET", f"/runs/{run_id}", ok=(200, 202, 500))
        assert isinstance(doc, dict)
        return doc

    def result(self, run_id: str) -> Dict[str, Any]:
        """The finished run's exact ``RunResult`` document (raises
        :class:`ServeError` while in flight or failed)."""
        doc = self._json("GET", f"/runs/{run_id}")
        assert isinstance(doc, dict)
        return doc

    def stream(self, run_id: str) -> Iterator[Dict[str, Any]]:
        """Iterate the run's frames live; ends when the run does."""
        conn = self._connect()
        try:
            conn.request("GET", f"/runs/{run_id}/stream")
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeError(resp.status,
                                 resp.read().decode("utf-8", "replace"))
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def run_and_wait(self, scenario: str, *,
                     engine: Optional[str] = None,
                     seed: Optional[int] = None,
                     budget: Optional[str] = None,
                     ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """Submit, consume the whole stream, fetch the result:
        ``(result document, frames)``."""
        summary = self.submit(scenario, engine=engine, seed=seed,
                              budget=budget)
        frames = list(self.stream(summary["run_id"]))
        return self.result(summary["run_id"]), frames

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def shutdown(self) -> Dict[str, Any]:
        doc = self._json("POST", "/shutdown")
        assert isinstance(doc, dict)
        return doc
