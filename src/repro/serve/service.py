"""The HTTP-independent serving core: submit, execute, cache, meter.

:class:`ScenarioService` owns everything the daemon does *except*
sockets, so the whole behavior is testable synchronously:

* ``submit()`` resolves the requested knobs against the registered
  spec exactly as :meth:`Runner.run` would, derives the content
  address (spec hash + code version), and either answers from the
  :class:`~repro.serve.cache.ResultCache` or creates a pending
  :class:`RunRecord`;
* ``execute()`` runs one pending record to completion on the
  fault-tolerant process-per-task pool
  (:func:`repro.checkpoint.pool.run_tasks` -- timeouts, retries,
  journaled lifecycle events and rusage profiling all reused intact).
  The forked worker activates a
  :class:`~repro.telemetry.publish.FramePublisher` before running, so
  progress frames appear in the record's ``frames.jsonl`` *while the
  scenario executes* and the stream endpoint can tail them live;
* the service-level :class:`~repro.monitor.metrics.MetricsRegistry`
  (requests + windowed rate, in-flight gauge, done/failed/cache
  counters, per-scenario wall/CPU totals) backs ``GET /metrics``.

The service itself never reads a clock: callers pass ``now`` into
:meth:`record_request` (the server supplies ``time.monotonic()``), so
rate metrics stay replay-deterministic under test.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.checkpoint.pool import run_tasks
from repro.monitor.metrics import MetricsRegistry
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.spec import ENGINES
from repro.serve.cache import ResultCache, cache_key, canonical_result_dict
from repro.telemetry.publish import (
    DEFAULT_PUBLISH_EVERY,
    FRAMES_FILENAME,
    FramePublisher,
)

#: Lifecycle states of one served run.
RUN_STATES = ("pending", "running", "done", "failed")


def _serve_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker body for one served run (module-level: the pool
    forks and calls it in a child process).

    Activates a frame publisher so the scenario's probe chain streams
    progress frames, runs the scenario, then appends the terminal
    ``done`` frame carrying the final telemetry payload -- taken from
    the finished result document itself, so the last streamed frame is
    byte-identical to ``metrics["telemetry"]`` by construction.
    """
    from repro.scenarios.runner import Runner
    from repro.telemetry import publish

    publisher = FramePublisher(payload["frames_path"],
                               every=payload["publish_every"])
    publish.activate(publisher)
    try:
        result = Runner().run(payload["scenario"],
                              engine=payload["engine"],
                              seed=payload["seed"],
                              budget=payload["budget"])
    finally:
        publish.deactivate()
    doc = canonical_result_dict(result.to_dict())
    telemetry = doc["metrics"].get("telemetry")
    commands = (telemetry["counters"]["commands"]
                if telemetry is not None else None)
    publisher.publish_done(doc["scenario"], commands, telemetry)
    publisher.close()
    return doc


@dataclass
class RunRecord:
    """One submitted run: identity, content address, lifecycle."""

    run_id: str
    scenario: str
    engine: str
    seed: int
    budget: str
    spec_hash: str
    cache_key: str
    dir: str
    state: str = "pending"
    cached: bool = False
    error: Optional[str] = None
    attempts: int = 0
    result: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @property
    def frames_path(self) -> str:
        return os.path.join(self.dir, FRAMES_FILENAME)

    def summary(self) -> Dict[str, Any]:
        """The JSON shape ``POST /runs`` / ``GET /runs`` answer with."""
        doc: Dict[str, Any] = {
            "run_id": self.run_id,
            "scenario": self.scenario,
            "engine": self.engine,
            "seed": self.seed,
            "budget": self.budget,
            "spec_hash": self.spec_hash,
            "state": self.state,
            "cached": self.cached,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc


class ScenarioService:
    """Submission, execution, caching and metering of served runs."""

    def __init__(self, spool_dir: str,
                 cache_dir: Optional[str] = None, *,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 backoff_s: float = 0.1,
                 publish_every: int = DEFAULT_PUBLISH_EVERY,
                 fault_plan: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.spool_dir = os.fspath(spool_dir)
        os.makedirs(self.spool_dir, exist_ok=True)
        self.cache = ResultCache(cache_dir if cache_dir is not None
                                 else os.path.join(self.spool_dir,
                                                   "cache"))
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.publish_every = publish_every
        #: Deterministic worker-fault injection (tests / recovery
        #: smoke; see :mod:`repro.checkpoint.faults`).
        self.fault_plan = fault_plan
        self.registry = registry if registry is not None else (
            MetricsRegistry())
        self._runs: Dict[str, RunRecord] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._inflight = 0

        reg = self.registry
        self._m_requests = reg.counter(
            "repro_serve_requests_total", "HTTP requests handled")
        self._m_rate = reg.rate(
            "repro_serve_requests_per_second",
            "request rate over the trailing 60s window")
        self._m_inflight = reg.gauge(
            "repro_serve_runs_inflight", "runs currently executing")
        self._m_submitted = reg.counter(
            "repro_serve_runs_submitted_total", "runs submitted")
        self._m_done = reg.counter(
            "repro_serve_runs_done_total", "runs finished successfully")
        self._m_failed = reg.counter(
            "repro_serve_runs_failed_total",
            "runs that exhausted their retry budget")
        self._m_hits = reg.counter(
            "repro_serve_cache_hits_total",
            "submissions answered from the result cache")
        self._m_misses = reg.counter(
            "repro_serve_cache_misses_total",
            "submissions that required execution")
        self._m_frames = reg.counter(
            "repro_serve_stream_frames_total",
            "frames delivered over /runs/<id>/stream")

    # ---------------------------------------------------------- metering

    def record_request(self, now: Optional[float] = None) -> None:
        """Count one HTTP request (``now``: the caller's monotonic
        timestamp, feeding the windowed rate)."""
        self._m_requests.inc()
        if now is not None:
            self._m_rate.record(now)

    def record_stream_frames(self, n: int) -> None:
        self._m_frames.inc(n)

    def metrics_text(self) -> str:
        return self.registry.to_prometheus()

    # -------------------------------------------------------- submission

    def submit(self, scenario: str, *,
               engine: Optional[str] = None,
               seed: Optional[int] = None,
               budget: Optional[str] = None) -> RunRecord:
        """Resolve, content-address and register one run.

        A cache hit comes back already ``done`` (with the cached
        document attached and the terminal frame materialized, so
        streaming a cached run yields a well-formed one-frame stream);
        a miss comes back ``pending`` for :meth:`execute`.
        """
        if scenario not in scenario_names():
            raise KeyError(f"unknown scenario {scenario!r}")
        spec = get_scenario(scenario).spec.with_options(
            engine=engine, seed=seed, budget=budget)
        spec_hash = spec.spec_hash()
        key = cache_key(spec_hash, engine=spec.effective_engine,
                        seed=spec.seed, budget=spec.budget)
        with self._lock:
            run_id = f"run-{next(self._ids):06d}"
            record = RunRecord(
                run_id=run_id, scenario=scenario,
                engine=spec.effective_engine, seed=spec.seed,
                budget=spec.budget, spec_hash=spec_hash, cache_key=key,
                dir=os.path.join(self.spool_dir, run_id))
            self._runs[run_id] = record
        os.makedirs(record.dir, exist_ok=True)
        self._m_submitted.inc()
        cached = self.cache.get(key)
        if cached is not None:
            record.result = cached
            record.cached = True
            record.state = "done"
            self._m_hits.inc()
            self._materialize_done_frame(record)
        else:
            self._m_misses.inc()
        return record

    def _materialize_done_frame(self, record: RunRecord) -> None:
        """Write the terminal frame for a cache-served run, so the
        stream endpoint serves cached and fresh runs identically."""
        assert record.result is not None
        telemetry = record.result["metrics"].get("telemetry")
        commands = (telemetry["counters"]["commands"]
                    if telemetry is not None else None)
        with FramePublisher(record.frames_path) as publisher:
            publisher.publish_done(record.scenario, commands, telemetry)

    # --------------------------------------------------------- execution

    def execute(self, run_id: str) -> RunRecord:
        """Run one pending record to completion (blocking; the server
        calls this from its worker thread pool).  No-op for records
        already past ``pending`` (cached hits, duplicates)."""
        record = self.get(run_id)
        with self._lock:
            if record.state != "pending":
                return record
            record.state = "running"
            self._inflight += 1
            self._m_inflight.set(self._inflight)
        payload = {
            "scenario": record.scenario,
            # closed-form scenarios resolve to engine "n/a", which is
            # a result stamp, not a requestable engine -- the worker
            # passes no override and lets the spec decide
            "engine": record.engine if record.engine in ENGINES else None,
            "seed": record.seed,
            "budget": record.budget,
            "frames_path": record.frames_path,
            "publish_every": self.publish_every,
        }
        try:
            outcome = run_tasks(
                _serve_worker, [(record.run_id, payload)], jobs=1,
                timeout_s=self.timeout_s, retries=self.retries,
                backoff_s=self.backoff_s, journal_dir=record.dir,
                fault_plan=self.fault_plan, resources=True)
            doc = outcome.results[0]
            if doc is not None:
                self.cache.put(record.cache_key, doc)
                record.result = canonical_result_dict(doc)
                record.state = "done"
                self._m_done.inc()
                self._record_profile(record.scenario,
                                     outcome.resources.get(
                                         record.run_id))
            else:
                failure = (outcome.failures[0] if outcome.failures
                           else None)
                record.error = (failure.reason if failure is not None
                                else "interrupted")
                record.attempts = (failure.attempts
                                   if failure is not None else 0)
                record.state = "failed"
                self._m_failed.inc()
        finally:
            with self._lock:
                self._inflight -= 1
                self._m_inflight.set(self._inflight)
        return record

    def _record_profile(self, scenario: str,
                        profile: Optional[Dict[str, Any]]) -> None:
        """Fold one run's rusage profile into the per-scenario wall /
        CPU totals (metric names carry the scenario, mangled to the
        Prometheus alphabet)."""
        if not profile:
            return
        slug = scenario.replace("-", "_").replace(".", "_")
        self.registry.counter(
            f"repro_serve_scenario_{slug}_wall_seconds_total",
            f"wall-clock seconds spent executing {scenario}",
        ).inc(round(float(profile.get("wall_s", 0.0)), 6))
        cpu = float(profile.get("cpu_s", 0.0))
        self.registry.counter(
            f"repro_serve_scenario_{slug}_cpu_seconds_total",
            f"CPU seconds spent executing {scenario}",
        ).inc(round(cpu, 6))

    # ------------------------------------------------------------ lookup

    def get(self, run_id: str) -> RunRecord:
        with self._lock:
            record = self._runs.get(run_id)
        if record is None:
            raise KeyError(f"unknown run {run_id!r}")
        return record

    def runs(self) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._runs.values())
        return [r.summary() for r in records]

    def result(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The finished run's canonical :class:`RunResult` document
        (None while pending/running/failed)."""
        return self.get(run_id).result
