"""The asyncio HTTP/1.1 front end of the serving daemon.

Stdlib ``asyncio`` streams only -- no frameworks, no dependencies --
handling one request per connection (``Connection: close``), which
keeps the parser honest and the shutdown path trivial.  Routes:

* ``POST /runs`` -- submit ``{"scenario": ..., "engine"?, "seed"?,
  "budget"?}``; answers the run summary (``202`` pending, ``200`` on a
  cache hit) and schedules execution on the service's thread pool
  (each thread drives one fault-tolerant forked worker).
* ``GET /runs`` -- every known run's summary.
* ``GET /runs/<id>`` -- the exact canonical ``RunResult`` JSON once
  done; ``202`` + summary while in flight; ``500`` + summary if failed.
* ``GET /runs/<id>/stream`` -- chunked JSONL: tails the run's
  ``frames.jsonl``, forwarding each *complete* frame line as one chunk
  the moment it lands (mid-run progress snapshots, then the terminal
  ``done`` frame).  Only whole lines are forwarded, so a client never
  sees a torn frame regardless of when it connects.
* ``GET /metrics`` -- the service registry in Prometheus 0.0.4 text.
* ``GET /healthz`` -- liveness.
* ``POST /shutdown`` -- graceful: stop accepting, drain in-flight
  runs, then exit the serve loop (the CLI exits 0).

The server owns the only wall-clock reads in the package
(``time.monotonic`` feeding the request-rate metric and the stream
poll cadence); the service core and client are clock-free.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.serve.service import ScenarioService
from repro.telemetry.publish import validate_frame_dict

#: How often the stream endpoint re-polls frames.jsonl for new bytes.
STREAM_POLL_S = 0.05

#: Upper bound on request head + body we are willing to buffer.
MAX_REQUEST_BYTES = 1 << 20

_JSON = "application/json"
_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error"}


class ServeServer:
    """One :class:`ScenarioService` behind an asyncio socket server."""

    def __init__(self, service: ScenarioService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.service = service
        self.host = host
        self.port = port
        self.jobs = jobs
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor = ThreadPoolExecutor(max_workers=jobs)
        self._pending: Set[asyncio.Future] = set()
        self._shutdown = asyncio.Event()

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind and start accepting; resolves ``self.port`` when the
        caller asked for an ephemeral one (port 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Accept until ``POST /shutdown`` (or SIGINT/SIGTERM), then
        drain in-flight runs and close."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or unsupported platform
        await self._shutdown.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, wait for every scheduled run, release the
        worker threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        self._executor.shutdown(wait=True)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # ------------------------------------------------------------- plumbing

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                await self._respond(writer, 400,
                                    {"error": "malformed request"})
                return
            method, path, body = request
            self.service.record_request(now=time.monotonic())
            await self._route(writer, method, path, body)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse ``METHOD /path HTTP/1.1`` + headers + Content-Length
        body.  Returns None on anything malformed."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(head) > MAX_REQUEST_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                return None
            if n < 0 or n > MAX_REQUEST_BYTES:
                return None
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                return None
        return method, path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any, content_type: str = _JSON) -> None:
        if isinstance(payload, bytes):
            body = payload
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # --------------------------------------------------------------- routes

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
        elif path == "/metrics" and method == "GET":
            await self._respond(
                writer, 200, self.service.metrics_text(),
                content_type="text/plain; version=0.0.4")
        elif path == "/runs" and method == "POST":
            await self._post_run(writer, body)
        elif path == "/runs" and method == "GET":
            await self._respond(writer, 200,
                                {"runs": self.service.runs()})
        elif path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"ok": True,
                                              "shutting_down": True})
            self.request_shutdown()
        elif path.startswith("/runs/"):
            await self._run_routes(writer, method, path)
        else:
            await self._respond(writer, 404,
                                {"error": f"no route {method} {path}"})

    async def _post_run(self, writer: asyncio.StreamWriter,
                        body: bytes) -> None:
        try:
            doc = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            await self._respond(writer, 400,
                                {"error": "body is not JSON"})
            return
        if not isinstance(doc, dict) or not isinstance(
                doc.get("scenario"), str):
            await self._respond(
                writer, 400,
                {"error": "body must be {\"scenario\": <name>, ...}"})
            return
        try:
            record = self.service.submit(
                doc["scenario"], engine=doc.get("engine"),
                seed=doc.get("seed"), budget=doc.get("budget"))
        except (KeyError, ValueError, TypeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        if record.state == "pending":
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                self._executor, self.service.execute, record.run_id)
            self._pending.add(future)
            future.add_done_callback(self._pending.discard)
        status = 200 if record.cached else 202
        await self._respond(writer, status, record.summary())

    async def _run_routes(self, writer: asyncio.StreamWriter,
                          method: str, path: str) -> None:
        parts = path.strip("/").split("/")
        run_id = parts[1] if len(parts) > 1 else ""
        try:
            record = self.service.get(run_id)
        except KeyError:
            await self._respond(writer, 404,
                                {"error": f"unknown run {run_id!r}"})
            return
        if len(parts) == 2 and method == "GET":
            if record.state == "done" and record.result is not None:
                text = json.dumps(record.result) + "\n"
                await self._respond(writer, 200, text)
            elif record.state == "failed":
                await self._respond(writer, 500, record.summary())
            else:
                await self._respond(writer, 202, record.summary())
        elif len(parts) == 3 and parts[2] == "stream" and method == "GET":
            await self._stream(writer, record)
        else:
            await self._respond(writer, 405,
                                {"error": f"no route {method} {path}"})

    # ------------------------------------------------------------ streaming

    async def _stream(self, writer: asyncio.StreamWriter,
                      record: Any) -> None:
        """Tail the run's frames.jsonl as a chunked JSONL response.

        Forwards *complete* lines only (the publisher appends each
        frame in one line-atomic write, so a partial read can only be
        the in-progress tail -- buffered here until its newline
        arrives).  Terminates after the ``done`` frame, or once the
        run reaches a terminal state with no more bytes pending (a
        failed run closes the stream without a ``done`` frame)."""
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/jsonl\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        await writer.drain()
        offset = 0
        tail = b""
        sent = 0
        finished = False
        while not finished:
            # Sample the lifecycle state BEFORE reading: if it is
            # already terminal, every frame the worker will ever write
            # is on disk, so one empty read after this point really is
            # the end (no done-frame-after-our-read race).
            terminal = record.state in ("done", "failed")
            data = b""
            if os.path.exists(record.frames_path):
                with open(record.frames_path, "rb") as fh:
                    fh.seek(offset)
                    data = fh.read()
                offset += len(data)
            tail += data
            while b"\n" in tail:
                line, tail = tail.split(b"\n", 1)
                try:
                    frame = json.loads(line)
                except ValueError:
                    continue  # defensive: skip a corrupt line
                if validate_frame_dict(frame):
                    continue
                await self._write_chunk(writer, line + b"\n")
                sent += 1
                if frame.get("type") == "done":
                    finished = True
                    break
            if finished:
                break
            if not data and terminal:
                # terminal before the read and nothing new arrived: a
                # failed run ends here (no done frame will ever come)
                break
            if not data:
                await asyncio.sleep(STREAM_POLL_S)
        # The done frame is written by the worker moments before the
        # pool hands the result back to the service; hold the stream
        # open until the record itself is terminal so "consume the
        # stream" doubles as "wait for the run".  Only an actively
        # executing record can still become terminal -- and the wait is
        # bounded anyway, so a wedged state cannot hang the client.
        for _ in range(100):
            if record.state != "running":
                break
            await asyncio.sleep(STREAM_POLL_S)
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        self.service.record_stream_frames(sent)

    async def _write_chunk(self, writer: asyncio.StreamWriter,
                           payload: bytes) -> None:
        writer.write(f"{len(payload):x}\r\n".encode("latin-1")
                     + payload + b"\r\n")
        await writer.drain()


def serve_forever(service: ScenarioService, host: str, port: int, *,
                  jobs: int = 2, quiet: bool = False) -> int:
    """Blocking entry point for the CLI: serve until shutdown, exit 0
    on a graceful stop."""
    server = ServeServer(service, host, port, jobs=jobs)

    async def _main() -> None:
        await server.start()
        if not quiet:
            print(f"repro-serve listening on "
                  f"http://{server.host}:{server.port}", flush=True)
        await server.serve_until_shutdown()

    asyncio.run(_main())
    if not quiet:
        print("repro-serve: graceful shutdown complete", flush=True)
    return 0
