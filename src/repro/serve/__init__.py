"""``repro.serve``: the scenario-serving daemon.

Every CLI invocation pays interpreter start + registry build before a
single simulated command runs, and the observability the repo grew in
earlier PRs (telemetry histograms, span traces, monitor events) is
only visible after the fact.  This package turns the scenario suite
into a long-running service whose *product* is live observability:

* :class:`ScenarioService` -- the HTTP-independent core: submits
  :class:`~repro.scenarios.ScenarioSpec` runs onto the fault-tolerant
  process-per-task pool (:func:`repro.checkpoint.pool.run_tasks`),
  maintains the content-addressed :class:`ResultCache`, and feeds a
  service-level :class:`~repro.monitor.metrics.MetricsRegistry`.
* :class:`ServeServer` -- the asyncio HTTP/JSON front end (stdlib
  streams, no dependencies): ``POST /runs``, ``GET /runs/<id>``,
  chunked ``GET /runs/<id>/stream`` frame streaming while a run is in
  flight, Prometheus ``GET /metrics``, graceful ``POST /shutdown``.
* :class:`ServeClient` -- the stdlib ``http.client`` companion used by
  tests, benchmarks and the CI smoke job.

Layering: ``repro.serve`` sits in its own topmost lint layer -- it may
import everything, nothing else may import it -- so the hot path (and
every other subsystem) stays structurally free of the daemon.
"""

from repro.serve.cache import (
    ResultCache,
    cache_key,
    canonical_result_dict,
    code_version,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServeServer
from repro.serve.service import RunRecord, ScenarioService

__all__ = [
    "ResultCache",
    "RunRecord",
    "ScenarioService",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "cache_key",
    "canonical_result_dict",
    "code_version",
]
