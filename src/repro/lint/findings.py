"""The unit of lint output: one contract violation at one location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One violation of a statically checked contract.

    ``path`` is relative to the lint root (e.g. ``repro/sim/kernel.py``),
    ``symbol`` names the offending construct (a call, an imported module,
    a class) so baselines stay stable across unrelated line churn.
    """

    rule: str       #: rule code, e.g. "R1"
    name: str       #: rule slug, e.g. "determinism"
    path: str
    line: int
    col: int
    symbol: str
    message: str

    def key(self) -> str:
        """Line-independent identity used by baseline suppression."""
        return f"{self.rule} {self.path} {self.symbol}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "key": self.key(),
        }

    def render(self) -> str:
        """One-line human-readable form (path:line:col style)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}[{self.name}] {self.message}")
