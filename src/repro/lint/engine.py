"""The lint driver: files -> parsed modules -> rule findings.

Deterministic by construction: files are visited in sorted order, rules
in code order, and findings are reported sorted by (path, line, col,
rule) -- two runs over the same tree produce byte-identical output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo, iter_modules, parse_module
from repro.lint.registry import Rule, select_rules


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.col, f.rule, f.symbol))


def lint_modules(modules: Sequence[ModuleInfo], config: LintConfig,
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run rules over pre-parsed modules (the fixture-test entry)."""
    active = list(rules) if rules is not None else select_rules()
    findings: List[Finding] = []
    for module in modules:
        for rule in active:
            findings.extend(rule.check(module, config))
    return _sorted(findings)


def lint_source(source: str, relpath: str, config: LintConfig,
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one in-memory module (tests lint snippets this way)."""
    return lint_modules([parse_module(source, relpath)], config, rules)


def lint_paths(config: LintConfig,
               paths: Optional[Sequence[str]] = None,
               rules: Optional[Sequence[Rule]] = None,
               ) -> "tuple[List[Finding], int]":
    """Lint files/directories under the config root.

    ``paths`` defaults to the configured package directory.  Returns
    ``(findings, files_checked)``.
    """
    targets = list(paths) if paths else [config.package]
    modules = list(iter_modules(config.root, targets))
    return lint_modules(modules, config, rules), len(modules)
