"""The pluggable rule registry.

A rule is a stateless class with a ``code`` (``R1``...), a ``name``
slug, human docs, and a :meth:`Rule.check` that yields
:class:`~repro.lint.findings.Finding`s for one parsed module.  Rules
self-register via :func:`register_rule` at import time
(:mod:`repro.lint.rules` imports every rule module), so adding a rule is
one new file plus a config section -- the engine, CLI, reporter and
baseline machinery pick it up unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo


class Rule:
    """Base class: one statically checked contract."""

    #: Stable short code (``R1``); baseline keys and ``--rules`` use it.
    code: str = ""
    #: Slug shown in reports (``determinism``).
    name: str = ""
    #: One-line contract statement.
    summary: str = ""
    #: The dynamic suite this rule front-runs (docs/--list-rules).
    complements: str = ""

    def check(self, module: ModuleInfo,
              config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, line: int, col: int,
                symbol: str, message: str) -> Finding:
        return Finding(rule=self.code, name=self.name, path=module.path,
                       line=line, col=col, symbol=symbol, message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (unique ``code``)."""
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs a code and a name")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, instantiated, in code order."""
    import repro.lint.rules  # noqa: F401  (registers on first import)
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def select_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """Rules to run: all of them, or the requested codes/names."""
    rules = all_rules()
    if codes is None:
        return rules
    by_key = {rule.code: rule for rule in rules}
    by_key.update({rule.name: rule for rule in rules})
    picked = []
    for code in codes:
        if code not in by_key:
            known = sorted({r.code for r in rules} | {r.name for r in rules})
            raise ValueError(
                f"unknown rule {code!r} (choose from {known})")
        rule = by_key[code]
        if rule not in picked:
            picked.append(rule)
    return sorted(picked, key=lambda r: r.code)
