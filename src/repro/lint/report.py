"""Finding reporters: human text and a versioned JSON document."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import Rule

#: Schema version of ``--json`` documents.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files: int,
                suppressed: int = 0) -> str:
    """The default human report (one line per finding + summary)."""
    lines = [f.render() for f in findings]
    tail = (f"{len(findings)} finding(s) in {files} file(s)"
            + (f", {suppressed} suppressed by baseline" if suppressed
               else ""))
    if not findings:
        tail = f"clean: 0 findings in {files} file(s)" \
            + (f" ({suppressed} suppressed by baseline)" if suppressed
               else "")
    lines.append(tail)
    return "\n".join(lines) + "\n"


def build_report(findings: Sequence[Finding], files: int,
                 rules: Sequence[Rule], config_path: str,
                 suppressed: Sequence[Finding] = ()) -> Dict[str, Any]:
    """The ``--json`` document (schema asserted by tests/lint)."""
    by_rule = {rule.code: 0 for rule in rules}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "config": config_path,
        "rules": [{"code": rule.code, "name": rule.name,
                   "summary": rule.summary,
                   "complements": rule.complements}
                  for rule in rules],
        "findings": [f.to_dict() for f in findings],
        "suppressed": [f.to_dict() for f in suppressed],
        "summary": {
            "files": files,
            "findings": len(findings),
            "suppressed": len(suppressed),
            "by_rule": by_rule,
        },
    }


def validate_report_dict(doc: Any) -> List[str]:
    """Schema problems of a report document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["report must be a JSON object"]
    if doc.get("version") != REPORT_VERSION:
        problems.append(f"version must be {REPORT_VERSION}")
    if doc.get("tool") != "repro-lint":
        problems.append("tool must be 'repro-lint'")
    for field in ("rules", "findings", "suppressed"):
        if not isinstance(doc.get(field), list):
            problems.append(f"{field} must be a list")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary must be an object")
    else:
        for field in ("files", "findings", "suppressed"):
            if not isinstance(summary.get(field), int):
                problems.append(f"summary.{field} must be an int")
        if not isinstance(summary.get("by_rule"), dict):
            problems.append("summary.by_rule must be an object")
    if isinstance(doc.get("findings"), list):
        for i, entry in enumerate(doc["findings"]):
            if not isinstance(entry, dict):
                problems.append(f"findings[{i}] must be an object")
                continue
            for field in ("rule", "name", "path", "symbol", "message",
                          "key"):
                if not isinstance(entry.get(field), str):
                    problems.append(f"findings[{i}].{field} must be a str")
            for field in ("line", "col"):
                if not isinstance(entry.get(field), int):
                    problems.append(f"findings[{i}].{field} must be an int")
    return problems
