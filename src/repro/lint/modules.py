"""Source collection and parsing: files -> :class:`ModuleInfo`.

Every rule sees the same pre-parsed view of a module -- its root-relative
path, dotted module name and ``ast`` tree -- so the tree is parsed once
per file regardless of how many rules run.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module."""

    #: Path relative to the lint root, with forward slashes
    #: (e.g. ``repro/sim/kernel.py``) -- the form config allowlists use.
    path: str
    #: Dotted module name (``repro.sim.kernel``; packages drop
    #: ``.__init__``).
    module: str
    tree: ast.Module


class LintSyntaxError(ValueError):
    """A file under lint does not parse."""


def module_name(relpath: str) -> str:
    """Dotted module name of a root-relative path."""
    parts = relpath.replace(os.sep, "/").split("/")
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def parse_module(source: str, relpath: str) -> ModuleInfo:
    """Parse one module from source text (fixture tests use this too)."""
    relpath = relpath.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        raise LintSyntaxError(f"{relpath}: {exc}") from exc
    return ModuleInfo(path=relpath, module=module_name(relpath), tree=tree)


def collect_files(root: str, paths: Sequence[str]) -> List[str]:
    """Resolve lint targets to a sorted list of root-relative .py paths.

    ``paths`` entries may be absolute or root-relative, files or
    directories; directories are walked recursively (``__pycache__``
    skipped).  Order is deterministic: sorted by relative path.
    """
    found = set()
    for target in paths:
        absolute = target if os.path.isabs(target) \
            else os.path.join(root, target)
        absolute = os.path.normpath(absolute)
        if os.path.isfile(absolute):
            found.add(os.path.relpath(absolute, root))
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                for name in filenames:
                    if name.endswith(".py"):
                        found.add(os.path.relpath(
                            os.path.join(dirpath, name), root))
        else:
            raise FileNotFoundError(f"no such lint target: {target}")
    return sorted(p.replace(os.sep, "/") for p in found)


def iter_modules(root: str, paths: Sequence[str]) -> Iterator[ModuleInfo]:
    """Parse every target file under ``root`` in deterministic order."""
    for relpath in collect_files(root, paths):
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            source = fh.read()
        yield parse_module(source, relpath)
