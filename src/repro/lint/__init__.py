"""Static contract checking for the reproduction (``repro-lint``).

The repo's load-bearing guarantees -- byte-identical engines,
resume-identity, structural absence of slow-path machinery from the
command loop -- are enforced dynamically by identity suites and
differential fuzz.  This package enforces the same contracts
*statically*, at review time, with a stdlib-``ast`` rule pass driven by
the declarative config in ``repro-lint.toml``:

* **R1 determinism** -- no wall-clock/entropy calls; randomness only via
  explicitly seeded ``random.Random``,
* **R2 layering** -- hot-path packages never import checkpoint/
  scenarios/telemetry-collector machinery (layer DAG in config; the
  ``Probe`` protocol module is the sanctioned crossing),
* **R3 atomic persistence** -- JSON reaches disk only through
  :mod:`repro.checkpoint.atomic`,
* **R4 serialization pairing** -- ``state_dict``/``load_state`` and
  ``to_json``/``from_json`` come in pairs,
* **R5 spec immutability** -- spec dataclasses are ``frozen=True``.

Run it with ``repro-lint`` or ``python -m repro.lint``; the rule
registry (:mod:`repro.lint.registry`) is pluggable -- see
:mod:`repro.lint.rules` for how to add a rule.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import (
    CONFIG_NAME,
    Layer,
    LintConfig,
    LintConfigError,
    find_config,
    load_config,
)
from repro.lint.engine import lint_modules, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.modules import (
    LintSyntaxError,
    ModuleInfo,
    collect_files,
    iter_modules,
    module_name,
    parse_module,
)
from repro.lint.registry import Rule, all_rules, register_rule, select_rules
from repro.lint.report import (
    REPORT_VERSION,
    build_report,
    render_text,
    validate_report_dict,
)

__all__ = [
    "CONFIG_NAME",
    "REPORT_VERSION",
    "Finding",
    "Layer",
    "LintConfig",
    "LintConfigError",
    "LintSyntaxError",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "apply_baseline",
    "build_report",
    "collect_files",
    "find_config",
    "iter_modules",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "module_name",
    "parse_module",
    "register_rule",
    "render_text",
    "select_rules",
    "validate_report_dict",
    "write_baseline",
]
