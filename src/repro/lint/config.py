"""Loader for ``repro-lint.toml``: the declarative contract config.

The config is the single source of truth for what the rules enforce --
the determinism ban list and its per-file allowances, the import-layer
DAG, the atomic-persistence sanctuary, the serialization method pairs
and the frozen-spec modules.  Rules receive a :class:`LintConfig` and
never hard-code repo facts, so tightening a contract is a config edit,
not a code change.
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

#: Default config file name, looked up from the current directory upward.
CONFIG_NAME = "repro-lint.toml"


class LintConfigError(ValueError):
    """The config file is missing, unparseable or self-inconsistent."""


@dataclass(frozen=True)
class Layer:
    """One layer of the import DAG."""

    name: str
    packages: Tuple[str, ...]
    may_import: FrozenSet[str]


@dataclass(frozen=True)
class LintConfig:
    """Parsed, validated contract configuration."""

    #: Absolute path of the config file (diagnostics only).
    source: str
    #: Absolute source root (``root`` key resolved against the config dir).
    root: str
    #: Package under ``root`` to lint by default.
    package: str

    # R1
    banned_calls: Tuple[str, ...]
    seeded_factories: Tuple[str, ...]
    determinism_allow: Mapping[str, Tuple[str, ...]]

    # R2
    layers: Tuple[Layer, ...]

    # R3
    atomic_allowed_in: Tuple[str, ...]

    # R4
    serialization_pairs: Tuple[Tuple[str, str], ...]
    serialization_allow: Tuple[str, ...]

    # R5
    spec_modules: Tuple[str, ...]
    spec_class_suffixes: Tuple[str, ...]

    #: module-prefix -> layer, longest prefix wins (see :meth:`layer_of`).
    _layer_index: Mapping[str, Layer] = field(default_factory=dict)

    def layer_of(self, module: str) -> Optional[Layer]:
        """The layer ``module`` belongs to, by longest-prefix match
        (``repro.telemetry.probe`` beats ``repro.telemetry``), or None
        for unlayered modules."""
        parts = module.split(".")
        for cut in range(len(parts), 0, -1):
            layer = self._layer_index.get(".".join(parts[:cut]))
            if layer is not None:
                return layer
        return None


def find_config(start: Optional[str] = None) -> str:
    """Locate ``repro-lint.toml`` from ``start`` (default: cwd) upward."""
    here = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(here, CONFIG_NAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            raise LintConfigError(
                f"no {CONFIG_NAME} found from {start or os.getcwd()} upward")
        here = parent


def _table(doc: Mapping[str, Any], *keys: str) -> Mapping[str, Any]:
    node: Any = doc
    for key in keys:
        if not isinstance(node, Mapping) or key not in node:
            return {}
        node = node[key]
    return node if isinstance(node, Mapping) else {}


def _str_list(value: Any, where: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value):
        raise LintConfigError(f"{where} must be a list of strings")
    return tuple(value)


def load_config(path: Optional[str] = None) -> LintConfig:
    """Parse and validate a config file (default: nearest one upward)."""
    resolved = os.path.abspath(path) if path else find_config()
    try:
        with open(resolved, "rb") as fh:
            doc = tomllib.load(fh)
    except OSError as exc:
        raise LintConfigError(f"cannot read {resolved}: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"{resolved} is not valid TOML: {exc}") from exc

    base = _table(doc, "lint")
    root_rel = base.get("root", "src")
    package = base.get("package", "repro")
    if not isinstance(root_rel, str) or not isinstance(package, str):
        raise LintConfigError("[lint] root and package must be strings")
    root = os.path.normpath(
        os.path.join(os.path.dirname(resolved), root_rel))

    det = _table(doc, "rules", "determinism")
    banned = _str_list(det.get("banned", []), "[rules.determinism] banned")
    factories = _str_list(det.get("seeded_factories", []),
                          "[rules.determinism] seeded_factories")
    allow_raw = _table(doc, "rules", "determinism", "allow")
    allow = {key: _str_list(value, f"[rules.determinism.allow] {key}")
             for key, value in allow_raw.items()}

    layer_tables = _table(doc, "rules", "layering", "layers")
    layers: List[Layer] = []
    for name, body in layer_tables.items():
        if not isinstance(body, Mapping):
            raise LintConfigError(f"layer {name!r} must be a table")
        layers.append(Layer(
            name=name,
            packages=_str_list(body.get("packages", []),
                               f"layer {name!r} packages"),
            may_import=frozenset(_str_list(body.get("may_import", []),
                                           f"layer {name!r} may_import")),
        ))
    names = {layer.name for layer in layers}
    index: Dict[str, Layer] = {}
    for layer in layers:
        unknown = layer.may_import - names
        if unknown:
            raise LintConfigError(
                f"layer {layer.name!r} may_import unknown layers "
                f"{sorted(unknown)}")
        for prefix in layer.packages:
            if prefix in index:
                raise LintConfigError(
                    f"package {prefix!r} claimed by layers "
                    f"{index[prefix].name!r} and {layer.name!r}")
            index[prefix] = layer

    atomic = _table(doc, "rules", "atomic-json")
    atomic_allow = _str_list(atomic.get("allowed_in", []),
                             "[rules.atomic-json] allowed_in")

    ser = _table(doc, "rules", "serialization")
    pairs_raw = ser.get("pairs", [])
    if not isinstance(pairs_raw, list):
        raise LintConfigError("[rules.serialization] pairs must be a list")
    pairs: List[Tuple[str, str]] = []
    for entry in pairs_raw:
        if (not isinstance(entry, list) or len(entry) != 2
                or not all(isinstance(v, str) for v in entry)):
            raise LintConfigError(
                "[rules.serialization] each pair must be two method names")
        pairs.append((entry[0], entry[1]))
    ser_allow = _str_list(ser.get("allow", []),
                          "[rules.serialization] allow")

    spec = _table(doc, "rules", "frozen-spec")
    spec_modules = _str_list(spec.get("modules", []),
                             "[rules.frozen-spec] modules")
    suffixes = _str_list(spec.get("class_suffixes", []),
                         "[rules.frozen-spec] class_suffixes")

    return LintConfig(
        source=resolved,
        root=root,
        package=package,
        banned_calls=banned,
        seeded_factories=factories,
        determinism_allow=allow,
        layers=tuple(layers),
        atomic_allowed_in=atomic_allow,
        serialization_pairs=tuple(pairs),
        serialization_allow=ser_allow,
        spec_modules=spec_modules,
        spec_class_suffixes=suffixes,
        _layer_index=index,
    )
