"""Baseline suppression: adopt the linter on a dirty tree, ratchet down.

A baseline file records the :meth:`~repro.lint.findings.Finding.key` of
known findings; ``--baseline`` filters them from the exit-code-relevant
set (they are still counted as suppressed).  The committed baseline is
*empty* -- every violation the rules surfaced was fixed in the PR that
introduced them -- and must stay that way; the file format exists so a
future, stricter rule can land green and be ratcheted.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Tuple

from repro.checkpoint.atomic import write_text_atomic
from repro.lint.findings import Finding

#: Schema version of baseline documents.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or malformed."""


def load_baseline(path: str) -> List[str]:
    """Suppressed finding keys from a baseline document."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if (not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION
            or not isinstance(doc.get("suppress"), list)
            or not all(isinstance(k, str) for k in doc["suppress"])):
        raise BaselineError(
            f"baseline {path} must be "
            f'{{"version": {BASELINE_VERSION}, "suppress": [keys...]}}')
    return list(doc["suppress"])


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Persist the keys of ``findings`` as a baseline (atomic, sorted,
    deduplicated).  Returns the number of suppressed keys."""
    keys = sorted({f.key() for f in findings})
    doc = {"version": BASELINE_VERSION, "suppress": keys}
    write_text_atomic(path, json.dumps(doc, indent=2) + "\n")
    return len(keys)


def apply_baseline(findings: Sequence[Finding], suppressed_keys: Sequence[str]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (live, suppressed) against a baseline."""
    keys = set(suppressed_keys)
    live = [f for f in findings if f.key() not in keys]
    gone = [f for f in findings if f.key() in keys]
    return live, gone
