"""``repro-lint``: the static contract checker's command line.

Exit codes follow lint convention:

* ``0`` -- clean (no live findings),
* ``1`` -- contract violations found,
* ``2`` -- usage, config or parse error (argparse uses 2 as well).

``python -m repro.lint`` is the same program (see ``__main__.py``); the
console script is registered in ``pyproject.toml``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.checkpoint.atomic import write_text_atomic
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.config import LintConfigError, load_config
from repro.lint.engine import lint_paths
from repro.lint.modules import LintSyntaxError
from repro.lint.registry import select_rules
from repro.lint.report import build_report, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("AST contract checker: enforces the repo's "
                     "determinism, layering, atomic-persistence, "
                     "serialization-pairing and spec-immutability "
                     "invariants statically (config: repro-lint.toml)"))
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories relative to the configured root "
             "(default: the configured package)")
    parser.add_argument(
        "--config", metavar="FILE",
        help="config file (default: nearest repro-lint.toml upward)")
    parser.add_argument(
        "--rules", action="append", metavar="CODES",
        help="comma-separated rule codes or names to run "
             "(default: all; repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    parser.add_argument(
        "--json", nargs="?", const="-", metavar="FILE",
        help="emit the JSON report to FILE (atomic) or stdout ('-')")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings whose keys appear in this baseline")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record current findings as the new baseline and exit 0")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human report (exit code / --json only)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    codes: Optional[List[str]] = None
    if args.rules:
        codes = [code.strip() for chunk in args.rules
                 for code in chunk.split(",") if code.strip()]

    try:
        rules = select_rules(codes)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name:14s} {rule.summary}")
            if rule.complements:
                print(f"    complements: {rule.complements}")
        return EXIT_CLEAN

    try:
        config = load_config(args.config)
        findings, files = lint_paths(config, args.paths or None, rules)
    except (LintConfigError, LintSyntaxError, FileNotFoundError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings)
        if not args.quiet:
            print(f"wrote baseline {args.write_baseline}: "
                  f"{count} suppressed key(s)")
        return EXIT_CLEAN

    suppressed = []
    if args.baseline:
        try:
            findings, suppressed = apply_baseline(
                findings, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return EXIT_ERROR

    if args.json:
        doc = build_report(findings, files, rules, config.source,
                           suppressed)
        text = json.dumps(doc, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            write_text_atomic(args.json, text)

    if not args.quiet and args.json != "-":
        sys.stdout.write(render_text(findings, files, len(suppressed)))

    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
