"""R3 -- atomic persistence: JSON reaches disk only via atomic.py.

PR 6 made write-temp-fsync-rename (:mod:`repro.checkpoint.atomic`) the
rule everywhere results persist: a reader (resumed sweep, CI diff,
concurrent benchmark) must never observe a torn artifact.  This rule
flags the two syntactic shapes that bypass it:

* a direct ``json.dump(obj, fh)`` call,
* ``fh.write(json.dumps(...))`` / ``fh.write(... json.dumps ...)``
  where ``fh`` is bound by ``with open(path, "w"/"a"/"x") as fh``
  in an enclosing statement,

anywhere outside the configured sanctuary (``checkpoint/atomic.py``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo
from repro.lint.registry import Rule, register_rule
from repro.lint.rules.determinism import collect_aliases, resolve_call_chain

#: ``open()`` mode characters that can clobber an artifact.
_WRITE_MODES = ("w", "a", "x")


def _is_write_open(node: ast.AST) -> bool:
    """True for ``open(..., "w")``-shaped calls (literal write mode)."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "open"):
        return False
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # default "r"
    return (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            and any(ch in mode.value for ch in _WRITE_MODES))


def _contains_json_dumps(node: ast.AST, aliases: Dict[str, str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            qual = resolve_call_chain(sub.func, aliases)
            if qual == "json.dumps":
                return True
    return False


@register_rule
class AtomicJsonRule(Rule):
    code = "R3"
    name = "atomic-json"
    summary = ("persisting JSON must go through checkpoint/atomic.py "
               "(temp + fsync + rename), never a bare write")
    complements = ("crash-safe journal / torn-doc re-run tests "
                   "(tests/checkpoint/test_pool.py)")

    def check(self, module: ModuleInfo,
              config: LintConfig) -> Iterator[Finding]:
        if module.path in config.atomic_allowed_in:
            return
        aliases = collect_aliases(module.tree)

        # Names bound to writable handles by any `with open(..., "w")`.
        write_handles: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (_is_write_open(item.context_expr)
                            and isinstance(item.optional_vars, ast.Name)):
                        write_handles.add(item.optional_vars.id)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = resolve_call_chain(node.func, aliases)
            if qual == "json.dump":
                yield self.finding(
                    module, node.lineno, node.col_offset, "json.dump",
                    "json.dump to an open file can be observed torn; "
                    "use repro.checkpoint.atomic.write_json_atomic")
                continue
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "write"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in write_handles
                    and any(_contains_json_dumps(arg, aliases)
                            for arg in node.args)):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{node.func.value.id}.write(json.dumps)",
                    "writing json.dumps output to a \"w\"-mode file "
                    "bypasses atomic persistence; use "
                    "repro.checkpoint.atomic.write_text_atomic")
