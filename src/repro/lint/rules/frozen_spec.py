"""R5 -- spec immutability: declarative specs are frozen dataclasses.

``ScenarioSpec`` and its sub-specs are hashed into cache keys, carried
across process boundaries by the sweep pool, embedded in persisted
``RunResult`` documents and shared between scenarios by the registry.
A mutable spec silently breaks all of that (two runs of "the same"
scenario need not be the same).  The rule requires ``frozen=True`` on
every dataclass in the configured spec modules and on any dataclass
whose name carries a configured suffix (``*Spec``) anywhere in the
tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo
from repro.lint.registry import Rule, register_rule


def dataclass_frozen(node: ast.ClassDef) -> Optional[bool]:
    """None if ``node`` is not a dataclass, else its frozen-ness.

    Handles ``@dataclass``, ``@dataclass(...)`` and the
    ``dataclasses.``-qualified forms; only a literal ``frozen=True``
    counts (a computed value cannot be verified statically).
    """
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", None)
        if name != "dataclass":
            continue
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "frozen":
                    return (isinstance(kw.value, ast.Constant)
                            and kw.value.value is True)
        return False
    return None


@register_rule
class FrozenSpecRule(Rule):
    code = "R5"
    name = "frozen-spec"
    summary = ("dataclasses in spec modules and *Spec dataclasses "
               "everywhere must declare frozen=True")
    complements = ("spec validation tests (tests/scenarios/test_spec.py)")

    def check(self, module: ModuleInfo,
              config: LintConfig) -> Iterator[Finding]:
        spec_module = module.path in config.spec_modules
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            by_name = any(node.name.endswith(suffix)
                          for suffix in config.spec_class_suffixes)
            if not (spec_module or by_name):
                continue
            frozen = dataclass_frozen(node)
            if frozen is None or frozen:
                continue
            why = (f"dataclasses in spec module {module.path}"
                   if spec_module else
                   f"spec-named dataclasses (*{'/'.join(config.spec_class_suffixes)})")
            yield self.finding(
                module, node.lineno, node.col_offset, node.name,
                f"dataclass {node.name} must declare frozen=True: "
                f"{why} are shared, hashed and persisted")
