"""Rule modules; importing this package registers every rule.

Adding a rule: create a module here with a ``@register_rule`` class
(subclass :class:`repro.lint.registry.Rule`), give it a fresh ``code``,
document the invariant it guards, add its config section to
``repro-lint.toml`` and a violating/clean fixture pair to
``tests/lint/``.  Nothing else changes -- the engine, CLI, reporter and
baseline machinery discover it through the registry.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import = registration)
    atomic_json,
    determinism,
    frozen_spec,
    layering,
    serialization,
)
