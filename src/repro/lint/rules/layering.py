"""R2 -- import layering: the hot path never imports the slow path.

The paper's core discipline is placement: queue-management state the
fast path touches lives in SRAM, everything slower stays out of the
loop.  Applied to this codebase, the command-loop packages (``sim``,
``engines``, ``queueing``, ``mem``, ``core``, ``policies``) must be
*structurally* free of checkpoint, scenario and telemetry-collector
machinery -- not just "disabled", absent.  The layer DAG lives in
``repro-lint.toml``; membership is by longest module-prefix match, which
is how ``repro.telemetry.probe`` (the sanctioned Probe-protocol
crossing) escapes its slow parent package.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo
from repro.lint.registry import Rule, register_rule


def imported_modules(module: ModuleInfo) -> List[Tuple[str, int, int]]:
    """Every module the file imports, as ``(dotted_name, line, col)``.

    Relative imports are resolved against the module's own dotted name;
    ``from M import N`` reports ``M`` (``N`` may be a class), except
    when ``M`` is a package and ``N`` a submodule -- the conservative
    choice is still ``M``: layering constrains *packages*, and a
    submodule of a forbidden package makes its parent name forbidden
    too (prefix matching in the config handles both).
    """
    out: List[Tuple[str, int, int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                out.append((item.name, node.lineno, node.col_offset))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # relative: climb `level` packages from this module
                parts = module.module.split(".")
                base = parts[:-node.level] if node.level < len(parts) else []
                target = ".".join(base + ([node.module] if node.module
                                          else []))
            else:
                target = node.module or ""
            if target:
                out.append((target, node.lineno, node.col_offset))
    return out


@register_rule
class LayeringRule(Rule):
    code = "R2"
    name = "layering"
    summary = ("hot-path packages may not import checkpoint/scenarios/"
               "telemetry-collector machinery (layer DAG in config)")
    complements = ("structural-absence tests "
                   "(tests/checkpoint/test_runs.py)")

    def check(self, module: ModuleInfo,
              config: LintConfig) -> Iterator[Finding]:
        layer = config.layer_of(module.module)
        if layer is None:
            return
        for target, line, col in imported_modules(module):
            target_layer = config.layer_of(target)
            if target_layer is None or target_layer.name == layer.name:
                continue
            if target_layer.name not in layer.may_import:
                yield self.finding(
                    module, line, col, target,
                    f"layer {layer.name!r} ({module.module}) may not "
                    f"import layer {target_layer.name!r} ({target}); "
                    f"allowed: {sorted(layer.may_import)}")
