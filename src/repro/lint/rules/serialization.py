"""R4 -- serialization pairing: snapshot halves must come in pairs.

Resume-identity (:mod:`repro.checkpoint`) depends on every snapshotable
object being restorable: a class that grows a ``state_dict`` without a
``load_state`` (or a ``to_json`` without a ``from_json``) can be saved
into a checkpoint that nothing can ever load -- a break the identity
fuzz only notices once such a checkpoint is actually resumed.  The rule
flags any class body defining exactly one half of a configured pair;
classes inheriting the counterpart can be listed in the config
allowance (``"path::ClassName"``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo
from repro.lint.registry import Rule, register_rule


@register_rule
class SerializationPairRule(Rule):
    code = "R4"
    name = "serialization"
    summary = ("a class defining state_dict must define load_state "
               "(and to_json <-> from_json)")
    complements = ("resume-identity fuzz "
                   "(tests/checkpoint/test_resume_identity.py)")

    def check(self, module: ModuleInfo,
              config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if f"{module.path}::{node.name}" in config.serialization_allow:
                continue
            methods = {item.name for item in node.body
                       if isinstance(item, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            for save, load in config.serialization_pairs:
                present = methods & {save, load}
                if len(present) != 1:
                    continue
                have = present.pop()
                missing = load if have == save else save
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{node.name}.{missing}",
                    f"class {node.name} defines {have} but not "
                    f"{missing}: an unpaired serialization half breaks "
                    f"checkpoint/resume identity")
