"""R1 -- determinism: no wall clocks, no ambient entropy.

Every engine-identity and resume-identity guarantee in this repo rests
on runs being pure functions of (spec, seed).  One ``time.time()`` or
module-level ``random.*`` call anywhere under ``src/repro`` silently
voids that.  The rule bans the configured clock/entropy calls and the
shared-global-state ``random`` module wholesale; explicitly seeded
``random.Random(seed)`` construction is the one sanctioned source of
randomness, and per-file config allowances cover wall-clock reads that
never feed simulated results (run timing, pool timeouts).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.modules import ModuleInfo
from repro.lint.registry import Rule, register_rule


def resolve_call_chain(node: ast.AST,
                       aliases: Dict[str, str]) -> Optional[str]:
    """Qualified dotted name of an expression like ``t.perf_counter``,
    given the module's import aliases, or None if the chain is not
    rooted at an imported name."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the qualified names their imports bind
    (any scope: conditional and function-local imports count too)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[(item.asname or item.name).split(".")[0]] = \
                    item.name if item.asname else item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and not node.level:
            for item in node.names:
                if node.module and item.name != "*":
                    aliases[item.asname or item.name] = \
                        f"{node.module}.{item.name}"
    return aliases


@register_rule
class DeterminismRule(Rule):
    code = "R1"
    name = "determinism"
    summary = ("no wall-clock or entropy calls under src/repro; "
               "randomness only via explicitly seeded random.Random")
    complements = ("engine-identity suites and differential fuzz "
                   "(tests/engines, tests/checkpoint)")

    def check(self, module: ModuleInfo,
              config: LintConfig) -> Iterator[Finding]:
        allowed = set(config.determinism_allow.get(module.path, ()))
        aliases = collect_aliases(module.tree)
        seeded = set(config.seeded_factories)
        seeded_modules = {f.rsplit(".", 1)[0] for f in seeded}

        def verdict(qual: str, module_root: bool = False) -> Optional[str]:
            """Why ``qual`` is banned, or None if it is fine.

            ``module_root`` marks a plain ``import X``: importing the
            ``random`` module itself is how seeded instances are built,
            so only the outright-banned entries apply there.
            """
            if qual in allowed:
                return None
            if qual in seeded:
                return None  # call sites check the seed argument
            for entry in config.banned_calls:
                if qual == entry or qual.startswith(entry + "."):
                    return (f"call to {qual} is nondeterministic "
                            f"(banned by [rules.determinism])")
            if module_root:
                return None
            for mod in seeded_modules:
                if qual == mod or qual.startswith(mod + "."):
                    return (f"module-level {qual} uses hidden global "
                            f"state; use an explicitly seeded "
                            f"{', '.join(sorted(seeded))} instance")
            return None

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and not node.level \
                    and node.module:
                for item in node.names:
                    if item.name == "*":
                        continue
                    qual = f"{node.module}.{item.name}"
                    why = verdict(qual)
                    if why:
                        yield self.finding(
                            module, node.lineno, node.col_offset, qual,
                            f"importing {qual}: {why}")
            elif isinstance(node, ast.Import):
                for item in node.names:
                    why = verdict(item.name, module_root=True)
                    if why:
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            item.name, f"importing {item.name}: {why}")
            elif isinstance(node, ast.Call):
                qual = resolve_call_chain(node.func, aliases)
                if qual is None:
                    continue
                if qual in seeded and qual not in allowed:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module, node.lineno, node.col_offset, qual,
                            f"{qual}() without a seed is entropy-seeded; "
                            f"pass an explicit seed")
                    continue
                why = verdict(qual)
                if why:
                    yield self.finding(module, node.lineno,
                                       node.col_offset, qual, why)
