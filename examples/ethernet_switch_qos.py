#!/usr/bin/env python3
"""802.1p QoS Ethernet switching over the MMS.

A 4-port learning switch forwards a bursty IMIX-like mix of high-priority
voice frames and low-priority bulk frames between hosts; egress serves
strict priority.  Shows the per-flow queuing application the paper's
intro motivates ("Ethernet switching (with QoS e.g. 802.1p, 802.1q)").

Run:  python examples/ethernet_switch_qos.py
"""

import random

from repro.apps import QosEthernetSwitch, SwitchConfig
from repro.net import Packet


def main() -> None:
    rng = random.Random(2005)
    sw = QosEthernetSwitch(SwitchConfig(num_ports=4))

    hosts = {"A": 0, "B": 1, "C": 2, "D": 3}
    # teach the switch where everyone lives
    for mac, port in hosts.items():
        sw.ingress(port, Packet(64, fields={
            "src_mac": mac, "dst_mac": "broadcast", "pcp": 0}))
    # drain the learning floods
    for port in range(4):
        while sw.egress(port) is not None:
            pass

    # traffic: voice (pcp 6, 64 B) and bulk (pcp 1, 1500 B) into port B
    sent = {"voice": [], "bulk": []}
    for _ in range(40):
        src = rng.choice(["A", "C", "D"])
        if rng.random() < 0.4:
            f = Packet(64, fields={"src_mac": src, "dst_mac": "B", "pcp": 6})
            sent["voice"].append(f.pid)
        else:
            f = Packet(1500, fields={"src_mac": src, "dst_mac": "B", "pcp": 1})
            sent["bulk"].append(f.pid)
        sw.ingress(hosts[src], f)

    print(f"queued at port B: {sw.queued_frames(1)} frames "
          f"({len(sent['voice'])} voice, {len(sent['bulk'])} bulk)")

    # egress: strict priority means every voice frame leaves first
    order = []
    while True:
        frame = sw.egress(1)
        if frame is None:
            break
        order.append("voice" if frame.fields["pcp"] == 6 else "bulk")

    first_bulk = order.index("bulk") if "bulk" in order else len(order)
    assert all(kind == "voice" for kind in order[:first_bulk])
    print(f"transmitted {len(order)} frames; "
          f"all {first_bulk} voice frames left before any bulk frame")
    print(f"MAC table: {sw.mac_table}")
    print(f"MMS free segments remaining: {sw.mms.pqm.free_segments}")


if __name__ == "__main__":
    main()
