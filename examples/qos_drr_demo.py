#!/usr/bin/env python3
"""QoS egress scheduling over MMS flow queues: strict priority vs DRR.

Three tenants share an egress link: a voice flow (small packets), a
video flow (medium), and a bulk flow (jumbo).  Strict priority starves
bulk entirely; deficit round robin shares bytes by weight.  Both
schedulers drive ordinary MMS dequeue commands underneath.

Run:  python examples/qos_drr_demo.py
"""

from repro.core import MMS, MmsConfig
from repro.core.qos import DeficitRoundRobin, StrictPriorityScheduler
from repro.net import Packet

VOICE, VIDEO, BULK = 0, 1, 2
NAMES = {VOICE: "voice", VIDEO: "video", BULK: "bulk"}


def load_traffic(mms: MMS) -> None:
    sizes = {VOICE: 64, VIDEO: 320, BULK: 1024}
    counts = {VOICE: 60, VIDEO: 30, BULK: 12}
    for flow, size in sizes.items():
        for _ in range(counts[flow]):
            for cmd in mms.segmentation.segment(Packet(size, flow_id=flow)):
                mms.apply(cmd)
    for flow in (VOICE, VIDEO, BULK):
        print(f"  {NAMES[flow]:>5}: {mms.pqm.queued_packets(flow):>3} packets "
              f"({mms.pqm.queued_segments(flow) * 64:>5} buffered bytes)")


def main() -> None:
    print("loading identical traffic into two MMS instances...")
    mms_sp = MMS(MmsConfig(num_flows=3, num_segments=4096,
                           num_descriptors=2048))
    mms_drr = MMS(MmsConfig(num_flows=3, num_segments=4096,
                            num_descriptors=2048))
    load_traffic(mms_sp)
    load_traffic(mms_drr)

    budget = 48  # packets the egress link can send in our window

    print(f"\nstrict priority (voice > video > bulk), {budget} packets:")
    sp = StrictPriorityScheduler(mms_sp, flows=[VOICE, VIDEO, BULK])
    sp_bytes = {f: 0 for f in (VOICE, VIDEO, BULK)}
    for _ in range(budget):
        pkt = sp.next_packet()
        if pkt is None:
            break
        sp_bytes[pkt.flow] += pkt.length_bytes
    for flow, count in sp_bytes.items():
        print(f"  {NAMES[flow]:>5}: {count:>6} bytes")

    print(f"\ndeficit round robin (weights voice:video:bulk = 2:1:1), "
          f"{budget} packets:")
    drr = DeficitRoundRobin(mms_drr, flows=[VOICE, VIDEO, BULK],
                            weights=[2.0, 1.0, 1.0], quantum_bytes=1024)
    shares = drr.drain_fair_shares(budget)
    for flow, count in shares.items():
        print(f"  {NAMES[flow]:>5}: {count:>6} bytes")

    assert sp_bytes[BULK] == 0, "strict priority should starve bulk here"
    assert shares[BULK] > 0, "DRR must serve bulk its share"
    print("\nstrict priority starved bulk; DRR gave every tenant "
          "its weighted byte share -- same MMS commands underneath.")


if __name__ == "__main__":
    main()
