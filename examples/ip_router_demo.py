#!/usr/bin/env python3
"""IP routing over the MMS: LPM + header surgery + O(1) drops.

Installs a small routing table, pushes a mixed batch of packets through
the ingress queue, and shows the MMS commands doing the forwarding work:
Overwrite_Segment&Move for TTL-rewrite-and-forward, Delete-packet for
TTL expiry and route misses.

Run:  python examples/ip_router_demo.py
"""

import random

from repro.apps import IpRouter
from repro.net import Packet


def main() -> None:
    rng = random.Random(42)
    router = IpRouter(num_next_hops=4)
    router.table.add("10.0.0.0", 8, next_hop=0)       # core
    router.table.add("10.1.0.0", 16, next_hop=1)      # more specific
    router.table.add("192.168.0.0", 16, next_hop=2)   # campus
    router.table.add("0.0.0.0", 0, next_hop=3)        # default

    destinations = ["10.9.9.9", "10.1.2.3", "192.168.7.7", "8.8.8.8"]
    batch = []
    for _ in range(60):
        dst = rng.choice(destinations)
        ttl = rng.choice([64, 64, 64, 1])  # some packets about to expire
        p = Packet(rng.choice([64, 300, 1500]),
                   fields={"dst_ip": dst, "ttl": ttl})
        batch.append(p)
        router.receive(p)

    print(f"ingress queue: "
          f"{router.mms.pqm.queued_packets(router.num_next_hops)} packets")
    processed = router.route_all()
    stats = router.stats()
    print(f"processed {processed}: routed={stats.routed}, "
          f"ttl drops={stats.dropped_ttl}, "
          f"no-route drops={stats.dropped_no_route}")

    for hop, label in enumerate(["10/8 core", "10.1/16", "192.168/16",
                                 "default"]):
        count = 0
        while router.transmit(hop) is not None:
            count += 1
        print(f"  next hop {hop} ({label:>11}): {count} packets")

    # conservation: every buffered segment was either forwarded or freed
    assert router.mms.pqm.free_segments == router.mms.config.num_segments
    print("all buffer segments returned to the free list")


if __name__ == "__main__":
    main()
