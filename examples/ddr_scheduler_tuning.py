#!/usr/bin/env python3
"""Section 3 in action: DDR bank tuning and the reordering scheduler.

Regenerates Table 1 and the two scheduler ablations the paper fixes --
history depth (3) and direction-aware selection (not used) -- through
the scenario API, then shows the engine and seed knobs every DDR
scenario exposes: the batched ``fast`` engine and the per-access
``reference`` walk produce bit-identical results.

Run:  PYTHONPATH=src python examples/ddr_scheduler_tuning.py
"""

from repro.scenarios import Runner, render


def main() -> None:
    runner = Runner()

    # --- Table 1 on the fast budget (the CLI equivalent:
    # `repro-experiments run table1 --fast`)
    print(render(runner.run("table1", fast=True)))

    # --- the paper's fixed knobs, as registered ablation scenarios
    print()
    print(render(runner.run("ablation-history-depth", fast=True)))
    print()
    print(render(runner.run("ablation-rw-grouping", fast=True)))

    # --- engine selection: batched vs reference walk, bit-identical
    fast = runner.run("ablation-history-depth", fast=True, engine="fast")
    ref = runner.run("ablation-history-depth", fast=True,
                     engine="reference")
    print(f"\nfast vs reference engines: identical = "
          f"{fast.metrics == ref.metrics} "
          f"({fast.wall_clock_s * 1000:.0f} ms vs "
          f"{ref.wall_clock_s * 1000:.0f} ms)")

    # --- seeds thread through every scenario that declares them
    reseeded = runner.run("ablation-history-depth", fast=True, seed=42)
    print(f"seed=42 shifts the simulated losses: "
          f"{reseeded.metrics != fast.metrics}")


if __name__ == "__main__":
    main()
