#!/usr/bin/env python3
"""Section 3 in action: DDR bank tuning and the reordering scheduler.

Sweeps bank counts and scheduler policies on the behavioral DDR model,
reproducing Table 1, then explores the two knobs the paper fixes: the
scheduler's history depth (3) and direction-aware selection (not used).

Run:  python examples/ddr_scheduler_tuning.py
"""

from repro.analysis import PAPER_TABLE1
from repro.analysis.tables import format_table
from repro.mem import simulate_throughput_loss

ACCESSES = 30_000


def main() -> None:
    rows = []
    for banks, paper in PAPER_TABLE1.items():
        ser = simulate_throughput_loss(banks, optimized=False,
                                       model_rw_turnaround=False,
                                       num_accesses=ACCESSES)
        opt = simulate_throughput_loss(banks, optimized=True,
                                       model_rw_turnaround=False,
                                       num_accesses=ACCESSES)
        rows.append([banks, paper[0], round(ser.loss, 3),
                     paper[2], round(opt.loss, 3)])
    print(format_table(
        ["banks", "serializing (paper)", "serializing (model)",
         "reordering (paper)", "reordering (model)"],
        rows, title="Table 1 (conflicts-only columns)"))

    print("\nHistory-depth sweep at 8 banks (paper uses 3):")
    for depth in (0, 1, 2, 3, 4, 8):
        res = simulate_throughput_loss(8, optimized=True,
                                       model_rw_turnaround=False,
                                       num_accesses=ACCESSES,
                                       history_depth=depth)
        bar = "#" * round(res.loss * 200)
        print(f"  depth {depth}: loss {res.loss:.3f} {bar}")

    print("\nWrite-read turnaround at 8 banks:")
    base = simulate_throughput_loss(8, optimized=True,
                                    model_rw_turnaround=True,
                                    num_accesses=ACCESSES)
    grouped = simulate_throughput_loss(8, optimized=True,
                                       model_rw_turnaround=True,
                                       num_accesses=ACCESSES,
                                       prefer_same_type=True)
    print(f"  paper policy (bank-aware only): loss {base.loss:.3f} "
          f"({base.turnaround_stall_slots} turnaround stalls)")
    print(f"  + direction-aware selection:    loss {grouped.loss:.3f} "
          f"({grouped.turnaround_stall_slots} turnaround stalls)")


if __name__ == "__main__":
    main()
