#!/usr/bin/env python3
"""The paper's whole argument in one run: software vs hardware queues.

Measures the sustainable 64-byte-packet bandwidth of each system the
paper evaluates -- IXP1200 microengines (Table 2), the PowerPC reference
NPU with each copy strategy (Table 3 / Section 5.3), and the MMS
(Section 6.1) -- and prints them side by side.

Run:  python examples/software_vs_hardware.py   (~30 s)
"""

from repro.analysis.tables import format_table
from repro.core.mms import MmsConfig, run_saturation
from repro.ixp import simulate_ixp
from repro.net import pps_to_gbps
from repro.npu import CopyStrategy, QueueSwModel


def main() -> None:
    rows = []

    # --- IXP1200 (6 microengines, worst and best Table 2 cases)
    for queues in (16, 1024):
        res = simulate_ixp(queues, 6)
        rows.append([f"IXP1200, 6 engines, {queues} queues",
                     round(pps_to_gbps(res.pps, 64), 3)])

    # --- PowerPC reference NPU (full duplex, Section 5.3 progression)
    sw = QueueSwModel()
    for strategy in CopyStrategy:
        rows.append([f"PowerPC 405 @100 MHz, {strategy.value} copy",
                     round(sw.full_duplex_gbps(strategy), 3)])

    # --- the MMS
    sat = run_saturation(num_commands=4000,
                         config=MmsConfig(num_flows=2048, num_segments=16384,
                                          num_descriptors=8192))
    rows.append(["MMS @125 MHz, 32K flows (hardware)",
                 round(sat.achieved_gbps, 3)])

    print(format_table(["system", "sustainable Gbps (64-byte packets)"],
                       rows, title="Queue management: software vs hardware"))

    mms_gbps = rows[-1][1]
    # the fair software comparison is the many-queue configurations: the
    # 16-queue IXP case keeps everything in registers/scratchpad, which
    # no real multi-service system can (the MMS handles 32 K flows)
    best_many_queue_sw = max(r[1] for r in rows[1:-1])
    print(f"\nAt comparable queue counts the MMS sustains {mms_gbps} Gbps "
          f"-- {mms_gbps / best_many_queue_sw:.0f}x the best software "
          f"configuration -- on a conservative 125 MHz FPGA clock.")
    print("That is the paper's conclusion: wire-speed queue management "
          "at gigabit rates needs dedicated hardware.")


if __name__ == "__main__":
    main()
