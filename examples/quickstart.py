#!/usr/bin/env python3
"""Quickstart: drive the MMS with a handful of commands.

Builds a small MMS (the paper's Figure 2 block), pushes two packets
through enqueue/dequeue, demonstrates a packet move, then regenerates
the Table 4 command latencies through the scenario API -- the same
``Runner`` the CLI, the benchmarks and the tests all use.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro.core import MMS, Command, CommandType, MmsConfig, figure2_diagram
from repro.net import Packet
from repro.scenarios import Runner, render


def main() -> None:
    print(figure2_diagram())

    mms = MMS(MmsConfig(num_flows=64, num_segments=1024, num_descriptors=512))

    # --- segment two packets into flow queues (what the Segmentation
    # block does for frames arriving on the In port)
    voice = Packet(128, flow_id=7)     # 2 segments
    video = Packet(300, flow_id=9)     # 5 segments
    for pkt in (voice, video):
        for cmd in mms.segmentation.segment(pkt):
            mms.apply(cmd)
    print(f"queued: flow 7 -> {mms.pqm.queued_segments(7)} segments, "
          f"flow 9 -> {mms.pqm.queued_segments(9)} segments")

    # --- move the video packet to a higher-priority queue in O(1)
    mms.apply(Command(type=CommandType.MOVE, flow=9, dst_flow=1))
    print(f"after move: flow 9 -> {mms.pqm.queued_packets(9)} packets, "
          f"flow 1 -> {mms.pqm.queued_packets(1)} packets")

    # --- dequeue + reassemble the voice packet
    while mms.pqm.queued_segments(7):
        info = mms.apply(Command(type=CommandType.DEQUEUE, flow=7))
        packet = mms.reassembly.feed(7, info)
        if packet is not None:
            print(f"reassembled pid={packet.pid}: "
                  f"{packet.num_segments} segments, "
                  f"{packet.length_bytes} bytes")

    # --- the command latencies everything above executed with, as a
    # scenario run: typed metrics + rendered paper comparison
    result = Runner().run("table4")
    print()
    print(render(result))

    mean = (result.metrics["enqueue"] + result.metrics["dequeue"]) / 2
    print(f"\nenqueue/dequeue mix: {mean} cycles = {mean * 8:.0f} ns/op "
          f"= {1e3 / (mean * 8):.1f} Mops/s "
          f"= {1e3 / (mean * 8) * 512 / 1000:.2f} Gbps of 64-byte segments")
    print(f"(result round-trips: RunResult.from_json(result.to_json()) "
          f"== result -> {type(result).from_json(result.to_json()) == result})")


if __name__ == "__main__":
    main()
