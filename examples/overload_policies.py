"""Compare buffer-management policies under overload.

Runs every policy through the three overload traffic shapes and prints
the loss behavior side by side -- the question the paper's tables never
answer: *which* traffic gets dropped when the shared segment buffer
fills.

    PYTHONPATH=src python examples/overload_policies.py
"""

from repro.policies import PolicySpec
from repro.policies.harness import SHAPES, run_overload

POLICIES = [PolicySpec(name="taildrop"), PolicySpec(name="red"),
            PolicySpec(name="dynamic-threshold", alpha=1.0),
            PolicySpec(name="lqd")]


def main() -> None:
    print(f"{'policy':<18} {'shape':<10} {'offered':>7} {'accepted':>8} "
          f"{'dropped':>7} {'pushed':>6} {'drop rate':>9}")
    for policy in POLICIES:
        for shape in SHAPES:
            r = run_overload(policy, shape, num_arrivals=600)
            print(f"{r.policy:<18} {r.shape:<10} {r.offered_segments:>7} "
                  f"{r.accepted_segments:>8} {r.dropped_segments:>7} "
                  f"{r.pushed_out_segments:>6} {r.drop_rate:>9.3f}")
    print("\nLQD converts drops into push-outs of the longest queue's "
          "tail; RED sheds early;\nDynamicThreshold isolates queues; "
          "TailDrop is the baseline.")


if __name__ == "__main__":
    main()
