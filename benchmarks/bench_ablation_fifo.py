"""Ablation A2: MMS per-port command FIFO depth.

The FIFOs "smooth the bursts of commands"; deeper FIFOs admit more burst
without backpressure but let the saturation FIFO delay grow.  This sweep
shows the delay/utilization trade-off behind the paper's small FIFOs.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis.tables import format_table
from repro.core.mms import MmsConfig, run_load
from repro.core.scheduler import PortConfig

DEPTHS = (1, 2, 4, 8)


def sweep(load=6.14):
    out = {}
    for depth in DEPTHS:
        ports = tuple(PortConfig(n, priority=0, fifo_depth=depth)
                      for n in ("in", "out", "cpu0", "cpu1"))
        cfg = MmsConfig(num_flows=1024, num_segments=8192,
                        num_descriptors=4096, ports=ports)
        res = run_load(load, num_volleys=800, config=cfg, warmup_volleys=100)
        out[depth] = (res.fifo_cycles, res.total_cycles)
    return out

def test_bench_fifo_depth_sweep(benchmark):
    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(format_table(
        ["fifo depth", "fifo delay (cycles)", "total delay (cycles)"],
        [[d, round(results[d][0], 1), round(results[d][1], 1)]
         for d in DEPTHS],
        title="Ablation A2: per-port FIFO depth at 6.14 Gbps"))
    # saturation FIFO delay grows with depth (more queueing admitted)
    assert results[8][0] > results[1][0]
    # the calibrated depth-2 point sits in the paper's regime (~68)
    assert 30 <= results[2][0] <= 110
