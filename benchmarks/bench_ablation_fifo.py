"""Ablation A2: MMS per-port command FIFO depth.

The FIFOs "smooth the bursts of commands"; deeper FIFOs admit more burst
without backpressure but let the saturation FIFO delay grow.  The
registered ``ablation-fifo-depth`` scenario shows the delay/utilization
trade-off behind the paper's small FIFOs.
"""


from benchmarks.bench_common import emit
from repro.scenarios import Runner, render

DEPTHS = (1, 2, 4, 8)


def test_bench_fifo_depth_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("ablation-fifo-depth"), iterations=1, rounds=1)
    emit(render(result))
    fifo = {d: result.metrics[f"depth{d}"][0] for d in DEPTHS}
    # saturation FIFO delay grows with depth (more queueing admitted)
    assert fifo[8] > fifo[1]
    # the calibrated depth-2 point sits in the paper's regime (~68)
    assert 30 <= fifo[2] <= 110
