"""Benchmark T5: regenerate Table 5 (MMS delay decomposition vs load)
and the saturation headline (12 Mops / ~6.1 Gbps), through the scenario
API.
"""

import pytest

from benchmarks.bench_common import emit
from repro.core.mms import MmsConfig, run_load, run_saturation
from repro.scenarios import Runner, render

CFG = MmsConfig(num_flows=1024, num_segments=8192, num_descriptors=4096)


def test_bench_table5_full(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("table5", fast=True), iterations=1, rounds=1)
    emit(render(result))
    # execution delay is the paper's 10.5 at every load
    for load, (fifo, execution, data, total) in result.metrics.items():
        assert execution == pytest.approx(10.5, abs=0.01)
    low = result.metrics["load1.6"]
    high = result.metrics["load6.14"]
    assert low[3] == pytest.approx(58.5, abs=6)    # total at 1.6 Gbps
    assert high[0] > low[0]                        # fifo grows with load
    assert high[2] > low[2] - 0.5                  # data grows with load

def test_bench_saturation_headline(benchmark):
    result = benchmark.pedantic(
        run_saturation, kwargs={"num_commands": 2000, "config": CFG},
        iterations=1, rounds=2)
    assert result.achieved_mops == pytest.approx(11.9, rel=0.03)
    assert result.achieved_gbps == pytest.approx(6.1, rel=0.03)

def test_bench_single_load_point(benchmark):
    result = benchmark.pedantic(
        run_load,
        kwargs={"offered_gbps": 3.2, "num_volleys": 600, "config": CFG,
                "warmup_volleys": 100},
        iterations=1, rounds=2)
    assert result.total_cycles == pytest.approx(59.6, abs=6)
