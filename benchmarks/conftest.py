"""Shared benchmark configuration.

Every benchmark regenerates a published artifact (table/figure) or an
ablation and prints the paper-vs-model comparison; run with::

    pytest benchmarks/ --benchmark-only

Simulations are deterministic, so small round counts give stable timing
without sacrificing the comparison output.
"""

import pytest


def emit(report_text: str) -> None:
    """Print a rendered experiment report under the bench output."""
    print()
    print(report_text)
