"""Shared benchmark configuration.

Every benchmark regenerates a published artifact (table/figure) or an
ablation and prints the paper-vs-model comparison; run with::

    pytest benchmarks/ --benchmark-only

Simulations are deterministic, so small round counts give stable timing
without sacrificing the comparison output.

The :func:`emit` helper lives in :mod:`benchmarks.bench_common`; the
re-export here keeps any out-of-tree ``from conftest import emit`` users
working.
"""

from benchmarks.bench_common import emit  # noqa: F401  (re-export)
