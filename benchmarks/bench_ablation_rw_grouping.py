"""Ablation A4: read/write-aware DDR scheduling.

The paper's reordering scheduler only minimizes *bank* conflicts; the
write-after-read turnaround remains.  Grouping same-direction accesses
(prefer an access that avoids the turnaround) recovers part of the
interleaving loss -- the ablation quantifies how much was left on the
table.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis.tables import format_table
from repro.mem import simulate_throughput_loss

BANKS = (4, 8, 16)


def sweep(num_accesses=15_000):
    rows = {}
    for banks in BANKS:
        base = simulate_throughput_loss(banks, optimized=True,
                                        model_rw_turnaround=True,
                                        num_accesses=num_accesses)
        grouped = simulate_throughput_loss(banks, optimized=True,
                                           model_rw_turnaround=True,
                                           num_accesses=num_accesses,
                                           prefer_same_type=True)
        rows[banks] = (base.loss, grouped.loss,
                       base.turnaround_stall_slots,
                       grouped.turnaround_stall_slots)
    return rows

def test_bench_rw_grouping(benchmark):
    rows = benchmark.pedantic(sweep, iterations=1, rounds=2)
    emit(format_table(
        ["banks", "loss (paper policy)", "loss (+rw grouping)",
         "turnaround stalls", "stalls w/ grouping"],
        [[b, round(rows[b][0], 3), round(rows[b][1], 3),
          rows[b][2], rows[b][3]] for b in BANKS],
        title="Ablation A4: direction-aware selection on top of bank-aware"))
    for banks in BANKS:
        base_loss, grouped_loss, base_stalls, grouped_stalls = rows[banks]
        assert grouped_stalls < base_stalls
        assert grouped_loss <= base_loss + 0.005
