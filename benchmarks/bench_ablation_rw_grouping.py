"""Ablation A4: read/write-aware DDR scheduling.

The paper's reordering scheduler only minimizes *bank* conflicts; the
write-after-read turnaround remains.  Grouping same-direction accesses
(prefer an access that avoids the turnaround) recovers part of the
interleaving loss -- the registered ``ablation-rw-grouping`` scenario
quantifies how much was left on the table.
"""


from benchmarks.bench_common import emit
from repro.scenarios import Runner, render

BANKS = (4, 8, 16)


def test_bench_rw_grouping(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("ablation-rw-grouping"),
        iterations=1, rounds=2)
    emit(render(result))
    for banks in BANKS:
        base_loss, grouped_loss, base_stalls, grouped_stalls = \
            result.metrics[f"banks{banks}"]
        assert grouped_stalls < base_stalls
        assert grouped_loss <= base_loss + 0.005
