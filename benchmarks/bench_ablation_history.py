"""Ablation A1: reordering-scheduler history depth.

The paper's scheduler "remembers the last 3 accesses" -- with a 4-slot
bank-busy window and one issue per slot, depth 3 is exactly sufficient.
This ablation sweeps the depth and shows: shallower history makes the
scheduler optimistic (it attempts busy banks and stalls); deeper history
buys nothing.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis.tables import format_table
from repro.mem import simulate_throughput_loss

DEPTHS = (0, 1, 2, 3, 4, 6, 8)


def sweep(num_accesses=15_000):
    return {
        d: simulate_throughput_loss(8, optimized=True,
                                    model_rw_turnaround=False,
                                    num_accesses=num_accesses,
                                    history_depth=d).loss
        for d in DEPTHS
    }

def test_bench_history_depth_sweep(benchmark):
    losses = benchmark.pedantic(sweep, iterations=1, rounds=2)
    emit(format_table(
        ["history depth", "loss (8 banks, conflicts only)"],
        [[d, round(losses[d], 4)] for d in DEPTHS],
        title="Ablation A1: scheduler history depth (paper uses 3)"))
    # depth 3 achieves the paper's 0.046; shallower is strictly worse
    assert losses[3] == pytest.approx(0.046, abs=0.02)
    assert losses[0] > losses[3] + 0.1
    assert losses[1] > losses[3] - 0.005
    # deeper than 3 changes nothing (within noise)
    assert losses[8] == pytest.approx(losses[3], abs=0.01)
