"""Ablation A1: reordering-scheduler history depth.

The paper's scheduler "remembers the last 3 accesses" -- with a 4-slot
bank-busy window and one issue per slot, depth 3 is exactly sufficient.
This ablation sweeps the depth (as the registered
``ablation-history-depth`` scenario) and shows: shallower history makes
the scheduler optimistic (it attempts busy banks and stalls); deeper
history buys nothing.
"""

import pytest

from benchmarks.bench_common import emit
from repro.scenarios import Runner, render

DEPTHS = (0, 1, 2, 3, 4, 6, 8)


def test_bench_history_depth_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("ablation-history-depth"),
        iterations=1, rounds=2)
    emit(render(result))
    losses = {d: result.metrics[f"depth{d}"] for d in DEPTHS}
    # depth 3 achieves the paper's 0.046; shallower is strictly worse
    assert losses[3] == pytest.approx(0.046, abs=0.02)
    assert losses[0] > losses[3] + 0.1
    assert losses[1] > losses[3] - 0.005
    # deeper than 3 changes nothing (within noise)
    assert losses[8] == pytest.approx(losses[3], abs=0.01)
