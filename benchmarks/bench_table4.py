"""Benchmark T4: regenerate Table 4 (MMS command latencies) and measure
end-to-end command execution in the assembled MMS.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis import PAPER_TABLE4
from repro.core import MMS, Command, CommandType, MmsConfig
from repro.scenarios import Runner, render

CFG = MmsConfig(num_flows=256, num_segments=4096, num_descriptors=2048)


def test_bench_table4_full(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("table4"), iterations=1, rounds=5)
    emit(render(result))
    for name, want in PAPER_TABLE4.items():
        assert result.metrics[name] == want

def test_bench_command_stream_execution(benchmark):
    """Timed execution of a 400-command mixed stream through the DQM."""

    def run_stream():
        mms = MMS(CFG)
        mms.prefill(range(32), packets_per_flow=8)

        def feeder():
            for i in range(200):
                yield from mms.submit(0, Command(type=CommandType.ENQUEUE,
                                                 flow=i % 32, eop=True))
                yield from mms.submit(1, Command(type=CommandType.DEQUEUE,
                                                 flow=i % 32))

        mms.sim.spawn(feeder())
        mms.sim.run()
        return mms

    mms = benchmark.pedantic(run_stream, iterations=1, rounds=3)
    assert mms.commands_executed == 400
    # mixed enqueue/dequeue stream: the 10.5-cycle average
    assert mms.breakdown.execution.mean == pytest.approx(10.5, abs=0.01)
