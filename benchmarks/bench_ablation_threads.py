"""Ablation: IXP1200 hardware multithreading for queue management.

The paper (citing its [10]) argues that "the overhead for the context
switch, in the case of multithreading, exceeds the memory latency and
thus this IXP feature cannot increase the performance of the memory
management system".  The sweep compares single-threaded and 4-thread
engines across the Table 2 queue counts.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis.tables import format_table
from repro.ixp import simulate_ixp

QUEUES = (16, 128, 1024)


def sweep(engines=6):
    rows = {}
    for q in QUEUES:
        plain = simulate_ixp(q, engines, multithreading=False)
        threaded = simulate_ixp(q, engines, multithreading=True)
        rows[q] = (plain.kpps, threaded.kpps)
    return rows

def test_bench_multithreading(benchmark):
    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(format_table(
        ["queues", "single-thread Kpps", "4-thread Kpps", "speedup"],
        [[q, round(rows[q][0]), round(rows[q][1]),
          round(rows[q][1] / rows[q][0], 2)] for q in QUEUES],
        title="Ablation: IXP1200 multithreading (6 engines)"))
    # the paper's claim holds where it matters: in the SRAM regime the
    # context switch eats the benefit
    plain, threaded = rows[128]
    assert threaded < plain * 1.10
