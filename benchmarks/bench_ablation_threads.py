"""Ablation: IXP1200 hardware multithreading for queue management.

The paper (citing its [10]) argues that "the overhead for the context
switch, in the case of multithreading, exceeds the memory latency and
thus this IXP feature cannot increase the performance of the memory
management system".  The registered ``ablation-multithreading`` scenario
compares single-threaded and 4-thread engines across the Table 2 queue
counts.
"""


from benchmarks.bench_common import emit
from repro.scenarios import Runner, render

QUEUES = (16, 128, 1024)


def test_bench_multithreading(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("ablation-multithreading"),
        iterations=1, rounds=1)
    emit(render(result))
    # the paper's claim holds where it matters: in the SRAM regime the
    # context switch eats the benefit
    plain, threaded = result.metrics["q128"]
    assert threaded < plain * 1.10
