"""Benchmarks F1/F2/H1: the architecture figures (structural builds) and
the cross-cutting headline claims."""

import pytest

from benchmarks.bench_common import emit
from repro.core import MMS
from repro.npu import CopyStrategy, ReferenceNpu
from repro.scenarios import Runner, render


def test_bench_figure1_platform_build(benchmark):
    """Construct the full Figure 1 platform (all blocks wired)."""
    npu = benchmark.pedantic(ReferenceNpu,
                             kwargs={"strategy": CopyStrategy.LINE},
                             iterations=1, rounds=5)
    emit(render(Runner().run("figure1")))
    assert npu.queues.num_queues == 16

def test_bench_figure2_mms_build(benchmark):
    """Construct the full Figure 2 MMS at paper scale (32 K flows)."""
    mms = benchmark.pedantic(MMS, iterations=1, rounds=3)
    emit(render(Runner().run("figure2")))
    assert mms.pqm.num_flows == 32 * 1024

def test_bench_headline_claims(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("headline", fast=True), iterations=1, rounds=1)
    emit(render(result))
    assert result.metrics["mms_gbps"] == pytest.approx(6.1, rel=0.05)
    assert result.metrics["ixp_1k_mbps"] < 170
