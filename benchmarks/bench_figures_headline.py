"""Benchmarks F1/F2/H1: the architecture figures (structural builds) and
the cross-cutting headline claims."""

import pytest

from benchmarks.bench_common import emit
from repro.analysis.experiments import run_figure1, run_figure2, run_headline
from repro.core import MMS, MmsConfig
from repro.npu import CopyStrategy, ReferenceNpu


def test_bench_figure1_platform_build(benchmark):
    """Construct the full Figure 1 platform (all blocks wired)."""
    npu = benchmark.pedantic(ReferenceNpu,
                             kwargs={"strategy": CopyStrategy.LINE},
                             iterations=1, rounds=5)
    emit(run_figure1().rendered)
    assert npu.queues.num_queues == 16

def test_bench_figure2_mms_build(benchmark):
    """Construct the full Figure 2 MMS at paper scale (32 K flows)."""
    mms = benchmark.pedantic(MMS, iterations=1, rounds=3)
    emit(run_figure2().rendered)
    assert mms.pqm.num_flows == 32 * 1024

def test_bench_headline_claims(benchmark):
    report = benchmark.pedantic(run_headline, kwargs={"fast": True},
                                iterations=1, rounds=1)
    emit(report.rendered)
    assert report.values["mms_gbps"] == pytest.approx(6.1, rel=0.05)
    assert report.values["ixp_1k_mbps"] < 170
