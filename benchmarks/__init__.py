"""Benchmark suite: every module regenerates a published artifact.

Making this a package lets the ``bench_*`` modules import shared helpers
as ``benchmarks.bench_common`` regardless of the current working
directory -- pytest puts the repository root (the package parent) on
``sys.path`` when collecting package-resident files.
"""
