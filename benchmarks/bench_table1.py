"""Benchmark T1: regenerate Table 1 (DDR throughput loss).

Workload: 4 backlogged ports (2 write + 2 read), uniform random banks;
serializing vs reordering scheduler; conflicts-only vs +interleaving.
Runs through the scenario API (``Runner().run("table1", ...)``).
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis import PAPER_TABLE1
from repro.mem import simulate_throughput_loss
from repro.scenarios import Runner, render


def test_bench_table1_full(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("table1", fast=True), iterations=1, rounds=2)
    emit(render(result))
    # shape assertions: conflict columns track the paper closely
    for banks, row in PAPER_TABLE1.items():
        ours = result.metrics[f"banks{banks}"]
        assert ours[0] == pytest.approx(row[0], abs=0.03)
        assert ours[2] == pytest.approx(row[2], abs=0.03)

def test_bench_table1_eight_bank_cell(benchmark):
    """The paper's headline cell: 8 banks, optimized scheduler."""
    result = benchmark.pedantic(
        simulate_throughput_loss,
        kwargs={"num_banks": 8, "optimized": True,
                "model_rw_turnaround": False, "num_accesses": 20_000},
        iterations=1, rounds=3)
    assert result.loss == pytest.approx(0.046, abs=0.02)

def test_bench_table1_serializing_baseline(benchmark):
    result = benchmark.pedantic(
        simulate_throughput_loss,
        kwargs={"num_banks": 8, "optimized": False,
                "model_rw_turnaround": False, "num_accesses": 20_000},
        iterations=1, rounds=3)
    assert result.loss == pytest.approx(0.384, abs=0.02)
