"""Record the fast-path perf trajectory to ``BENCH_<n>.json``.

Runs each benchmark workload on its *reference* engine and on its *fast*
engine through the unified scenario API, verifies the simulated results
are identical (and that Table 1 still matches the paper within the
suite's tolerances), then appends a timestamped entry to the trajectory
file so successive PRs accumulate a wall-clock history::

    PYTHONPATH=src python benchmarks/run_benchmarks.py             # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick     # CI smoke

Benchmarks
----------
* ``bench_table1`` -- the full Table 1 regeneration (5 bank rows x 4
  scheduler configs): batched bank engine vs per-access reference walk.
* ``bench_table5_stream`` -- the full-budget Table 5 regeneration: the
  DES-free command-stream machine (``repro.engines``) vs the heapq
  reference kernel.  Always run at the full budget (the acceptance
  criterion is defined there); ``--quick`` only lowers the repeat count.
* ``bench_ablation_threads`` -- the IXP1200 multithreading ablation
  scenario: calendar-queue kernel vs heapq reference kernel.
* ``bench_overload`` -- one overload policy scenario: stream machine vs
  heapq kernel, byte-identical drop/accept counters enforced.
* ``bench_telemetry`` -- the telemetry subsystem's cost contract on
  full-budget Table 5 (stream engine): probes-off must stay within 2%
  of the plain run (structural absence) and keep the 3x stream floor;
  the probes-on overhead is recorded for the trajectory.
* ``bench_trace`` -- the same contract for the span tracer: trace-off
  must stay within 2% of the plain run (the stage hooks are
  structurally absent when no probe wants them) and keep the 3x
  stream floor; the trace-on overhead and span count are recorded.
* ``bench_monitor`` -- the same contract for the operational monitoring
  layer (``repro.monitor``): with monitoring disabled the full-budget
  Table 5 stream run must stay within 2% of the plain run and
  ``repro.monitor`` must never have been imported (structural absence
  checked against ``sys.modules``); the monitored leg (resource
  profiling + event sink) records its overhead, event count and the
  run's rusage profile for the trajectory.
* ``kernel_events`` -- raw same-time + delay event throughput of the two
  kernel engines.

Every recorded number carries the engine it came from
(``reference_engine`` / ``fast_engine``).  Exits non-zero if any engine
pair disagrees on simulated results, the headline ``bench_table1``
speedup drops below its 2x floor, or the ``bench_table5_stream``
speedup drops below its 3x floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import paper_data as paper                     # noqa: E402
from repro.scenarios import Runner                                 # noqa: E402
from repro.sim.kernel import HeapqSimulator, Simulator             # noqa: E402

#: Headline requirement: the batched engine must keep Table 1 at least
#: this much faster than the reference walk.
TABLE1_SPEEDUP_FLOOR = 2.0

#: Acceptance criterion of the command-stream engine: full-budget
#: Table 5 must run at least this much faster than the heapq reference.
TABLE5_STREAM_SPEEDUP_FLOOR = 3.0

#: Telemetry cost contract: with probes *disabled* the full-budget
#: Table 5 stream run must stay within this fraction of the plain run
#: (probes are structurally absent, so anything beyond timer noise is a
#: regression) -- and the 3x stream floor above must still hold.
TELEMETRY_OFF_OVERHEAD_CEILING = 0.02

#: Same contract for the span tracer: the stage-transition hooks are
#: structurally absent when no probe asks for them, so a trace-off run
#: must stay within this fraction of the plain run.
TRACE_OFF_OVERHEAD_CEILING = 0.02

#: And for the monitoring layer: with no event sink and no resource
#: profiling a run must stay within this fraction of the plain run
#: (repro.monitor is never even imported -- asserted structurally).
MONITOR_OFF_OVERHEAD_CEILING = 0.02

#: Serving floor: the daemon must sustain at least this many *cached*
#: requests per second end-to-end over HTTP (submit + result fetch --
#: a cache hit must stay O(lookup), never a re-simulation).
SERVE_CACHED_RPS_FLOOR = 20.0


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_table1(quick: bool, repeats: int) -> dict:
    """Full Table 1 on both DDR engines; results must be identical."""
    runner = Runner()
    fast_flag = quick  # quick mode shrinks access counts, same workload shape
    ref_s, ref_result = _best_of(
        lambda: runner.run("table1", fast=fast_flag, engine="reference"),
        repeats)
    fast_s, fast_result = _best_of(
        lambda: runner.run("table1", fast=fast_flag, engine="fast"), repeats)
    if fast_result.metrics != ref_result.metrics:
        raise SystemExit("bench_table1: engines disagree on simulated values")
    # The suite's own tolerance: conflict-only columns within 0.03.
    for banks, row in paper.PAPER_TABLE1.items():
        ours = fast_result.metrics[f"banks{banks}"]
        for col in (0, 2):
            if abs(ours[col] - row[col]) > 0.03:
                raise SystemExit(
                    f"bench_table1: banks={banks} col={col} drifted from the "
                    f"paper ({ours[col]:.3f} vs {row[col]:.3f})")
    return {
        "reference_s": round(ref_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(ref_s / fast_s, 2),
        "identical_results": True,
        "reference_engine": "ddr reference walk (mem.sched)",
        "fast_engine": "ddr batched bank model (mem.fastpath)",
    }


def bench_table5_stream(quick: bool, repeats: int) -> dict:
    """Full-budget Table 5: command-stream machine vs heapq kernel.

    The acceptance criterion of ``repro.engines`` lives here: results
    must be identical and the machine at least 3x faster *at the full
    budget* -- so the budget is never shrunk; ``--quick`` only lowers
    the repeat count (the pair costs a few seconds).
    """
    runner = Runner()
    table5_repeats = 1 if quick else repeats
    ref_s, ref_result = _best_of(
        lambda: runner.run("table5", engine="reference"), table5_repeats)
    fast_s, fast_result = _best_of(
        lambda: runner.run("table5", engine="fast"), table5_repeats)
    if fast_result.metrics != ref_result.metrics:
        raise SystemExit(
            "bench_table5_stream: engines disagree on simulated values")
    # Sanity: linear-region rows must stay near the paper (the knee rows
    # near saturation are calibration-sensitive and are not re-gated
    # here -- the accuracy suite owns them).
    for load, row in paper.PAPER_TABLE5.items():
        if load > 4.5:
            continue
        total_ours = fast_result.metrics[f"load{load}"][3]
        if abs(total_ours - row[3]) / row[3] > 0.15:
            raise SystemExit(
                f"bench_table5_stream: load={load} total drifted from the "
                f"paper ({total_ours:.1f} vs {row[3]:.1f} cycles)")
    return {
        "reference_s": round(ref_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(ref_s / fast_s, 2),
        "identical_results": True,
        "budget": "full",
        "reference_engine": "heapq kernel (sim.kernel.HeapqSimulator)",
        "fast_engine": "command-stream machine (repro.engines.StreamMms)",
    }


def bench_ablation_threads(quick: bool, repeats: int) -> dict:
    """IXP multithreading ablation scenario on both kernel engines."""
    runner = Runner()

    def sweep(engine: str):
        return runner.run("ablation-multithreading", fast=quick,
                          engine=engine)

    ref_s, ref_result = _best_of(lambda: sweep("reference"), repeats)
    cal_s, cal_result = _best_of(lambda: sweep("fast"), repeats)
    if cal_result.metrics != ref_result.metrics:
        raise SystemExit(
            "bench_ablation_threads: kernels disagree on simulated rates")
    return {
        "reference_s": round(ref_s, 4),
        "fast_s": round(cal_s, 4),
        "speedup": round(ref_s / cal_s, 2),
        "identical_results": True,
        "reference_engine": "heapq kernel (sim.kernel.HeapqSimulator)",
        "fast_engine": "calendar-queue kernel (sim.kernel.Simulator)",
    }


def bench_overload(quick: bool, repeats: int) -> dict:
    """Overload policy scenario on both kernel engines.

    Records the policy-scenario provenance (policy family, traffic
    shape, drop/accept counters) alongside the usual engine timings and
    enforces that both kernels report byte-identical counters.
    """
    runner = Runner()
    name = "overload-lqd-burst"

    def run(engine: str):
        return runner.run(name, fast=quick, engine=engine)

    ref_s, ref_result = _best_of(lambda: run("reference"), repeats)
    fast_s, fast_result = _best_of(lambda: run("fast"), repeats)
    if fast_result.metrics != ref_result.metrics:
        raise SystemExit(
            "bench_overload: engines disagree on drop/accept counters")
    m = fast_result.metrics
    return {
        "reference_s": round(ref_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(ref_s / fast_s, 2),
        "identical_results": True,
        "reference_engine": "heapq kernel (sim.kernel.HeapqSimulator)",
        "fast_engine": "command-stream machine (repro.engines.StreamMms)",
        "scenario": name,
        "policy": m["policy"],
        "shape": m["shape"],
        "counters": {
            "offered_segments": m["offered_segments"],
            "accepted_segments": m["accepted_segments"],
            "dropped_segments": m["dropped_segments"],
            "pushed_out_segments": m["pushed_out_segments"],
            "drop_rate": round(m["drop_rate"], 4),
        },
    }


def _assert_probes_structurally_absent() -> None:
    """The real structural-absence check (timings cannot see it).

    With no probe, the telemetry layer must leave zero call sites on
    the hot paths: the kernel DQM must not have the probed
    dispatch/finalize variants installed as instance attributes, and
    the stream machine must carry no probe.  With a probe, both swaps
    must be in place.  A per-command ``if probe is not None`` creeping
    back into the execute path would pass any same-code timing
    comparison -- this assertion is what fails instead.
    """
    from repro.core.mms import MMS, MmsConfig
    from repro.engines import StreamMms
    from repro.telemetry import MmsTelemetry

    cfg = MmsConfig(num_flows=16, num_segments=64, num_descriptors=64)
    plain = MMS(cfg)
    if "_dispatch" in plain.dqm.__dict__ or "_finalize" in plain.dqm.__dict__:
        raise SystemExit(
            "bench_telemetry: probes-off DQM carries probed variants")
    probed = MMS(cfg, probe=MmsTelemetry())
    if "_dispatch" not in probed.dqm.__dict__ \
            or "_finalize" not in probed.dqm.__dict__:
        raise SystemExit(
            "bench_telemetry: probed DQM did not swap in its variants")
    if StreamMms(cfg).probe is not None:
        raise SystemExit("bench_telemetry: probes-off StreamMms has a probe")


def bench_telemetry(quick: bool, repeats: int, table5: dict) -> dict:
    """Telemetry cost contract on full-budget Table 5 (stream engine).

    Two checks and two recordings.  Checks: probes-off is *structural
    absence* (:func:`_assert_probes_structurally_absent` -- the check a
    timing cannot make, since the disabled path is byte-identical code
    to the pre-telemetry baseline), and the 3x stream floor still holds
    with probes disabled.  Recordings: the telemetry-off overhead
    against a plain run (interleaved A/B best-of so machine drift
    cancels; gated at 2%, which bounds residual noise plus any
    disabled-path cost that ever appears) and the probes-on overhead
    (not gated -- probing disables the stream engine's inlined opcode
    branches by design).  Probing must not perturb simulated results.
    Always full budget; --quick only lowers the repeat count (floored
    at 3 so best-of is meaningful).
    """
    _assert_probes_structurally_absent()
    runner = Runner()
    tele_repeats = max(3, 1 if quick else repeats)
    # interleave the plain and telemetry-off timings (same invocation
    # by construction; alternating cancels warm-up/throttle drift that
    # a comparison against bench_table5_stream's earlier number had)
    base_s = off_s = float("inf")
    off_result = None
    for _ in range(tele_repeats):
        t0 = time.perf_counter()
        runner.run("table5", engine="fast")
        base_s = min(base_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        off_result = runner.run("table5", engine="fast")
        off_s = min(off_s, time.perf_counter() - t0)
    on_s, on_result = _best_of(
        lambda: runner.run("table5", engine="fast", telemetry=True),
        tele_repeats)
    on_metrics = dict(on_result.metrics)
    telemetry_payload = on_metrics.pop("telemetry")
    if on_metrics != off_result.metrics:
        raise SystemExit(
            "bench_telemetry: probing perturbed the simulated results")
    if not telemetry_payload:
        raise SystemExit("bench_telemetry: telemetry run carried no payload")
    off_overhead = off_s / base_s - 1.0
    stream_floor_off = table5["reference_s"] / off_s
    return {
        "plain_s": round(base_s, 4),
        "telemetry_off_s": round(off_s, 4),
        "telemetry_on_s": round(on_s, 4),
        "off_overhead": round(off_overhead, 4),
        "on_overhead": round(on_s / base_s - 1.0, 4),
        "stream_speedup_with_telemetry_off": round(stream_floor_off, 2),
        "structurally_absent_when_disabled": True,
        "identical_results": True,
        "budget": "full",
        "engine": "command-stream machine (repro.engines.StreamMms)",
    }


def _assert_stage_hooks_structurally_absent() -> None:
    """The tracer's structural-absence check.

    The DQM has three dispatch/finalize variant pairs -- plain, probed,
    traced -- and picks once at construction time: a telemetry-only
    probe must get the *probed* pair (no stage bookkeeping), a probe
    with ``wants_stages`` must get the *traced* pair.  A per-command
    ``if wants_stages`` creeping into the probed path would pass any
    timing comparison -- this assertion is what fails instead.
    """
    from repro.core.dqm import DataQueueManager
    from repro.core.mms import MMS, MmsConfig
    from repro.telemetry import MmsTelemetry
    from repro.trace import TraceCollector, TraceSpec

    cfg = MmsConfig(num_flows=16, num_segments=64, num_descriptors=64)
    probed = MMS(cfg, probe=MmsTelemetry())
    if probed.dqm._dispatch.__func__ \
            is not DataQueueManager._dispatch_probed:
        raise SystemExit(
            "bench_trace: telemetry-only DQM took the traced dispatch path")
    traced = MMS(cfg, probe=TraceCollector(TraceSpec()))
    if traced.dqm._dispatch.__func__ \
            is not DataQueueManager._dispatch_traced or \
            traced.dqm._finalize.__func__ \
            is not DataQueueManager._finalize_traced:
        raise SystemExit(
            "bench_trace: tracing DQM did not swap in its traced variants")


def bench_trace(quick: bool, repeats: int, table5: dict) -> dict:
    """Span-tracing cost contract on full-budget Table 5 (stream engine).

    Mirrors :func:`bench_telemetry` for the tracer: the structural
    check above, an interleaved plain vs trace-off A/B (gated at 2%),
    the trace-on overhead recorded for the trajectory (not gated --
    tracing implies probing, which disables the inlined opcode
    branches), results unperturbed, and the 3x stream floor intact
    with tracing disabled.
    """
    _assert_stage_hooks_structurally_absent()
    runner = Runner()
    # the A/B legs are *identical invocations* (no probe either way), so
    # any measured gap is machine noise: best-of-5 floors it and the
    # alternating leg order cancels within-pair drift bias
    reps = max(5, 1 if quick else repeats)
    base_s = off_s = float("inf")
    off_result = None
    for i in range(reps):
        for leg in ("base", "off") if i % 2 == 0 else ("off", "base"):
            t0 = time.perf_counter()
            result = runner.run("table5", engine="fast")
            elapsed = time.perf_counter() - t0
            if leg == "base":
                base_s = min(base_s, elapsed)
            else:
                off_s = min(off_s, elapsed)
                off_result = result
    on_s, on_result = _best_of(
        lambda: runner.run("table5", engine="fast", trace=True), reps)
    on_metrics = dict(on_result.metrics)
    trace_payload = on_metrics.pop("trace")
    if on_metrics != off_result.metrics:
        raise SystemExit(
            "bench_trace: tracing perturbed the simulated results")
    spans = sum(t["counters"]["spans"] for t in trace_payload.values())
    if not spans:
        raise SystemExit("bench_trace: traced run recorded no spans")
    return {
        "plain_s": round(base_s, 4),
        "trace_off_s": round(off_s, 4),
        "trace_on_s": round(on_s, 4),
        "off_overhead": round(off_s / base_s - 1.0, 4),
        "on_overhead": round(on_s / base_s - 1.0, 4),
        "stream_speedup_with_trace_off": round(
            table5["reference_s"] / off_s, 2),
        "spans": spans,
        "structurally_absent_when_disabled": True,
        "identical_results": True,
        "budget": "full",
        "engine": "command-stream machine (repro.engines.StreamMms)",
    }


def _assert_monitor_structurally_absent() -> None:
    """The monitoring layer's structural-absence check.

    Monitoring is slow-path machinery behind explicit knobs
    (``Runner(events=...)``, ``resources=True``, journaled pool
    sweeps); a plain run must not merely skip it but never import it.
    A stray top-level ``import repro.monitor`` creeping into the
    runner, the engines or the scenario registry would pass any timing
    comparison -- this assertion is what fails instead.  It must run
    before the monitored leg below pulls the module in for real.
    """
    Runner().run("table5", engine="fast")
    offenders = [m for m in sys.modules
                 if m == "repro.monitor" or m.startswith("repro.monitor.")]
    if offenders:
        raise SystemExit(
            f"bench_monitor: plain run imported {sorted(offenders)} "
            f"(monitoring must be structurally absent when disabled)")


def bench_monitor(quick: bool, repeats: int, table5: dict) -> dict:
    """Monitoring cost contract on full-budget Table 5 (stream engine).

    Mirrors :func:`bench_telemetry` / :func:`bench_trace` for the
    monitoring layer: the structural sys.modules check above, an
    interleaved plain vs monitoring-off A/B (gated at 2%; the two legs
    are identical invocations, so the gate bounds timer noise plus any
    disabled-path cost that ever appears), and a monitored leg --
    resource profiling on, run lifecycle events to a sink -- whose
    overhead, event count and rusage profile are recorded for the
    trajectory (not gated).  Monitoring must not perturb simulated
    results.
    """
    _assert_monitor_structurally_absent()
    runner = Runner()
    reps = max(3, 1 if quick else repeats)
    base_s = off_s = float("inf")
    off_result = None
    for i in range(reps):
        for leg in ("base", "off") if i % 2 == 0 else ("off", "base"):
            t0 = time.perf_counter()
            result = runner.run("table5", engine="fast")
            elapsed = time.perf_counter() - t0
            if leg == "base":
                base_s = min(base_s, elapsed)
            else:
                off_s = min(off_s, elapsed)
                off_result = result

    import tempfile

    from repro.monitor.events import EventSink, read_events
    from repro.monitor.resources import validate_resources_dict

    with tempfile.TemporaryDirectory(prefix="repro-bench-monitor-") as tmp:
        events_file = str(Path(tmp) / "events.jsonl")
        with EventSink(events_file) as sink:
            monitored = Runner(events=sink)
            on_s, on_result = _best_of(
                lambda: monitored.run("table5", engine="fast",
                                      resources=True), reps)
        events = read_events(events_file, strict=True)
    if not any(e.kind == "run" and e.action == "finish" for e in events):
        raise SystemExit("bench_monitor: monitored run emitted no "
                         "run.finish event")
    on_metrics = dict(on_result.metrics)
    profile = on_metrics.pop("resources")
    problems = validate_resources_dict(profile)
    if problems:
        raise SystemExit(f"bench_monitor: invalid resource profile: "
                         f"{'; '.join(problems)}")
    if on_metrics != off_result.metrics:
        raise SystemExit(
            "bench_monitor: monitoring perturbed the simulated results")
    return {
        "plain_s": round(base_s, 4),
        "monitor_off_s": round(off_s, 4),
        "monitor_on_s": round(on_s, 4),
        "off_overhead": round(off_s / base_s - 1.0, 4),
        "on_overhead": round(on_s / base_s - 1.0, 4),
        "stream_speedup_with_monitor_off": round(
            table5["reference_s"] / off_s, 2),
        "events": len(events),
        "resources": {k: profile[k] for k in
                      ("cpu_user_s", "cpu_sys_s", "cpu_s", "max_rss_kb",
                       "wall_s")},
        "structurally_absent_when_disabled": True,
        "identical_results": True,
        "budget": "full",
        "engine": "command-stream machine (repro.engines.StreamMms)",
    }


def bench_kernel_events(quick: bool, repeats: int) -> dict:
    """Raw kernel event throughput: clocked processes with shared edges."""
    procs, steps = (50, 200) if quick else (200, 500)

    def drive(sim_cls):
        sim = sim_cls()

        def clocked(period):
            for _ in range(steps):
                yield period
                yield None

        for i in range(procs):
            sim.spawn(clocked(1000 * (1 + i % 4)))
        sim.run()
        return sim.now

    ref_s, ref_now = _best_of(lambda: drive(HeapqSimulator), repeats)
    cal_s, cal_now = _best_of(lambda: drive(Simulator), repeats)
    if cal_now != ref_now:
        raise SystemExit("kernel_events: kernels disagree on final time")
    events = procs * steps * 2
    return {
        "reference_s": round(ref_s, 4),
        "fast_s": round(cal_s, 4),
        "speedup": round(ref_s / cal_s, 2),
        "fast_events_per_s": round(events / cal_s),
        "identical_results": True,
        "reference_engine": "heapq kernel (sim.kernel.HeapqSimulator)",
        "fast_engine": "calendar-queue kernel (sim.kernel.Simulator)",
    }


def bench_serve(quick: bool, repeats: int) -> dict:
    """Serving-path cost on a live daemon: cached vs uncached requests.

    Boots a real :class:`~repro.serve.ServeServer` on an ephemeral
    port, runs ``latency-lqd-burst`` (fast budget) once uncached while
    consuming its frame stream, then hammers the content-addressed
    cache with resubmits -- each one a full submit + result-fetch HTTP
    round trip.  Gated: a cache hit must stay O(lookup), so the daemon
    has to sustain ``SERVE_CACHED_RPS_FLOOR`` cached requests/s.  Also
    proves the cache contract end to end: the cached ``RunResult``
    JSON must be byte-identical to a fresh run of the same
    (spec, seed, engine) executed by a second service with a cold
    cache.
    """
    import asyncio
    import tempfile
    import threading

    from repro.monitor.metrics import parse_prometheus_text
    from repro.serve import ScenarioService, ServeClient, ServeServer

    resubmits = 20 if quick else 50
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        service = ScenarioService(str(Path(tmp) / "spool"),
                                  cache_dir=str(Path(tmp) / "cache"))
        server = ServeServer(service, port=0, jobs=2)
        ready = threading.Event()

        def _loop():
            async def _main():
                await server.start()
                ready.set()
                await server.serve_until_shutdown()
            asyncio.run(_main())

        thread = threading.Thread(target=_loop, daemon=True)
        thread.start()
        if not ready.wait(30):
            raise SystemExit("bench_serve: daemon did not start")
        client = ServeClient("127.0.0.1", server.port, timeout_s=300.0)

        t0 = time.perf_counter()
        fresh, frames = client.run_and_wait("latency-lqd-burst",
                                            budget="fast")
        uncached_s = time.perf_counter() - t0
        if not frames or frames[-1]["type"] != "done":
            raise SystemExit("bench_serve: stream delivered no done frame")

        cached = None
        t0 = time.perf_counter()
        for _ in range(resubmits):
            summary = client.submit("latency-lqd-burst", budget="fast")
            if not summary["cached"]:
                raise SystemExit("bench_serve: a resubmit missed the cache")
            cached = client.result(summary["run_id"])
        cached_elapsed = time.perf_counter() - t0
        if json.dumps(cached, sort_keys=True) != \
                json.dumps(fresh, sort_keys=True):
            raise SystemExit(
                "bench_serve: cached result diverged from the fresh run")

        values = parse_prometheus_text(client.metrics_text())
        hits = values["repro_serve_cache_hits_total"]
        misses = values["repro_serve_cache_misses_total"]
        client.shutdown()
        thread.join(60)
        if thread.is_alive():
            raise SystemExit("bench_serve: daemon did not shut down")

        # byte-identity against a genuinely fresh run: a second service
        # with a cold cache must reproduce the exact same JSON
        cold = ScenarioService(str(Path(tmp) / "spool2"),
                               cache_dir=str(Path(tmp) / "cache2"))
        record = cold.submit("latency-lqd-burst", budget="fast")
        cold.execute(record.run_id)
        refreshed = cold.result(record.run_id)
        if json.dumps(refreshed, sort_keys=True) != \
                json.dumps(fresh, sort_keys=True):
            raise SystemExit("bench_serve: a cold-cache rerun did not "
                             "reproduce the served result byte for byte")

    return {
        "uncached_run_s": round(uncached_s, 4),
        "uncached_requests_per_s": round(1.0 / uncached_s, 2),
        "cached_requests_per_s": round(resubmits / cached_elapsed, 2),
        "cached_request_s": round(cached_elapsed / resubmits, 5),
        "resubmits": resubmits,
        "cache_hit_rate": round(hits / (hits + misses), 4),
        "stream_frames": len(frames),
        "byte_identical_cached_vs_fresh": True,
        "scenario": "latency-lqd-burst (fast budget)",
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", default=str(REPO_ROOT / "BENCH_1.json"),
                    help="trajectory file to append to (default: BENCH_1.json)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke subset: shrunken workloads, 1 repeat")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per engine (best-of; default 3, 1 with --quick)")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 3)

    benches = {
        "bench_table1": bench_table1,
        "bench_table5_stream": bench_table5_stream,
        "bench_ablation_threads": bench_ablation_threads,
        "bench_overload": bench_overload,
        "kernel_events": bench_kernel_events,
    }
    results = {}
    for name, fn in benches.items():
        results[name] = fn(args.quick, repeats)
        r = results[name]
        print(f"{name}: reference={r['reference_s']}s fast={r['fast_s']}s "
              f"-> {r['speedup']}x")
    results["bench_telemetry"] = bench_telemetry(
        args.quick, repeats, results["bench_table5_stream"])
    t = results["bench_telemetry"]
    print(f"bench_telemetry: off={t['telemetry_off_s']}s "
          f"(overhead {t['off_overhead'] * 100:+.1f}%) "
          f"on={t['telemetry_on_s']}s "
          f"(overhead {t['on_overhead'] * 100:+.1f}%)")
    results["bench_trace"] = bench_trace(
        args.quick, repeats, results["bench_table5_stream"])
    tr = results["bench_trace"]
    print(f"bench_trace: off={tr['trace_off_s']}s "
          f"(overhead {tr['off_overhead'] * 100:+.1f}%) "
          f"on={tr['trace_on_s']}s "
          f"(overhead {tr['on_overhead'] * 100:+.1f}%, "
          f"{tr['spans']} spans)")
    results["bench_monitor"] = bench_monitor(
        args.quick, repeats, results["bench_table5_stream"])
    mo = results["bench_monitor"]
    print(f"bench_monitor: off={mo['monitor_off_s']}s "
          f"(overhead {mo['off_overhead'] * 100:+.1f}%) "
          f"on={mo['monitor_on_s']}s "
          f"(overhead {mo['on_overhead'] * 100:+.1f}%, "
          f"{mo['events']} events, "
          f"cpu {mo['resources']['cpu_s']:.2f}s, "
          f"rss {mo['resources']['max_rss_kb'] // 1024}MB)")
    results["bench_serve"] = bench_serve(args.quick, repeats)
    sv = results["bench_serve"]
    print(f"bench_serve: uncached={sv['uncached_run_s']}s "
          f"cached={sv['cached_requests_per_s']} req/s "
          f"(hit rate {sv['cache_hit_rate'] * 100:.0f}%, "
          f"{sv['stream_frames']} frames streamed)")

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "quick": args.quick,
        "repeats": repeats,
        "benchmarks": results,
    }
    out = Path(args.output)
    trajectory = {"schema": 1, "runs": []}
    if out.exists():
        try:
            trajectory = json.loads(out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {out} was unreadable, starting fresh")
    trajectory.setdefault("runs", []).append(entry)
    from repro.checkpoint.atomic import write_text_atomic
    write_text_atomic(str(out), json.dumps(trajectory, indent=2) + "\n")
    print(f"appended run #{len(trajectory['runs'])} to {out}")

    headline = results["bench_table1"]["speedup"]
    if headline < TABLE1_SPEEDUP_FLOOR:
        print(f"FAIL: bench_table1 speedup {headline}x is below the "
              f"{TABLE1_SPEEDUP_FLOOR}x floor", file=sys.stderr)
        return 1
    stream = results["bench_table5_stream"]["speedup"]
    if stream < TABLE5_STREAM_SPEEDUP_FLOOR:
        print(f"FAIL: bench_table5_stream speedup {stream}x is below the "
              f"{TABLE5_STREAM_SPEEDUP_FLOOR}x floor", file=sys.stderr)
        return 1
    tele = results["bench_telemetry"]
    if tele["off_overhead"] > TELEMETRY_OFF_OVERHEAD_CEILING:
        # The structural-absence assertion inside bench_telemetry is
        # the real regression detector; this wall-clock comparison of
        # two identical invocations mostly bounds timer noise.  Hard
        # failure only on full runs (quiet machines, best-of >= 3);
        # --quick CI runners get a warning, not a red build.
        msg = (f"telemetry-off overhead {tele['off_overhead'] * 100:.1f}% "
               f"exceeds the {TELEMETRY_OFF_OVERHEAD_CEILING * 100:.0f}% "
               f"ceiling (probes must be structurally absent when disabled)")
        if args.quick:
            print(f"WARNING: {msg} -- likely runner noise; the structural "
                  f"check passed", file=sys.stderr)
        else:
            print(f"FAIL: {msg}", file=sys.stderr)
            return 1
    if tele["stream_speedup_with_telemetry_off"] < TABLE5_STREAM_SPEEDUP_FLOOR:
        print(f"FAIL: stream speedup with telemetry disabled "
              f"{tele['stream_speedup_with_telemetry_off']}x is below the "
              f"{TABLE5_STREAM_SPEEDUP_FLOOR}x floor", file=sys.stderr)
        return 1
    trace = results["bench_trace"]
    if trace["off_overhead"] > TRACE_OFF_OVERHEAD_CEILING:
        msg = (f"trace-off overhead {trace['off_overhead'] * 100:.1f}% "
               f"exceeds the {TRACE_OFF_OVERHEAD_CEILING * 100:.0f}% "
               f"ceiling (stage hooks must be structurally absent when "
               f"disabled)")
        if args.quick:
            print(f"WARNING: {msg} -- likely runner noise; the structural "
                  f"check passed", file=sys.stderr)
        else:
            print(f"FAIL: {msg}", file=sys.stderr)
            return 1
    if trace["stream_speedup_with_trace_off"] < TABLE5_STREAM_SPEEDUP_FLOOR:
        print(f"FAIL: stream speedup with tracing disabled "
              f"{trace['stream_speedup_with_trace_off']}x is below the "
              f"{TABLE5_STREAM_SPEEDUP_FLOOR}x floor", file=sys.stderr)
        return 1
    monitor = results["bench_monitor"]
    if monitor["off_overhead"] > MONITOR_OFF_OVERHEAD_CEILING:
        msg = (f"monitor-off overhead {monitor['off_overhead'] * 100:.1f}% "
               f"exceeds the {MONITOR_OFF_OVERHEAD_CEILING * 100:.0f}% "
               f"ceiling (monitoring must be structurally absent when "
               f"disabled)")
        if args.quick:
            print(f"WARNING: {msg} -- likely runner noise; the structural "
                  f"check passed", file=sys.stderr)
        else:
            print(f"FAIL: {msg}", file=sys.stderr)
            return 1
    if monitor["stream_speedup_with_monitor_off"] \
            < TABLE5_STREAM_SPEEDUP_FLOOR:
        print(f"FAIL: stream speedup with monitoring disabled "
              f"{monitor['stream_speedup_with_monitor_off']}x is below the "
              f"{TABLE5_STREAM_SPEEDUP_FLOOR}x floor", file=sys.stderr)
        return 1
    serve_rps = results["bench_serve"]["cached_requests_per_s"]
    if serve_rps < SERVE_CACHED_RPS_FLOOR:
        print(f"FAIL: bench_serve cached throughput {serve_rps} req/s is "
              f"below the {SERVE_CACHED_RPS_FLOOR} req/s floor (a cache "
              f"hit must stay O(lookup), never a re-simulation)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
