"""Ablation A5: pointer/data parallelism in the MMS.

Section 6.1: "The actual data accesses at the Data Memory can be done,
almost, in parallel with the pointer handling ... a data access can
start right after the first pointer memory access of each command."
Serializing them (the registered ``ablation-overlap`` scenario) shows
what that scheduling bought: the full execution latency lands on top of
every data access.
"""

import pytest

from benchmarks.bench_common import emit
from repro.core.mms import MmsConfig, run_load
from repro.scenarios import Runner, render

BASE = dict(num_flows=1024, num_segments=8192, num_descriptors=4096)


def test_bench_pointer_data_overlap(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("ablation-overlap"), iterations=1, rounds=1)
    emit(render(result))
    overlapped = result.metrics["overlapped"]
    serialized = result.metrics["serialized"]
    # The paper's additive decomposition is insensitive to the overlap;
    # the true submit-to-completion latency shows what it bought: the
    # data transfer no longer waits out the pointer schedule (~8 cycles
    # on a 10/11-cycle command).  (Index 3 = additive total, 4 = true
    # end-to-end.)
    assert serialized[4] > overlapped[4] + 5
    assert serialized[3] == pytest.approx(overlapped[3], abs=3)

def test_bench_overlap_at_light_load(benchmark):
    def light():
        both = {}
        for overlap in (True, False):
            both[overlap] = run_load(
                1.6, num_volleys=600, warmup_volleys=100,
                config=MmsConfig(**BASE, overlap_data=overlap))
        return both

    both = benchmark.pedantic(light, iterations=1, rounds=1)
    # even unloaded, serializing adds most of the execution latency to
    # every command's completion time
    assert (both[False].end_to_end_cycles
            > both[True].end_to_end_cycles + 5)
