"""Ablation A5: pointer/data parallelism in the MMS.

Section 6.1: "The actual data accesses at the Data Memory can be done,
almost, in parallel with the pointer handling ... a data access can
start right after the first pointer memory access of each command."
Serializing them (data issued only after the pointer work completes)
shows what that scheduling bought: the full execution latency lands on
top of every data access.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis.tables import format_table
from repro.core.mms import MmsConfig, run_load

BASE = dict(num_flows=1024, num_segments=8192, num_descriptors=4096)


def sweep(load=4.0):
    overlapped = run_load(load, num_volleys=800, warmup_volleys=100,
                          config=MmsConfig(**BASE, overlap_data=True))
    serialized = run_load(load, num_volleys=800, warmup_volleys=100,
                          config=MmsConfig(**BASE, overlap_data=False))
    return overlapped, serialized

def test_bench_pointer_data_overlap(benchmark):
    overlapped, serialized = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(format_table(
        ["configuration", "fifo", "exec", "data",
         "additive total", "true end-to-end (cycles)"],
        [["overlapped (MMS design)", round(overlapped.fifo_cycles, 1),
          round(overlapped.execution_cycles, 1),
          round(overlapped.data_cycles, 1),
          round(overlapped.total_cycles, 1),
          round(overlapped.end_to_end_cycles, 1)],
         ["serialized (ablation)", round(serialized.fifo_cycles, 1),
          round(serialized.execution_cycles, 1),
          round(serialized.data_cycles, 1),
          round(serialized.total_cycles, 1),
          round(serialized.end_to_end_cycles, 1)]],
        title="Ablation A5: data access overlapped with pointer work "
              "(4 Gbps load)"))
    # The paper's additive decomposition is insensitive to the overlap;
    # the true submit-to-completion latency shows what it bought: the
    # data transfer no longer waits out the pointer schedule (~8 cycles
    # on a 10/11-cycle command).
    assert (serialized.end_to_end_cycles
            > overlapped.end_to_end_cycles + 5)
    assert serialized.total_cycles == pytest.approx(
        overlapped.total_cycles, abs=3)

def test_bench_overlap_at_light_load(benchmark):
    def light():
        both = {}
        for overlap in (True, False):
            both[overlap] = run_load(
                1.6, num_volleys=600, warmup_volleys=100,
                config=MmsConfig(**BASE, overlap_data=overlap))
        return both

    both = benchmark.pedantic(light, iterations=1, rounds=1)
    # even unloaded, serializing adds most of the execution latency to
    # every command's completion time
    assert (both[False].end_to_end_cycles
            > both[True].end_to_end_cycles + 5)
