"""Benchmark T2: regenerate Table 2 (IXP1200 queue-management rates).

Workload: saturated queue management (enqueue+dequeue per 64 B packet)
for 16/128/1024 queues on 1 and 6 microengines with shared-controller
contention, through the scenario API.
"""

import pytest

from benchmarks.bench_common import emit
from repro.analysis import PAPER_TABLE2
from repro.ixp import simulate_ixp
from repro.scenarios import Runner, render


def test_bench_table2_full(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("table2"), iterations=1, rounds=2)
    emit(render(result))
    for (queues, engines), want in PAPER_TABLE2.items():
        got = result.metrics[f"q{queues}_e{engines}"]
        assert got == pytest.approx(want, rel=0.12), (queues, engines)

def test_bench_table2_worst_case_cell(benchmark):
    """1024 queues on all 6 engines: the cell behind the paper's
    '<150 Mbps' conclusion."""
    result = benchmark.pedantic(simulate_ixp, args=(1024, 6),
                                iterations=1, rounds=2)
    assert result.kpps == pytest.approx(300, rel=0.12)
