"""Benchmark T3: regenerate Table 3 (software queue-manager cycles) and
the Section 5.3 copy-strategy progression (ablation A3).
"""

import pytest

from benchmarks.bench_common import emit
from repro.npu import CopyStrategy, QueueSwModel
from repro.scenarios import Runner, render


def test_bench_table3_full(benchmark):
    result = benchmark.pedantic(
        lambda: Runner().run("table3"), iterations=1, rounds=3)
    emit(render(result))
    assert result.metrics["enqueue_word"] == 216
    assert result.metrics["dequeue_word"] == 230

def test_bench_table3_model_construction(benchmark):
    """Deriving the cost model from live data-structure traces."""
    model = benchmark.pedantic(QueueSwModel, iterations=1, rounds=5)
    assert model.free_pop.plb_reads == 2

def test_bench_copy_strategy_progression(benchmark):
    """A3: word -> line -> DMA; line roughly doubles throughput."""

    def progression():
        m = QueueSwModel()
        return {s: m.full_duplex_gbps(s) for s in CopyStrategy}

    rates = benchmark.pedantic(progression, iterations=1, rounds=3)
    assert rates[CopyStrategy.LINE] > 1.8 * rates[CopyStrategy.WORD]
    assert rates[CopyStrategy.DMA] == pytest.approx(
        rates[CopyStrategy.LINE], rel=0.15)
