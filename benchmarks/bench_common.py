"""Shared benchmark helpers (package-safe home for :func:`emit`).

Benchmarks import this as ``from benchmarks.bench_common import emit``;
the package-qualified form resolves from any working directory, unlike
the old ``from conftest import emit`` which depended on pytest happening
to put the benchmarks directory itself on ``sys.path``.
"""


def emit(report_text: str) -> None:
    """Print a rendered experiment report under the bench output."""
    print()
    print(report_text)
