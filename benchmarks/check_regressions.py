"""Gate the perf trajectory in ``BENCH_<n>.json`` against the floors.

``run_benchmarks.py`` *records* the trajectory and gates its own run;
this comparator re-reads any recorded trajectory file and fails on
floor violations, so CI (or a developer with an existing history) can
gate without re-timing anything::

    PYTHONPATH=src python benchmarks/check_regressions.py              # BENCH_1.json
    PYTHONPATH=src python benchmarks/check_regressions.py /tmp/ci.json

Checks applied to the **latest** entry (older entries are context):

* ``bench_table1.speedup``        >= 2.0x
* ``bench_table5_stream.speedup`` >= 3.0x
* ``bench_telemetry.off_overhead``, ``bench_trace.off_overhead`` and
  ``bench_monitor.off_overhead`` <= 2% -- warnings instead of failures
  when the entry was recorded with ``--quick`` (CI runners are noisy;
  the structural-absence asserts inside ``run_benchmarks.py`` are the
  real detectors there)
* the stream floor must also hold with telemetry / tracing / monitoring
  disabled
* ``bench_serve.cached_requests_per_s`` >= 20 req/s -- a daemon cache
  hit must stay O(lookup), never a re-simulation

A benchmark absent from the entry is skipped with a note (older
trajectory entries predate the newer benchmarks).  On top of the hard
floors, the latest full-run speedups are compared against the best
full-run speedup in the history: a drop of more than 30% is reported
as a warning -- drift worth a look, not a red build.

Exit codes: 0 all floors hold, 1 floor violation, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from run_benchmarks import (                                       # noqa: E402
    MONITOR_OFF_OVERHEAD_CEILING,
    SERVE_CACHED_RPS_FLOOR,
    TABLE1_SPEEDUP_FLOOR,
    TABLE5_STREAM_SPEEDUP_FLOOR,
    TELEMETRY_OFF_OVERHEAD_CEILING,
    TRACE_OFF_OVERHEAD_CEILING,
)

#: Fractional drop from the history's best full-run speedup that is
#: flagged (as a warning) even while the hard floor still holds.
DRIFT_WARNING_FRACTION = 0.30

#: ``(benchmark, field, floor, unit)`` -- fields that must stay
#: >= floor; *unit* only decorates the finding message.
SPEEDUP_FLOORS = (
    ("bench_table1", "speedup", TABLE1_SPEEDUP_FLOOR, "x"),
    ("bench_table5_stream", "speedup", TABLE5_STREAM_SPEEDUP_FLOOR, "x"),
    ("bench_telemetry", "stream_speedup_with_telemetry_off",
     TABLE5_STREAM_SPEEDUP_FLOOR, "x"),
    ("bench_trace", "stream_speedup_with_trace_off",
     TABLE5_STREAM_SPEEDUP_FLOOR, "x"),
    ("bench_monitor", "stream_speedup_with_monitor_off",
     TABLE5_STREAM_SPEEDUP_FLOOR, "x"),
    ("bench_serve", "cached_requests_per_s",
     SERVE_CACHED_RPS_FLOOR, " req/s"),
)

#: ``(benchmark, field, ceiling)`` -- fields that must stay <= ceiling
#: (warn-only on ``--quick`` entries).
OVERHEAD_CEILINGS = (
    ("bench_telemetry", "off_overhead", TELEMETRY_OFF_OVERHEAD_CEILING),
    ("bench_trace", "off_overhead", TRACE_OFF_OVERHEAD_CEILING),
    ("bench_monitor", "off_overhead", MONITOR_OFF_OVERHEAD_CEILING),
)


def check_entry(entry: dict, history: list) -> list:
    """All findings for the trajectory's latest *entry*.

    Returns ``(severity, message)`` pairs with severity ``"fail"`` or
    ``"warn"``; *history* is the full run list (for drift context).
    """
    findings = []
    benches = entry.get("benchmarks", {})
    quick = bool(entry.get("quick"))

    for name, field, floor, unit in SPEEDUP_FLOORS:
        bench = benches.get(name)
        if bench is None:
            findings.append(("note", f"{name}: not in this entry, skipped"))
            continue
        value = bench[field]
        if value < floor:
            findings.append(("fail",
                             f"{name}.{field} = {value}{unit} is below "
                             f"the {floor}{unit} floor"))

    for name, field, ceiling in OVERHEAD_CEILINGS:
        bench = benches.get(name)
        if bench is None:
            continue
        value = bench[field]
        if value > ceiling:
            severity = "warn" if quick else "fail"
            qualifier = " (quick entry: warning only)" if quick else ""
            findings.append((severity,
                             f"{name}.{field} = {value * 100:.1f}% exceeds "
                             f"the {ceiling * 100:.0f}% ceiling{qualifier}"))

    # drift vs the best *full* run in the history (same-mode comparison:
    # quick entries time shrunken workloads and would alias as drift)
    for name in ("bench_table1", "bench_table5_stream"):
        if quick or name not in benches:
            continue
        past = [run["benchmarks"][name]["speedup"] for run in history[:-1]
                if not run.get("quick") and name in run.get("benchmarks", {})]
        if not past:
            continue
        best, latest = max(past), benches[name]["speedup"]
        if latest < best * (1.0 - DRIFT_WARNING_FRACTION):
            findings.append(("warn",
                             f"{name}.speedup drifted to {latest}x from a "
                             f"best of {best}x (>{DRIFT_WARNING_FRACTION:.0%}"
                             f" drop)"))
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trajectory", nargs="?",
                    default=str(REPO_ROOT / "BENCH_1.json"),
                    help="trajectory file to check (default: BENCH_1.json)")
    args = ap.parse_args(argv)

    try:
        with open(args.trajectory, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.trajectory}: {exc}", file=sys.stderr)
        return 2
    runs = doc.get("runs") or []
    if not isinstance(runs, list) or not runs:
        print(f"error: {args.trajectory} has no recorded runs",
              file=sys.stderr)
        return 2

    entry = runs[-1]
    print(f"checking run #{len(runs)} of {args.trajectory} "
          f"(recorded {entry.get('timestamp', '?')}, "
          f"quick={bool(entry.get('quick'))})")
    findings = check_entry(entry, runs)
    failed = False
    for severity, message in findings:
        if severity == "fail":
            failed = True
            print(f"FAIL: {message}", file=sys.stderr)
        elif severity == "warn":
            print(f"WARNING: {message}", file=sys.stderr)
        else:
            print(message)
    if failed:
        return 1
    checked = sum(1 for name, _f, _c, _u in SPEEDUP_FLOORS
                  if name in entry.get("benchmarks", {}))
    print(f"ok: {checked} floor(s) hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
