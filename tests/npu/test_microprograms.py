"""Tests for the Table 3 reproduction (software queue-manager costs)."""

import pytest

from repro.npu import CopyStrategy, NpuParams, QueueSwModel


@pytest.fixture(scope="module")
def model():
    return QueueSwModel()

@pytest.fixture(scope="module")
def params():
    return NpuParams()

# ------------------------------------------------------ Table 3 baseline

def test_dequeue_free_list_is_34_cycles(model, params):
    assert model.free_pop.cpu_cycles(params) == 34

def test_enqueue_segment_first_is_46_cycles(model, params):
    assert model.link_first.cpu_cycles(params) == 46

def test_enqueue_segment_rest_is_68_cycles(model, params):
    """Table 3 footnote: '46 for the first segment of the packet, 68 for
    the rest'."""
    assert model.link_rest.cpu_cycles(params) == 68

def test_dequeue_segment_is_52_cycles(model, params):
    assert model.unlink.cpu_cycles(params) == 52

def test_enqueue_free_list_is_42_cycles(model, params):
    assert model.free_push.cpu_cycles(params) == 42

def test_copy_segment_word_is_136_cycles(model, params):
    assert model.copy_cost(CopyStrategy.WORD).cpu_cycles(params) == 136

def test_enqueue_totals_match_table3(model):
    assert model.enqueue_cycles(CopyStrategy.WORD, first_segment=True) == 216
    assert model.enqueue_cycles(CopyStrategy.WORD, first_segment=False) == 238

def test_dequeue_total_matches_table3(model):
    assert model.dequeue_cycles(CopyStrategy.WORD) == 230

# ------------------------------------------------- Section 5.3 variants

def test_line_copy_is_24_cycles(model, params):
    """'the total number of cycles to copy a segment becomes
    TC = 2*(9+3) = 24 cycles'."""
    assert model.copy_cost(CopyStrategy.LINE).cpu_cycles(params) == 24

def test_line_totals_near_paper(model):
    """Paper: enqueue/dequeue become 128 and 118 cycles.  Ours derive to
    126/118 (the paper's enqueue includes 2 cycles we cannot attribute;
    see EXPERIMENTS.md)."""
    enq = model.enqueue_cycles(CopyStrategy.LINE, first_segment=False)
    deq = model.dequeue_cycles(CopyStrategy.LINE)
    assert deq == 118
    assert abs(enq - 128) <= 2

def test_dma_setup_cost_is_16_cpu_cycles(model, params):
    assert model.copy_cost(CopyStrategy.DMA).cpu_cycles(params) == 16

# ------------------------------------------------------------ throughput

def test_baseline_supports_full_duplex_100mbps_and_no_more(model):
    """Section 5.3: 'all the available processing capacity of the
    PowerPC core has to be used so as to support a full duplex 100Mbps
    line'."""
    gbps = model.full_duplex_gbps(CopyStrategy.WORD)
    assert 0.095 <= gbps <= 0.125

def test_line_transactions_reach_about_200mbps(model):
    """Section 5.3: 'the 100MHz PowerPC would sustain up to about
    200 Mbps throughput'."""
    gbps = model.full_duplex_gbps(CopyStrategy.LINE)
    assert 0.18 <= gbps <= 0.23

def test_dma_throughput_similar_to_line(model):
    """Section 5.3: 'the overall throughput does not increase
    significantly' with DMA..."""
    line = model.full_duplex_gbps(CopyStrategy.LINE)
    dma = model.full_duplex_gbps(CopyStrategy.DMA)
    assert dma == pytest.approx(line, rel=0.15)

def test_dma_frees_cpu_headroom(model):
    """...'but in this configuration the processor has additional
    available processing power ... due to the offloading'."""
    word = model.cpu_headroom_fraction(CopyStrategy.WORD, 0.1)
    dma = model.cpu_headroom_fraction(CopyStrategy.DMA, 0.1)
    assert dma > word + 0.3

def test_rule_of_thumb_clock_proportionality(model):
    """Section 5.4: 'the clock frequency of the system is proportional
    to the network bandwidth supported'."""
    at_100 = model.full_duplex_gbps(CopyStrategy.WORD, clock_mhz=100)
    at_400 = model.full_duplex_gbps(CopyStrategy.WORD, clock_mhz=400)
    assert at_400 == pytest.approx(4 * at_100)

def test_costs_scale_with_plb_timing():
    slow = NpuParams(plb=__import__("repro.npu.params", fromlist=["PlbTiming"])
                     .PlbTiming(single_read_cycles=16, single_write_cycles=12))
    m = QueueSwModel(slow)
    assert m.free_pop.cpu_cycles(slow) > 34
